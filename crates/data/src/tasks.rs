//! The six benchmark tasks of the paper's Table I, as seeded synthetic
//! generators with matched geometry.
//!
//! | Task      | Domain    | Classes | `(W, L)` | Character tuned into the generator |
//! |-----------|-----------|---------|----------|------------------------------------|
//! | EEGMMI    | time      | 2       | (16, 64) | strongly interaction-coded (SVM ≫ LDA; BiConv pays off) |
//! | BCI-III-V | frequency | 3       | (16, 6)  | clean but multi-modal (local methods excel) |
//! | CHB-B     | frequency | 2       | (23, 64) | easy, well separated |
//! | CHB-IB    | frequency | 2       | (23, 64) | same signal, 4:1 class imbalance |
//! | ISOLET    | time      | 26      | (16, 40) | largely linearly separable, many classes |
//! | HAR       | time      | 6       | (16, 36) | noisy with many irrelevant features (distance-based methods suffer) |

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::Task;
use crate::{GeneratorParams, SyntheticGenerator, TaskSpec};

fn spec(name: &str, width: usize, length: usize, classes: usize) -> TaskSpec {
    TaskSpec {
        name: name.to_string(),
        width,
        length,
        classes,
        levels: 256,
    }
}

fn build(
    params: GeneratorParams,
    train_per_class: &[usize],
    test_per_class: &[usize],
    seed: u64,
) -> Task {
    let mut rng = StdRng::seed_from_u64(seed);
    let generator = SyntheticGenerator::new(params.clone(), &mut rng);
    let train = generator.dataset(train_per_class, &mut rng);
    let test = generator.dataset(test_per_class, &mut rng);
    Task {
        spec: params.spec,
        train,
        test,
    }
}

/// EEGMMI-like motor-imagery task: 2 classes, `(16, 64)` windows, class
/// information mostly in cross-feature interactions.
pub fn eegmmi(seed: u64) -> Task {
    let mut p = GeneratorParams::new(spec("EEGMMI", 16, 64, 2));
    p.interaction = 1.0;
    p.linear_bias = 0.12;
    p.noise = 0.45;
    p.irrelevant_rows = 0.25;
    p.modes = 2;
    p.informative_fraction = 0.15;
    p.texture = 1.0;
    build(p, &[240, 240], &[120, 120], seed ^ 0xEE61)
}

/// BCI-III-V-like mental-imagery task: 3 classes, `(16, 6)` frequency
/// features, clean but multi-modal.
pub fn bci3v(seed: u64) -> Task {
    let mut p = GeneratorParams::new(spec("BCI-III-V", 16, 6, 3));
    p.interaction = 0.15;
    p.linear_bias = 0.2;
    p.noise = 0.45;
    p.irrelevant_rows = 0.1;
    p.modes = 4;
    p.informative_fraction = 0.5;
    p.texture = 0.35;
    p.cluster_spread = 0.6;
    p.label_noise = 0.01;
    build(p, &[160, 160, 160], &[80, 80, 80], seed ^ 0xBC13)
}

/// CHB-B-like balanced seizure detection: 2 classes, `(23, 64)`.
pub fn chb_b(seed: u64) -> Task {
    let mut p = GeneratorParams::new(spec("CHB-B", 23, 64, 2));
    p.interaction = 0.35;
    p.linear_bias = 0.09;
    p.noise = 0.35;
    p.irrelevant_rows = 0.2;
    p.informative_fraction = 0.45;
    p.texture = 0.25;
    p.class_gain = 0.25;
    p.modes = 2;
    p.cluster_spread = 0.35;
    build(p, &[200, 200], &[100, 100], seed ^ 0xC4BB)
}

/// CHB-IB-like imbalanced seizure detection: the CHB-B signal with a 4:1
/// class ratio.
pub fn chb_ib(seed: u64) -> Task {
    let mut p = GeneratorParams::new(spec("CHB-IB", 23, 64, 2));
    p.interaction = 0.35;
    p.linear_bias = 0.09;
    p.noise = 0.35;
    p.irrelevant_rows = 0.2;
    p.informative_fraction = 0.45;
    p.texture = 0.25;
    p.class_gain = 0.25;
    p.modes = 2;
    p.cluster_spread = 0.35;
    build(p, &[320, 80], &[160, 40], seed ^ 0xC41B)
}

/// ISOLET-like spoken-letter task: 26 classes, `(16, 40)`, largely
/// linearly separable.
pub fn isolet(seed: u64) -> Task {
    let mut p = GeneratorParams::new(spec("ISOLET", 16, 40, 26));
    p.interaction = 0.2;
    p.linear_bias = 0.3;
    p.noise = 0.55;
    p.irrelevant_rows = 0.12;
    p.informative_fraction = 0.85;
    p.texture = 0.25;
    p.label_noise = 0.05;
    let train = vec![40; 26];
    let test = vec![15; 26];
    build(p, &train, &test, seed ^ 0x1501)
}

/// HAR-like activity-recognition task: 6 classes, `(16, 36)`, noisy with
/// many irrelevant features.
pub fn har(seed: u64) -> Task {
    let mut p = GeneratorParams::new(spec("HAR", 16, 36, 6));
    p.interaction = 0.8;
    p.linear_bias = 0.3;
    p.noise = 0.6;
    p.irrelevant_rows = 0.4;
    p.jitter = 0.3;
    p.informative_fraction = 0.7;
    p.texture = 0.6;
    p.label_noise = 0.05;
    build(p, &[170; 6], &[40; 6], seed ^ 0x4A12)
}

/// All six benchmark tasks in the paper's Table I order.
pub fn all(seed: u64) -> Vec<Task> {
    vec![
        eegmmi(seed),
        bci3v(seed),
        chb_b(seed),
        chb_ib(seed),
        isolet(seed),
        har(seed),
    ]
}

/// A `(D_H, D_L, D_K, O, Θ)` model tuple.
pub type ConfigTuple = (usize, usize, usize, usize, usize);

/// The paper's Table I: per-task `(D_H, D_L, D_K, O, Θ)` configurations,
/// in the same order as [`all`].
pub const PAPER_CONFIGS: [(&str, ConfigTuple); 6] = [
    ("EEGMMI", (8, 2, 3, 95, 1)),
    ("BCI-III-V", (8, 1, 3, 151, 3)),
    ("CHB-B", (8, 2, 3, 16, 3)),
    ("CHB-IB", (4, 1, 5, 16, 1)),
    ("ISOLET", (4, 4, 3, 22, 3)),
    ("HAR", (8, 4, 3, 18, 3)),
];

/// Looks up a task's Table I configuration tuple by name
/// (case-insensitive, accepting the same aliases as [`by_name`]).
pub fn paper_config_tuple(name: &str) -> Option<ConfigTuple> {
    let upper = name.to_ascii_uppercase();
    let canon = if upper == "BCI3V" {
        "BCI-III-V"
    } else {
        &upper
    };
    PAPER_CONFIGS
        .iter()
        .find(|(n, _)| *n == canon)
        .map(|(_, tuple)| *tuple)
}

/// Looks a task up by its Table I name (case-insensitive).
pub fn by_name(name: &str, seed: u64) -> Option<Task> {
    match name.to_ascii_uppercase().as_str() {
        "EEGMMI" => Some(eegmmi(seed)),
        "BCI-III-V" | "BCI3V" => Some(bci3v(seed)),
        "CHB-B" => Some(chb_b(seed)),
        "CHB-IB" => Some(chb_ib(seed)),
        "ISOLET" => Some(isolet(seed)),
        "HAR" => Some(har(seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometries_match_table1() {
        let cases = [
            ("EEGMMI", 16, 64, 2),
            ("BCI-III-V", 16, 6, 3),
            ("CHB-B", 23, 64, 2),
            ("CHB-IB", 23, 64, 2),
            ("ISOLET", 16, 40, 26),
            ("HAR", 16, 36, 6),
        ];
        for (name, w, l, c) in cases {
            let t = by_name(name, 1).unwrap();
            assert_eq!(t.spec.name, name);
            assert_eq!(t.spec.width, w);
            assert_eq!(t.spec.length, l);
            assert_eq!(t.spec.classes, c);
            assert_eq!(t.spec.levels, 256);
        }
    }

    #[test]
    fn chb_ib_is_imbalanced() {
        let t = chb_ib(3);
        let counts = t.train.class_counts();
        assert!(counts[0] >= 3 * counts[1]);
    }

    #[test]
    fn all_returns_six() {
        assert_eq!(all(0).len(), 6);
    }

    #[test]
    fn by_name_unknown_is_none() {
        assert!(by_name("MNIST", 0).is_none());
    }

    #[test]
    fn paper_config_tuple_covers_every_task() {
        for task in all(0) {
            assert!(paper_config_tuple(&task.spec.name).is_some());
        }
        assert_eq!(paper_config_tuple("eegmmi"), Some((8, 2, 3, 95, 1)));
        assert_eq!(paper_config_tuple("bci3v"), paper_config_tuple("BCI-III-V"));
        assert!(paper_config_tuple("MNIST").is_none());
    }

    #[test]
    fn deterministic() {
        let a = eegmmi(9);
        let b = eegmmi(9);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn train_and_test_disjoint_draws() {
        // not literally disjoint sets (both are fresh draws), but they must
        // differ — a degenerate generator would emit identical data
        let t = bci3v(2);
        assert_ne!(t.train.samples()[0].values, t.test.samples()[0].values);
    }
}
