//! The six benchmark tasks of the paper's Table I, as seeded synthetic
//! generators with matched geometry.
//!
//! | Task      | Domain    | Classes | `(W, L)` | Character tuned into the generator |
//! |-----------|-----------|---------|----------|------------------------------------|
//! | EEGMMI    | time      | 2       | (16, 64) | strongly interaction-coded (SVM ≫ LDA; BiConv pays off) |
//! | BCI-III-V | frequency | 3       | (16, 6)  | clean but multi-modal (local methods excel) |
//! | CHB-B     | frequency | 2       | (23, 64) | easy, well separated |
//! | CHB-IB    | frequency | 2       | (23, 64) | same signal, 4:1 class imbalance |
//! | ISOLET    | time      | 26      | (16, 40) | largely linearly separable, many classes |
//! | HAR       | time      | 6       | (16, 36) | noisy with many irrelevant features (distance-based methods suffer) |

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::Task;
use crate::{DriftSpec, GeneratorParams, Sample, SyntheticGenerator, TaskSpec};

fn spec(name: &str, width: usize, length: usize, classes: usize) -> TaskSpec {
    TaskSpec {
        name: name.to_string(),
        width,
        length,
        classes,
        levels: 256,
    }
}

fn build(
    params: GeneratorParams,
    train_per_class: &[usize],
    test_per_class: &[usize],
    seed: u64,
) -> Task {
    let mut rng = StdRng::seed_from_u64(seed);
    let generator = SyntheticGenerator::new(params.clone(), &mut rng);
    let train = generator.dataset(train_per_class, &mut rng);
    let test = generator.dataset(test_per_class, &mut rng);
    Task {
        spec: params.spec,
        train,
        test,
    }
}

const EEGMMI_SALT: u64 = 0xEE61;
const BCI3V_SALT: u64 = 0xBC13;
const CHB_B_SALT: u64 = 0xC4BB;
const CHB_IB_SALT: u64 = 0xC41B;
const ISOLET_SALT: u64 = 0x1501;
const HAR_SALT: u64 = 0x4A12;

fn eegmmi_params() -> GeneratorParams {
    let mut p = GeneratorParams::new(spec("EEGMMI", 16, 64, 2));
    p.interaction = 1.0;
    p.linear_bias = 0.12;
    p.noise = 0.45;
    p.irrelevant_rows = 0.25;
    p.modes = 2;
    p.informative_fraction = 0.15;
    p.texture = 1.0;
    p
}

fn bci3v_params() -> GeneratorParams {
    let mut p = GeneratorParams::new(spec("BCI-III-V", 16, 6, 3));
    p.interaction = 0.15;
    p.linear_bias = 0.2;
    p.noise = 0.45;
    p.irrelevant_rows = 0.1;
    p.modes = 4;
    p.informative_fraction = 0.5;
    p.texture = 0.35;
    p.cluster_spread = 0.6;
    p.label_noise = 0.01;
    p
}

fn chb_b_params() -> GeneratorParams {
    let mut p = GeneratorParams::new(spec("CHB-B", 23, 64, 2));
    p.interaction = 0.35;
    p.linear_bias = 0.09;
    p.noise = 0.35;
    p.irrelevant_rows = 0.2;
    p.informative_fraction = 0.45;
    p.texture = 0.25;
    p.class_gain = 0.25;
    p.modes = 2;
    p.cluster_spread = 0.35;
    p
}

fn chb_ib_params() -> GeneratorParams {
    let mut p = chb_b_params();
    p.spec = spec("CHB-IB", 23, 64, 2);
    p
}

fn isolet_params() -> GeneratorParams {
    let mut p = GeneratorParams::new(spec("ISOLET", 16, 40, 26));
    p.interaction = 0.2;
    p.linear_bias = 0.3;
    p.noise = 0.55;
    p.irrelevant_rows = 0.12;
    p.informative_fraction = 0.85;
    p.texture = 0.25;
    p.label_noise = 0.05;
    p
}

fn har_params() -> GeneratorParams {
    let mut p = GeneratorParams::new(spec("HAR", 16, 36, 6));
    p.interaction = 0.8;
    p.linear_bias = 0.3;
    p.noise = 0.6;
    p.irrelevant_rows = 0.4;
    p.jitter = 0.3;
    p.informative_fraction = 0.7;
    p.texture = 0.6;
    p.label_noise = 0.05;
    p
}

/// EEGMMI-like motor-imagery task: 2 classes, `(16, 64)` windows, class
/// information mostly in cross-feature interactions.
pub fn eegmmi(seed: u64) -> Task {
    build(eegmmi_params(), &[240, 240], &[120, 120], seed ^ EEGMMI_SALT)
}

/// BCI-III-V-like mental-imagery task: 3 classes, `(16, 6)` frequency
/// features, clean but multi-modal.
pub fn bci3v(seed: u64) -> Task {
    build(bci3v_params(), &[160, 160, 160], &[80, 80, 80], seed ^ BCI3V_SALT)
}

/// CHB-B-like balanced seizure detection: 2 classes, `(23, 64)`.
pub fn chb_b(seed: u64) -> Task {
    build(chb_b_params(), &[200, 200], &[100, 100], seed ^ CHB_B_SALT)
}

/// CHB-IB-like imbalanced seizure detection: the CHB-B signal with a 4:1
/// class ratio.
pub fn chb_ib(seed: u64) -> Task {
    build(chb_ib_params(), &[320, 80], &[160, 40], seed ^ CHB_IB_SALT)
}

/// ISOLET-like spoken-letter task: 26 classes, `(16, 40)`, largely
/// linearly separable.
pub fn isolet(seed: u64) -> Task {
    build(isolet_params(), &vec![40; 26], &vec![15; 26], seed ^ ISOLET_SALT)
}

/// HAR-like activity-recognition task: 6 classes, `(16, 36)`, noisy with
/// many irrelevant features.
pub fn har(seed: u64) -> Task {
    build(har_params(), &[170; 6], &[40; 6], seed ^ HAR_SALT)
}

/// The generator parameters and seed salt behind a named task
/// (case-insensitive, accepting the same aliases as [`by_name`]).
fn stream_setup(name: &str) -> Option<(GeneratorParams, u64)> {
    match name.to_ascii_uppercase().as_str() {
        "EEGMMI" => Some((eegmmi_params(), EEGMMI_SALT)),
        "BCI-III-V" | "BCI3V" => Some((bci3v_params(), BCI3V_SALT)),
        "CHB-B" => Some((chb_b_params(), CHB_B_SALT)),
        "CHB-IB" => Some((chb_ib_params(), CHB_IB_SALT)),
        "ISOLET" => Some((isolet_params(), ISOLET_SALT)),
        "HAR" => Some((har_params(), HAR_SALT)),
        _ => None,
    }
}

/// Generates a labelled prediction stream for a named task: the same
/// frozen class profiles a model trained via [`by_name`] with the same
/// `seed` learned from, but fresh sample draws (decoupled from the
/// train/test draws), with optional seeded drift injection. The whole
/// stream is a pure function of `(name, seed, total, drift)`, so fleet
/// workers can regenerate it independently and evaluate disjoint shards
/// that concatenate into exactly this sequence.
pub fn drift_stream(
    name: &str,
    seed: u64,
    total: usize,
    drift: Option<DriftSpec>,
) -> Option<Vec<Sample>> {
    let (params, salt) = stream_setup(name)?;
    // identical construction to `build`, so the profiles match training
    let mut grng = StdRng::seed_from_u64(seed ^ salt);
    let generator = SyntheticGenerator::new(params, &mut grng);
    // a salted fresh RNG: stream draws never replay train/test samples
    let mut srng = StdRng::seed_from_u64((seed ^ salt).wrapping_add(0x5EED_57EA));
    Some(generator.stream(total, drift, &mut srng))
}

/// All six benchmark tasks in the paper's Table I order.
pub fn all(seed: u64) -> Vec<Task> {
    vec![
        eegmmi(seed),
        bci3v(seed),
        chb_b(seed),
        chb_ib(seed),
        isolet(seed),
        har(seed),
    ]
}

/// A `(D_H, D_L, D_K, O, Θ)` model tuple.
pub type ConfigTuple = (usize, usize, usize, usize, usize);

/// The paper's Table I: per-task `(D_H, D_L, D_K, O, Θ)` configurations,
/// in the same order as [`all`].
pub const PAPER_CONFIGS: [(&str, ConfigTuple); 6] = [
    ("EEGMMI", (8, 2, 3, 95, 1)),
    ("BCI-III-V", (8, 1, 3, 151, 3)),
    ("CHB-B", (8, 2, 3, 16, 3)),
    ("CHB-IB", (4, 1, 5, 16, 1)),
    ("ISOLET", (4, 4, 3, 22, 3)),
    ("HAR", (8, 4, 3, 18, 3)),
];

/// Looks up a task's Table I configuration tuple by name
/// (case-insensitive, accepting the same aliases as [`by_name`]).
pub fn paper_config_tuple(name: &str) -> Option<ConfigTuple> {
    let upper = name.to_ascii_uppercase();
    let canon = if upper == "BCI3V" {
        "BCI-III-V"
    } else {
        &upper
    };
    PAPER_CONFIGS
        .iter()
        .find(|(n, _)| *n == canon)
        .map(|(_, tuple)| *tuple)
}

/// Looks a task up by its Table I name (case-insensitive).
pub fn by_name(name: &str, seed: u64) -> Option<Task> {
    match name.to_ascii_uppercase().as_str() {
        "EEGMMI" => Some(eegmmi(seed)),
        "BCI-III-V" | "BCI3V" => Some(bci3v(seed)),
        "CHB-B" => Some(chb_b(seed)),
        "CHB-IB" => Some(chb_ib(seed)),
        "ISOLET" => Some(isolet(seed)),
        "HAR" => Some(har(seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometries_match_table1() {
        let cases = [
            ("EEGMMI", 16, 64, 2),
            ("BCI-III-V", 16, 6, 3),
            ("CHB-B", 23, 64, 2),
            ("CHB-IB", 23, 64, 2),
            ("ISOLET", 16, 40, 26),
            ("HAR", 16, 36, 6),
        ];
        for (name, w, l, c) in cases {
            let t = by_name(name, 1).unwrap();
            assert_eq!(t.spec.name, name);
            assert_eq!(t.spec.width, w);
            assert_eq!(t.spec.length, l);
            assert_eq!(t.spec.classes, c);
            assert_eq!(t.spec.levels, 256);
        }
    }

    #[test]
    fn chb_ib_is_imbalanced() {
        let t = chb_ib(3);
        let counts = t.train.class_counts();
        assert!(counts[0] >= 3 * counts[1]);
    }

    #[test]
    fn all_returns_six() {
        assert_eq!(all(0).len(), 6);
    }

    #[test]
    fn by_name_unknown_is_none() {
        assert!(by_name("MNIST", 0).is_none());
    }

    #[test]
    fn paper_config_tuple_covers_every_task() {
        for task in all(0) {
            assert!(paper_config_tuple(&task.spec.name).is_some());
        }
        assert_eq!(paper_config_tuple("eegmmi"), Some((8, 2, 3, 95, 1)));
        assert_eq!(paper_config_tuple("bci3v"), paper_config_tuple("BCI-III-V"));
        assert!(paper_config_tuple("MNIST").is_none());
    }

    #[test]
    fn deterministic() {
        let a = eegmmi(9);
        let b = eegmmi(9);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn drift_stream_is_deterministic_and_drift_only_touches_the_tail() {
        let a = drift_stream("bci3v", 7, 60, None).unwrap();
        let b = drift_stream("BCI-III-V", 7, 60, None).unwrap();
        assert_eq!(a, b);
        let drifted = drift_stream(
            "bci3v",
            7,
            60,
            Some(DriftSpec {
                at: 30,
                strength: 1.0,
            }),
        )
        .unwrap();
        assert_eq!(a[..30], drifted[..30]);
        assert_ne!(a[30..], drifted[30..]);
        // fresh draws: the stream must not replay the training set
        let task = bci3v(7);
        assert_ne!(task.train.samples()[0].values, a[0].values);
        assert!(drift_stream("MNIST", 7, 10, None).is_none());
    }

    #[test]
    fn train_and_test_disjoint_draws() {
        // not literally disjoint sets (both are fresh draws), but they must
        // differ — a degenerate generator would emit identical data
        let t = bci3v(2);
        assert_ne!(t.train.samples()[0].values, t.test.samples()[0].values);
    }
}
