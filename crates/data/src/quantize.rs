//! Discretization of continuous signals to integer levels.

/// Discretizes a float signal to `levels` integer bins by min–max scaling
/// over the given slice, mirroring the paper's preprocessing (inputs are
/// "discretized to 256 levels in advance").
///
/// A constant signal maps to level 0. `levels` must be in `2..=256` so the
/// result fits a `u8`.
///
/// # Panics
///
/// Panics if `levels < 2` or `levels > 256`.
///
/// # Examples
///
/// ```
/// use univsa_data::quantize;
/// let q = quantize(&[0.0, 0.5, 1.0], 256);
/// assert_eq!(q, vec![0, 128, 255]);
/// ```
pub fn quantize(signal: &[f32], levels: usize) -> Vec<u8> {
    assert!((2..=256).contains(&levels), "levels must be in 2..=256");
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &x in signal {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let range = hi - lo;
    if !range.is_finite() || range <= 0.0 {
        return vec![0; signal.len()];
    }
    let max_level = (levels - 1) as f32;
    signal
        .iter()
        .map(|&x| (((x - lo) / range * max_level).round() as usize).min(levels - 1) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_map_to_extremes() {
        let q = quantize(&[-2.0, 3.0], 256);
        assert_eq!(q, vec![0, 255]);
    }

    #[test]
    fn constant_signal_maps_to_zero() {
        assert_eq!(quantize(&[5.0, 5.0, 5.0], 16), vec![0, 0, 0]);
    }

    #[test]
    fn empty_signal() {
        assert!(quantize(&[], 256).is_empty());
    }

    #[test]
    fn binary_levels() {
        let q = quantize(&[0.0, 0.4, 0.6, 1.0], 2);
        assert_eq!(q, vec![0, 0, 1, 1]);
    }

    #[test]
    fn monotone() {
        let xs: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let q = quantize(&xs, 16);
        for w in q.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(q[0], 0);
        assert_eq!(q[99], 15);
    }

    #[test]
    #[should_panic(expected = "levels must be in")]
    fn rejects_one_level() {
        quantize(&[0.0], 1);
    }
}
