//! Dataset containers.

/// One classification sample: a `(W, L)` grid of discretized feature
/// values (row-major, `W` rows of `L` values) and its class label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Discretized feature values in `0..levels`, length `W·L`.
    pub values: Vec<u8>,
    /// Class index in `0..classes`.
    pub label: usize,
}

/// Static description of a classification task — the quantities the paper's
/// Table I lists per benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Task name (e.g. `"EEGMMI"`).
    pub name: String,
    /// Number of sliding windows `W`.
    pub width: usize,
    /// Snippet length `L` per window.
    pub length: usize,
    /// Number of classes `C`.
    pub classes: usize,
    /// Number of discretization levels `M` (256 throughout the paper).
    pub levels: usize,
}

impl TaskSpec {
    /// Total feature count `N = W·L`.
    #[inline]
    pub fn features(&self) -> usize {
        self.width * self.length
    }
}

/// An in-memory labelled dataset with uniform geometry.
///
/// # Examples
///
/// ```
/// use univsa_data::{Dataset, Sample, TaskSpec};
/// let spec = TaskSpec {
///     name: "toy".into(), width: 2, length: 3, classes: 2, levels: 256,
/// };
/// let ds = Dataset::new(spec.clone(), vec![
///     Sample { values: vec![0, 1, 2, 3, 4, 5], label: 0 },
/// ]).unwrap();
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds.spec().features(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    spec: TaskSpec,
    samples: Vec<Sample>,
}

impl Dataset {
    /// Wraps samples with their task spec, validating geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending sample if any sample
    /// has the wrong feature count, a label out of range, or a value at or
    /// above `levels`.
    pub fn new(spec: TaskSpec, samples: Vec<Sample>) -> Result<Self, String> {
        let n = spec.features();
        for (i, s) in samples.iter().enumerate() {
            if s.values.len() != n {
                return Err(format!(
                    "sample {i}: expected {n} values, got {}",
                    s.values.len()
                ));
            }
            if s.label >= spec.classes {
                return Err(format!(
                    "sample {i}: label {} out of range for {} classes",
                    s.label, spec.classes
                ));
            }
            if let Some(&v) = s.values.iter().find(|&&v| v as usize >= spec.levels) {
                return Err(format!(
                    "sample {i}: value {v} out of range for {} levels",
                    spec.levels
                ));
            }
        }
        Ok(Self { spec, samples })
    }

    /// The task description.
    #[inline]
    pub fn spec(&self) -> &TaskSpec {
        &self.spec
    }

    /// The samples.
    #[inline]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.spec.classes];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }

    /// All labels in sample order.
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Converts a sample's values to centred floats in `[-1, 1]`
    /// (`level / (M-1) * 2 - 1`), the normalization the training substrate
    /// consumes.
    pub fn normalized(&self, index: usize) -> Vec<f32> {
        let m = (self.spec.levels - 1).max(1) as f32;
        self.samples[index]
            .values
            .iter()
            .map(|&v| v as f32 / m * 2.0 - 1.0)
            .collect()
    }
}

/// A task bundled with its train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// The task description (shared by both splits).
    pub spec: TaskSpec,
    /// Training split.
    pub train: Dataset,
    /// Held-out evaluation split.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TaskSpec {
        TaskSpec {
            name: "t".into(),
            width: 2,
            length: 2,
            classes: 2,
            levels: 4,
        }
    }

    #[test]
    fn validates_feature_count() {
        let err = Dataset::new(
            spec(),
            vec![Sample {
                values: vec![0, 1, 2],
                label: 0,
            }],
        )
        .unwrap_err();
        assert!(err.contains("expected 4 values"));
    }

    #[test]
    fn validates_label_range() {
        let err = Dataset::new(
            spec(),
            vec![Sample {
                values: vec![0; 4],
                label: 2,
            }],
        )
        .unwrap_err();
        assert!(err.contains("label 2 out of range"));
    }

    #[test]
    fn validates_value_range() {
        let err = Dataset::new(
            spec(),
            vec![Sample {
                values: vec![0, 0, 0, 4],
                label: 0,
            }],
        )
        .unwrap_err();
        assert!(err.contains("value 4 out of range"));
    }

    #[test]
    fn class_counts_and_labels() {
        let ds = Dataset::new(
            spec(),
            vec![
                Sample {
                    values: vec![0; 4],
                    label: 0,
                },
                Sample {
                    values: vec![1; 4],
                    label: 1,
                },
                Sample {
                    values: vec![2; 4],
                    label: 1,
                },
            ],
        )
        .unwrap();
        assert_eq!(ds.class_counts(), vec![1, 2]);
        assert_eq!(ds.labels(), vec![0, 1, 1]);
    }

    #[test]
    fn normalization_range() {
        let ds = Dataset::new(
            spec(),
            vec![Sample {
                values: vec![0, 1, 2, 3],
                label: 0,
            }],
        )
        .unwrap();
        let v = ds.normalized(0);
        assert_eq!(v[0], -1.0);
        assert_eq!(v[3], 1.0);
        assert!(v[1] > -1.0 && v[1] < 0.0);
    }
}
