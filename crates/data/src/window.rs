//! Sliding-window preprocessing of continuous multi-channel recordings.
//!
//! The paper's input format is a preprocessed signal "evenly divided into
//! `W` sliding windows with overlap, where each window contains a signal
//! snippet of length `L`". This module implements that step for users who
//! bring raw recordings: a [`WindowSpec`] slices a 1-D stream into
//! `(W, L)` grids (one grid per classification sample), and
//! [`WindowSpec::grid`] + [`crate::quantize`] produce model-ready samples.

use crate::quantize::quantize;

/// Sliding-window geometry: `W` windows of length `L` with a fixed hop
/// (stride) between window starts; `hop < L` means overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Number of windows per grid (the model's `W`).
    pub windows: usize,
    /// Snippet length per window (the model's `L`).
    pub length: usize,
    /// Samples between consecutive window starts. Must be ≥ 1; `hop <
    /// length` overlaps neighbouring windows (the common BCI setting).
    pub hop: usize,
}

impl WindowSpec {
    /// A spec with 50 % overlap (`hop = length / 2`, minimum 1).
    pub fn with_half_overlap(windows: usize, length: usize) -> Self {
        Self {
            windows,
            length,
            hop: (length / 2).max(1),
        }
    }

    /// Total signal samples one grid consumes:
    /// `(W − 1)·hop + L`.
    pub fn span(&self) -> usize {
        if self.windows == 0 {
            0
        } else {
            (self.windows - 1) * self.hop + self.length
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description if any extent is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.windows == 0 || self.length == 0 || self.hop == 0 {
            return Err("windows, length, and hop must all be nonzero".into());
        }
        Ok(())
    }

    /// Slices one `(W, L)` grid starting at `offset`, row-major
    /// (window-major), or `None` if the signal is too short.
    pub fn grid(&self, signal: &[f32], offset: usize) -> Option<Vec<f32>> {
        if self.validate().is_err() {
            return None;
        }
        let end = offset.checked_add(self.span())?;
        if end > signal.len() {
            return None;
        }
        let mut out = Vec::with_capacity(self.windows * self.length);
        for w in 0..self.windows {
            let start = offset + w * self.hop;
            out.extend_from_slice(&signal[start..start + self.length]);
        }
        Some(out)
    }

    /// Iterates every grid of a long recording with the given stride
    /// between *grids* (e.g. one grid per second of signal), quantized to
    /// `levels` — ready for [`crate::Dataset`] assembly or direct
    /// inference.
    ///
    /// # Panics
    ///
    /// Panics if `grid_stride` is zero or the spec is invalid.
    pub fn quantized_grids(
        &self,
        signal: &[f32],
        grid_stride: usize,
        levels: usize,
    ) -> Vec<Vec<u8>> {
        assert!(grid_stride > 0, "grid stride must be positive");
        self.validate().expect("window spec must be valid");
        let mut grids = Vec::new();
        let mut offset = 0;
        while let Some(grid) = self.grid(signal, offset) {
            grids.push(quantize(&grid, levels));
            offset += grid_stride;
        }
        grids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_formula() {
        let spec = WindowSpec {
            windows: 4,
            length: 8,
            hop: 4,
        };
        assert_eq!(spec.span(), 3 * 4 + 8);
        assert_eq!(
            WindowSpec {
                windows: 0,
                length: 8,
                hop: 4
            }
            .span(),
            0
        );
    }

    #[test]
    fn half_overlap_constructor() {
        let spec = WindowSpec::with_half_overlap(4, 8);
        assert_eq!(spec.hop, 4);
        let tiny = WindowSpec::with_half_overlap(4, 1);
        assert_eq!(tiny.hop, 1);
    }

    #[test]
    fn grid_slices_with_overlap() {
        let signal: Vec<f32> = (0..20).map(|x| x as f32).collect();
        let spec = WindowSpec {
            windows: 3,
            length: 4,
            hop: 2,
        };
        let grid = spec.grid(&signal, 0).unwrap();
        assert_eq!(
            grid,
            vec![0.0, 1.0, 2.0, 3.0, 2.0, 3.0, 4.0, 5.0, 4.0, 5.0, 6.0, 7.0]
        );
    }

    #[test]
    fn grid_rejects_short_signal() {
        let spec = WindowSpec {
            windows: 3,
            length: 4,
            hop: 2,
        };
        // span = 8
        assert!(spec.grid(&[0.0; 7], 0).is_none());
        assert!(spec.grid(&[0.0; 8], 0).is_some());
        assert!(spec.grid(&[0.0; 8], 1).is_none());
    }

    #[test]
    fn quantized_grids_walk_the_recording() {
        let signal: Vec<f32> = (0..100).map(|x| (x as f32).sin()).collect();
        let spec = WindowSpec {
            windows: 2,
            length: 8,
            hop: 4,
        };
        // span = 12; stride 10 → offsets 0, 10, 20, ..., 88
        let grids = spec.quantized_grids(&signal, 10, 256);
        assert_eq!(grids.len(), 9);
        for g in &grids {
            assert_eq!(g.len(), 16);
        }
    }

    #[test]
    fn validate_rejects_zero() {
        assert!(WindowSpec {
            windows: 0,
            length: 4,
            hop: 1
        }
        .validate()
        .is_err());
        assert!(WindowSpec {
            windows: 2,
            length: 0,
            hop: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let spec = WindowSpec {
            windows: 2,
            length: 4,
            hop: 2,
        };
        spec.quantized_grids(&[0.0; 32], 0, 256);
    }
}
