//! Class-conditional synthetic signal generator.
//!
//! Each class is a mixture of *modes*; each mode is a sum of band-limited
//! oscillatory components over the `(W, L)` window grid. On top of the
//! per-class oscillatory base the generator injects:
//!
//! * **cross-feature interactions** — a class-specific `±1` pattern
//!   multiplied with the product of horizontally adjacent cells, carrying
//!   class information that no per-feature encoding can see but a small
//!   convolution can;
//! * **irrelevant rows** — a class-independent subset of window rows
//!   replaced by pure noise, giving the DVP feature-importance mask
//!   something real to discard;
//! * additive Gaussian noise and per-sample amplitude jitter.

use rand::Rng;

use crate::quantize::quantize;
use crate::{Dataset, Sample, TaskSpec};

/// Tunable knobs of the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorParams {
    /// Task geometry and class count.
    pub spec: TaskSpec,
    /// Oscillatory components per mode.
    pub components: usize,
    /// Modes (sub-clusters) per class. More than one makes classes
    /// multi-modal, which favours local methods (KNN) over global linear
    /// ones (LDA).
    pub modes: usize,
    /// Standard deviation of the additive Gaussian noise.
    pub noise: f32,
    /// Strength of the class-conditional neighbour-product interaction term.
    /// This is the component only feature-interacting models (BiConv) can
    /// decode.
    pub interaction: f32,
    /// Fraction of window rows that carry no class information (pure
    /// noise). These are what the DVP mask should mark low-importance.
    pub irrelevant_rows: f32,
    /// Relative weight of the linearly separable per-class mean offset.
    /// Larger values make the task easier for linear models.
    pub linear_bias: f32,
    /// Per-sample amplitude jitter range (multiplicative `1 ± jitter`).
    pub jitter: f32,
    /// Scale of the per-class perturbation of the *shared* oscillator
    /// bank. All classes ride the same base signal; only this fraction of
    /// frequency/phase shift separates them — the knob that controls how
    /// hard the task is overall.
    pub class_signal: f32,
    /// Fraction of features that carry any class information at all (both
    /// the linear offsets and the interaction patterns are sparse): with
    /// hundreds of features, dense class signal accumulates into a trivial
    /// margin, so difficulty is controlled by keeping the informative set
    /// small.
    pub informative_fraction: f32,
    /// Amplitude of the shared oscillatory texture. The texture carries no
    /// linear class signal (its carrier phase is randomized per sample)
    /// but inflates distances, so it directly controls how hard
    /// distance-based methods (KNN) have it.
    pub texture: f32,
    /// Amplitude of the per-mode cluster offsets. Because the modes of a
    /// class average out, this component is nearly invisible to linear
    /// class means but trivially resolved by local methods — it is what
    /// makes KNN shine on the BCI-III-V-like task.
    pub cluster_spread: f32,
    /// Per-class multiplicative gain spread on the oscillatory texture and
    /// noise: class `c` gets gain `1 + class_gain·(c/(C−1) − ½)`. Energy
    /// differences are invisible to linear class means (LDA) but easy for
    /// RBF kernels and nearest neighbours — the CHB-style profile.
    pub class_gain: f32,
    /// Probability that a sample's label is replaced by a uniformly random
    /// other class — label noise, capping every method's achievable
    /// accuracy the way real recording/annotation noise does.
    pub label_noise: f32,
    /// Probability that a cell is corrupted by a heavy-tail outlier
    /// (value amplified 3–6×). Float methods (LDA, SVM, KNN) eat the full
    /// outlier; the 256-level fixed-range discretization clips it — the
    /// honest mechanism behind quantized VSA models outperforming float
    /// baselines on noisy IMU data (the paper's HAR result).
    pub outlier_rate: f32,
}

impl GeneratorParams {
    /// Sensible defaults for a given geometry: moderately noisy, with
    /// interaction and irrelevant structure present.
    pub fn new(spec: TaskSpec) -> Self {
        Self {
            spec,
            components: 3,
            modes: 1,
            noise: 0.35,
            interaction: 0.5,
            irrelevant_rows: 0.25,
            linear_bias: 0.4,
            jitter: 0.15,
            class_signal: 0.05,
            informative_fraction: 0.15,
            texture: 1.0,
            cluster_spread: 0.0,
            class_gain: 0.0,
            label_noise: 0.0,
            outlier_rate: 0.0,
        }
    }
}

/// Where and how hard a generated stream drifts (see
/// [`SyntheticGenerator::stream`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSpec {
    /// Sample index at which the shift switches on.
    pub at: usize,
    /// Per-cell corruption probability in `[0, 1]` once active.
    pub strength: f32,
}

/// Frozen per-class signal structure drawn once from the master seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassProfile {
    /// `modes × components` tuples of (frequency, amplitude, phase,
    /// per-row phase velocity).
    pub oscillators: Vec<Vec<(f32, f32, f32, f32)>>,
    /// `(W, L)` grid of `±1` controlling the sign of the neighbour-product
    /// interaction term for this class.
    pub interaction_pattern: Vec<f32>,
    /// Per-class common mean offsets — the linearly separable component.
    pub common_offset: Vec<f32>,
    /// Per-mode, per-feature cluster offsets, scaled by
    /// [`GeneratorParams::cluster_spread`]. Modes of one class average
    /// out, so this component defeats linear class means while local
    /// methods resolve it.
    pub mean_offset: Vec<Vec<f32>>,
}

/// The generator: frozen class profiles plus sampling parameters.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use univsa_data::{GeneratorParams, SyntheticGenerator, TaskSpec};
/// let spec = TaskSpec { name: "toy".into(), width: 4, length: 8, classes: 2, levels: 256 };
/// let params = GeneratorParams::new(spec);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let gen = SyntheticGenerator::new(params, &mut rng);
/// let ds = gen.dataset(&[10, 10], &mut rng);
/// assert_eq!(ds.len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    params: GeneratorParams,
    profiles: Vec<ClassProfile>,
    /// Rows (windows) that carry no class information.
    noise_rows: Vec<bool>,
}

impl SyntheticGenerator {
    /// Draws frozen class profiles from the RNG.
    pub fn new<R: Rng + ?Sized>(params: GeneratorParams, rng: &mut R) -> Self {
        let (w, l) = (params.spec.width, params.spec.length);
        let n = w * l;
        // one shared oscillator bank per mode — classes are perturbations
        // of the SAME signal, so separability is governed by
        // `class_signal`, not by entirely different waveforms
        let base: Vec<Vec<(f32, f32, f32, f32)>> = (0..params.modes)
            .map(|_| {
                (0..params.components)
                    .map(|_| {
                        (
                            rng.gen_range(1.0..8.0),                   // frequency
                            rng.gen_range(0.5..1.0),                   // amplitude
                            rng.gen_range(0.0..std::f32::consts::TAU), // phase
                            rng.gen_range(-0.6..0.6),                  // row velocity
                        )
                    })
                    .collect()
            })
            .collect();
        let cs = params.class_signal;
        let profiles = (0..params.spec.classes)
            .map(|_| ClassProfile {
                oscillators: base
                    .iter()
                    .map(|mode| {
                        mode.iter()
                            .map(|&(freq, amp, phase, vel)| {
                                (
                                    freq + rng.gen_range(-0.5..0.5) * cs * freq,
                                    amp,
                                    phase + rng.gen_range(-1.0..1.0) * cs * std::f32::consts::PI,
                                    vel + rng.gen_range(-0.3..0.3) * cs,
                                )
                            })
                            .collect()
                    })
                    .collect(),
                interaction_pattern: (0..n)
                    .map(|_| {
                        if rng.gen::<f32>() < params.informative_fraction {
                            if rng.gen::<bool>() {
                                1.0
                            } else {
                                -1.0
                            }
                        } else {
                            0.0
                        }
                    })
                    .collect(),
                common_offset: (0..n)
                    .map(|_| {
                        if rng.gen::<f32>() < params.informative_fraction {
                            if rng.gen::<bool>() {
                                1.0
                            } else {
                                -1.0
                            }
                        } else {
                            0.0
                        }
                    })
                    .collect(),
                mean_offset: {
                    // antipodal pairing: modes 2k and 2k+1 use opposite
                    // patterns, so the class mean of the cluster offsets is
                    // (near) zero — linear class means cannot see the
                    // clusters, local methods can
                    let half = params.modes.div_ceil(2);
                    let patterns: Vec<Vec<f32>> = (0..half)
                        .map(|_| {
                            (0..n)
                                .map(|_| {
                                    if rng.gen::<f32>() < params.informative_fraction {
                                        if rng.gen::<bool>() {
                                            1.0
                                        } else {
                                            -1.0
                                        }
                                    } else {
                                        0.0
                                    }
                                })
                                .collect()
                        })
                        .collect();
                    (0..params.modes)
                        .map(|m| {
                            let sign = if m % 2 == 0 { 1.0 } else { -1.0 };
                            patterns[m / 2].iter().map(|&v| sign * v).collect()
                        })
                        .collect()
                },
            })
            .collect();
        let noisy = ((w as f32) * params.irrelevant_rows).round() as usize;
        let mut noise_rows = vec![false; w];
        // the *last* rows are the uninformative ones (deterministic, so the
        // DVP mask has a stable target across seeds of the same task)
        for row in noise_rows.iter_mut().skip(w - noisy.min(w)) {
            *row = true;
        }
        Self {
            params,
            profiles,
            noise_rows,
        }
    }

    /// The generator parameters.
    #[inline]
    pub fn params(&self) -> &GeneratorParams {
        &self.params
    }

    /// Which window rows are class-independent noise (ground truth for
    /// feature-importance evaluation).
    #[inline]
    pub fn noise_rows(&self) -> &[bool] {
        &self.noise_rows
    }

    /// Draws one sample of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `class >= classes`.
    pub fn sample<R: Rng + ?Sized>(&self, class: usize, rng: &mut R) -> Sample {
        let p = &self.params;
        let (w, l) = (p.spec.width, p.spec.length);
        let profile = &self.profiles[class];
        let mode = rng.gen_range(0..p.modes);
        let oscillators = &profile.oscillators[mode];
        let denom = (p.spec.classes - 1).max(1) as f32;
        let class_energy = 1.0 + p.class_gain * (class as f32 / denom - 0.5);
        let gain = class_energy * (1.0 + rng.gen_range(-p.jitter..=p.jitter));
        // per-sample random carrier phases: feature marginals of the
        // oscillatory base average to zero across samples, so the base
        // texture (and anything multiplying it, like the interaction term)
        // carries no *linear* per-feature class signal
        let carrier: Vec<f32> = (0..oscillators.len())
            .map(|_| rng.gen_range(0.0..std::f32::consts::TAU))
            .collect();

        // oscillatory base
        let mut base = vec![0.0f32; w * l];
        for (wi, row) in base.chunks_mut(l).enumerate() {
            for (li, cell) in row.iter_mut().enumerate() {
                let t = li as f32 / l as f32;
                let mut v = 0.0;
                for (&(freq, amp, phase, vel), &shift) in oscillators.iter().zip(&carrier) {
                    v += amp
                        * (std::f32::consts::TAU * freq * t + phase + shift + vel * wi as f32)
                            .sin();
                }
                *cell = gain * p.texture * v;
            }
        }

        // class-conditional neighbour-product interaction: flip the product
        // of adjacent cells toward the class's ±1 pattern
        let mut signal = base.clone();
        if p.interaction > 0.0 {
            for wi in 0..w {
                for li in 0..l.saturating_sub(1) {
                    let idx = wi * l + li;
                    let pattern = profile.interaction_pattern[idx];
                    if pattern == 0.0 {
                        continue;
                    }
                    let neighbour = base[idx + 1];
                    signal[idx] +=
                        p.interaction * pattern * neighbour.signum() * neighbour.abs().min(1.0);
                }
            }
        }

        // linear per-class offset, noise, irrelevant rows
        for wi in 0..w {
            for li in 0..l {
                let idx = wi * l + li;
                if self.noise_rows[wi] {
                    signal[idx] = 1.5 * gaussian(rng);
                } else {
                    signal[idx] += p.linear_bias * profile.common_offset[idx]
                        + p.cluster_spread * profile.mean_offset[mode][idx];
                    signal[idx] += class_energy * p.noise * gaussian(rng);
                    if p.outlier_rate > 0.0 && rng.gen::<f32>() < p.outlier_rate {
                        signal[idx] *= rng.gen_range(3.0..6.0);
                    }
                }
            }
        }

        // fixed-range discretization (clip to ±4, matching the paper's
        // "discretized to 256 levels in advance")
        let clipped: Vec<f32> = signal.iter().map(|&x| x.clamp(-4.0, 4.0)).collect();
        let values = fixed_quantize(&clipped, p.spec.levels);
        let mut label = class;
        if p.label_noise > 0.0 && rng.gen::<f32>() < p.label_noise {
            let c = p.spec.classes;
            if c > 1 {
                let mut other = rng.gen_range(0..c - 1);
                if other >= class {
                    other += 1;
                }
                label = other;
            }
        }
        Sample { values, label }
    }

    /// Generates a labelled prediction stream: `total` samples with
    /// classes cycling round-robin (so class frequencies are stationary
    /// by construction), optionally switching on a seeded concept drift
    /// at `drift.at`. Drift corrupts each discretized cell to a uniformly
    /// random level with probability `drift.strength`, which collapses
    /// similarity margins and scrambles predictions — the signature a
    /// margin/class-frequency drift detector must catch.
    ///
    /// The RNG is only consulted for post-drift corruption *after* each
    /// sample is drawn, so the first `drift.at` samples of a drifted
    /// stream are bit-identical to the stationary stream from the same
    /// RNG state — detection latency can be measured against an exact
    /// change point.
    pub fn stream<R: Rng + ?Sized>(
        &self,
        total: usize,
        drift: Option<DriftSpec>,
        rng: &mut R,
    ) -> Vec<Sample> {
        let classes = self.params.spec.classes;
        let levels = self.params.spec.levels.min(256) as u32;
        (0..total)
            .map(|i| {
                let mut s = self.sample(i % classes, rng);
                if let Some(d) = drift {
                    if i >= d.at && d.strength > 0.0 {
                        for v in s.values.iter_mut() {
                            if rng.gen::<f32>() < d.strength {
                                *v = rng.gen_range(0..levels) as u8;
                            }
                        }
                    }
                }
                s
            })
            .collect()
    }

    /// Draws a dataset with the given per-class sample counts.
    ///
    /// # Panics
    ///
    /// Panics if `per_class.len() != classes`.
    pub fn dataset<R: Rng + ?Sized>(&self, per_class: &[usize], rng: &mut R) -> Dataset {
        assert_eq!(
            per_class.len(),
            self.params.spec.classes,
            "per_class must list one count per class"
        );
        let mut samples = Vec::new();
        for (class, &n) in per_class.iter().enumerate() {
            for _ in 0..n {
                samples.push(self.sample(class, rng));
            }
        }
        Dataset::new(self.params.spec.clone(), samples).expect("generator emits valid samples")
    }
}

/// Standard normal draw via Box–Muller (rand 0.8 core has no Gaussian).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Quantizes over the fixed range `[-4, 4]` rather than per-sample min–max,
/// so amplitude information survives.
fn fixed_quantize(signal: &[f32], levels: usize) -> Vec<u8> {
    let mut padded = Vec::with_capacity(signal.len() + 2);
    padded.extend_from_slice(signal);
    padded.push(-4.0);
    padded.push(4.0);
    let mut q = quantize(&padded, levels);
    q.truncate(signal.len());
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generator(seed: u64) -> SyntheticGenerator {
        let spec = TaskSpec {
            name: "toy".into(),
            width: 4,
            length: 16,
            classes: 3,
            levels: 256,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        SyntheticGenerator::new(GeneratorParams::new(spec), &mut rng)
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = generator(5);
        let g2 = generator(5);
        let s1 = g1.sample(0, &mut StdRng::seed_from_u64(1));
        let s2 = g2.sample(0, &mut StdRng::seed_from_u64(1));
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_classes_differ() {
        let g = generator(6);
        let a = g.sample(0, &mut StdRng::seed_from_u64(1));
        let b = g.sample(1, &mut StdRng::seed_from_u64(1));
        assert_ne!(a.values, b.values);
    }

    #[test]
    fn dataset_counts_and_labels() {
        let g = generator(7);
        let ds = g.dataset(&[5, 3, 2], &mut StdRng::seed_from_u64(2));
        assert_eq!(ds.class_counts(), vec![5, 3, 2]);
    }

    #[test]
    fn values_fill_level_range_reasonably() {
        let g = generator(8);
        let ds = g.dataset(&[50, 50, 50], &mut StdRng::seed_from_u64(3));
        let mut lo = u8::MAX;
        let mut hi = 0u8;
        for s in ds.samples() {
            for &v in &s.values {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        // signal spans a good part of the 256-level range
        assert!(hi > 160, "hi={hi}");
        assert!(lo < 96, "lo={lo}");
    }

    #[test]
    fn noise_rows_marked() {
        let g = generator(9);
        // 25% of 4 rows = 1 noise row, placed last
        assert_eq!(g.noise_rows(), &[false, false, false, true]);
    }

    #[test]
    fn classes_are_separable_by_nearest_mean() {
        // sanity: with a strong linear component, a trivial
        // nearest-class-mean classifier should beat chance
        let spec = TaskSpec {
            name: "toy".into(),
            width: 4,
            length: 16,
            classes: 3,
            levels: 256,
        };
        let mut params = GeneratorParams::new(spec);
        params.linear_bias = 0.9;
        params.informative_fraction = 0.5;
        params.noise = 0.25;
        params.texture = 0.4;
        let mut grng = StdRng::seed_from_u64(10);
        let g = SyntheticGenerator::new(params, &mut grng);
        let mut rng = StdRng::seed_from_u64(4);
        let train = g.dataset(&[40, 40, 40], &mut rng);
        let test = g.dataset(&[20, 20, 20], &mut rng);
        let n = train.spec().features();
        let mut means = vec![vec![0.0f64; n]; 3];
        let counts = train.class_counts();
        for (i, s) in train.samples().iter().enumerate() {
            let v = train.normalized(i);
            for (m, &x) in means[s.label].iter_mut().zip(&v) {
                *m += x as f64;
            }
        }
        for (c, m) in means.iter_mut().enumerate() {
            for x in m.iter_mut() {
                *x /= counts[c] as f64;
            }
        }
        let mut correct = 0;
        for (i, s) in test.samples().iter().enumerate() {
            let v = test.normalized(i);
            let best = (0..3)
                .min_by(|&a, &b| {
                    let da: f64 = means[a]
                        .iter()
                        .zip(&v)
                        .map(|(&m, &x)| (m - x as f64).powi(2))
                        .sum();
                    let db: f64 = means[b]
                        .iter()
                        .zip(&v)
                        .map(|(&m, &x)| (m - x as f64).powi(2))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == s.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.5, "nearest-mean accuracy {acc} not above chance");
    }

    #[test]
    #[should_panic(expected = "one count per class")]
    fn dataset_checks_class_count() {
        let g = generator(11);
        g.dataset(&[1, 1], &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn stream_cycles_classes_and_shares_prefix_with_stationary() {
        let g = generator(12);
        let drift = DriftSpec {
            at: 30,
            strength: 0.5,
        };
        let stationary = g.stream(60, None, &mut StdRng::seed_from_u64(5));
        let drifted = g.stream(60, Some(drift), &mut StdRng::seed_from_u64(5));
        for (i, s) in stationary.iter().enumerate() {
            assert_eq!(s.label, i % 3, "round-robin labels");
        }
        assert_eq!(
            &stationary[..30],
            &drifted[..30],
            "pre-drift samples are bit-identical"
        );
        assert_ne!(
            &stationary[30..],
            &drifted[30..],
            "post-drift samples must differ"
        );
        // same seed → same drifted stream, sample for sample
        let replay = g.stream(60, Some(drift), &mut StdRng::seed_from_u64(5));
        assert_eq!(drifted, replay);
        // zero strength is exactly the stationary stream
        let zero = g.stream(
            60,
            Some(DriftSpec {
                at: 30,
                strength: 0.0,
            }),
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(zero, stationary);
    }
}
