//! Stratified train/test splitting.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Dataset, Sample};

/// Splits a dataset into train/test parts, preserving per-class proportions.
///
/// `train_fraction` of each class (rounded down, but at least one sample
/// when the class has ≥ 2 samples) goes to the training split.
///
/// # Panics
///
/// Panics if `train_fraction` is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use univsa_data::{stratified_split, Dataset, Sample, TaskSpec};
/// let spec = TaskSpec { name: "t".into(), width: 1, length: 1, classes: 2, levels: 2 };
/// let samples = (0..10).map(|i| Sample { values: vec![0], label: i % 2 }).collect();
/// let ds = Dataset::new(spec, samples).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let (train, test) = stratified_split(&ds, 0.8, &mut rng);
/// assert_eq!(train.len(), 8);
/// assert_eq!(test.len(), 2);
/// ```
pub fn stratified_split<R: Rng + ?Sized>(
    dataset: &Dataset,
    train_fraction: f64,
    rng: &mut R,
) -> (Dataset, Dataset) {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train fraction must be in (0, 1)"
    );
    let mut by_class: Vec<Vec<&Sample>> = vec![Vec::new(); dataset.spec().classes];
    for s in dataset.samples() {
        by_class[s.label].push(s);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for mut group in by_class {
        group.shuffle(rng);
        let mut take = (group.len() as f64 * train_fraction).floor() as usize;
        if take == 0 && group.len() >= 2 {
            take = 1;
        }
        for (i, s) in group.into_iter().enumerate() {
            if i < take {
                train.push(s.clone());
            } else {
                test.push(s.clone());
            }
        }
    }
    train.shuffle(rng);
    test.shuffle(rng);
    let spec = dataset.spec().clone();
    (
        Dataset::new(spec.clone(), train).expect("split preserves validity"),
        Dataset::new(spec, test).expect("split preserves validity"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(per_class: &[usize]) -> Dataset {
        let spec = TaskSpec {
            name: "t".into(),
            width: 1,
            length: 1,
            classes: per_class.len(),
            levels: 2,
        };
        let mut samples = Vec::new();
        for (label, &n) in per_class.iter().enumerate() {
            for _ in 0..n {
                samples.push(Sample {
                    values: vec![0],
                    label,
                });
            }
        }
        Dataset::new(spec, samples).unwrap()
    }

    #[test]
    fn preserves_class_proportions() {
        let ds = dataset(&[100, 50]);
        let mut rng = StdRng::seed_from_u64(0);
        let (train, test) = stratified_split(&ds, 0.8, &mut rng);
        assert_eq!(train.class_counts(), vec![80, 40]);
        assert_eq!(test.class_counts(), vec![20, 10]);
    }

    #[test]
    fn no_sample_lost() {
        let ds = dataset(&[33, 67, 10]);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = stratified_split(&ds, 0.7, &mut rng);
        assert_eq!(train.len() + test.len(), 110);
    }

    #[test]
    fn tiny_class_keeps_one_in_train() {
        let ds = dataset(&[2]);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = stratified_split(&ds, 0.1, &mut rng);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn rejects_full_fraction() {
        let ds = dataset(&[4]);
        let mut rng = StdRng::seed_from_u64(3);
        stratified_split(&ds, 1.0, &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset(&[20, 20]);
        let (a, _) = stratified_split(&ds, 0.5, &mut StdRng::seed_from_u64(4));
        let (b, _) = stratified_split(&ds, 0.5, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
    }
}
