//! # univsa-data
//!
//! Synthetic classification tasks with the exact input geometry of the
//! UniVSA paper's benchmarks (Table I).
//!
//! The paper evaluates on six real recordings (EEGMMI, BCI-III-V, CHB-B,
//! CHB-IB, ISOLET, HAR) that are either access-gated or large; this crate
//! substitutes seeded synthetic generators that preserve what the algorithms
//! under test actually consume:
//!
//! * the `(W, L)` sliding-window grid shape and class count of each task,
//! * discretization to `M = 256` levels,
//! * class-conditional band-limited oscillatory structure with noise,
//! * **cross-feature interactions** (class information carried by products
//!   of neighbouring cells) — the signal component that plain binary VSA
//!   encoding cannot exploit but convolutional feature extraction can,
//!   which is the paper's central algorithmic claim,
//! * irrelevant/noisy feature regions — the signal component that
//!   discriminated value projection (DVP) is designed to down-weight.
//!
//! Every generator is deterministic given its seed.
//!
//! # Examples
//!
//! ```
//! use univsa_data::tasks;
//!
//! let task = tasks::isolet(42);
//! assert_eq!(task.spec.classes, 26);
//! assert_eq!((task.spec.width, task.spec.length), (16, 40));
//! let sample = &task.train.samples()[0];
//! assert_eq!(sample.values.len(), 16 * 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
mod dataset;
mod quantize;
mod split;
mod synth;
pub mod tasks;
mod window;

pub use dataset::{Dataset, Sample, Task, TaskSpec};
pub use quantize::quantize;
pub use split::stratified_split;
pub use synth::{ClassProfile, DriftSpec, GeneratorParams, SyntheticGenerator};
pub use window::WindowSpec;
