//! CSV import/export for datasets.
//!
//! Lets users of the library bring their *own* preprocessed recordings
//! (the paper's pipeline assumes inputs are windowed and discretized in
//! advance). The format is one sample per line: the label followed by
//! `W·L` discretized values, comma-separated; a `#`-prefixed header line
//! is optional and ignored.

use std::num::ParseIntError;

use crate::{Dataset, Sample, TaskSpec};

/// Serializes a dataset to CSV (one line per sample: `label, v0, v1, …`),
/// with a `#` header describing the geometry.
///
/// # Examples
///
/// ```
/// use univsa_data::{csv, Dataset, Sample, TaskSpec};
/// let spec = TaskSpec { name: "toy".into(), width: 1, length: 2, classes: 2, levels: 256 };
/// let ds = Dataset::new(spec, vec![Sample { values: vec![7, 9], label: 1 }]).unwrap();
/// let text = csv::to_csv(&ds);
/// let back = csv::from_csv(&text, ds.spec().clone()).unwrap();
/// assert_eq!(back, ds);
/// ```
pub fn to_csv(dataset: &Dataset) -> String {
    let spec = dataset.spec();
    let mut out = format!(
        "# univsa dataset: name={} width={} length={} classes={} levels={}\n",
        spec.name, spec.width, spec.length, spec.classes, spec.levels
    );
    for sample in dataset.samples() {
        out.push_str(&sample.label.to_string());
        for v in &sample.values {
            out.push(',');
            out.push_str(&v.to_string());
        }
        out.push('\n');
    }
    out
}

/// Parses a dataset from CSV text against an expected task spec.
///
/// # Errors
///
/// Returns a line-tagged message when a line has the wrong field count, a
/// non-numeric field, or when the assembled dataset violates the spec
/// (label/value out of range).
pub fn from_csv(text: &str, spec: TaskSpec) -> Result<Dataset, String> {
    let n = spec.features();
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let label: usize = parse_field(fields.next(), lineno, "label")?;
        let values: Vec<u8> = fields
            .map(|f| {
                f.trim().parse::<u8>().map_err(|e: ParseIntError| {
                    format!("line {}: bad value {f:?}: {e}", lineno + 1)
                })
            })
            .collect::<Result<_, _>>()?;
        if values.len() != n {
            return Err(format!(
                "line {}: expected {} values, got {}",
                lineno + 1,
                n,
                values.len()
            ));
        }
        samples.push(Sample { values, label });
    }
    Dataset::new(spec, samples)
}

fn parse_field(field: Option<&str>, lineno: usize, what: &str) -> Result<usize, String> {
    field
        .ok_or_else(|| format!("line {}: missing {what}", lineno + 1))?
        .trim()
        .parse()
        .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TaskSpec {
        TaskSpec {
            name: "t".into(),
            width: 1,
            length: 3,
            classes: 2,
            levels: 256,
        }
    }

    fn dataset() -> Dataset {
        Dataset::new(
            spec(),
            vec![
                Sample {
                    values: vec![1, 2, 3],
                    label: 0,
                },
                Sample {
                    values: vec![200, 100, 0],
                    label: 1,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let ds = dataset();
        let text = to_csv(&ds);
        assert_eq!(from_csv(&text, spec()).unwrap(), ds);
    }

    #[test]
    fn header_and_blank_lines_ignored() {
        let text = "# comment\n\n0,1,2,3\n";
        let ds = from_csv(text, spec()).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn whitespace_tolerated() {
        let ds = from_csv("1, 10 ,20,30", spec()).unwrap();
        assert_eq!(ds.samples()[0].values, vec![10, 20, 30]);
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = from_csv("0,1,2", spec()).unwrap_err();
        assert!(err.contains("expected 3 values, got 2"), "{err}");
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(from_csv("x,1,2,3", spec())
            .unwrap_err()
            .contains("bad label"));
        assert!(from_csv("0,1,abc,3", spec())
            .unwrap_err()
            .contains("bad value"));
        assert!(from_csv("0,1,300,3", spec())
            .unwrap_err()
            .contains("bad value"));
    }

    #[test]
    fn rejects_label_out_of_range() {
        let err = from_csv("5,1,2,3", spec()).unwrap_err();
        assert!(err.contains("label 5 out of range"), "{err}");
    }

    #[test]
    fn line_numbers_are_one_based_and_skip_comments() {
        let err = from_csv("# header\n0,1,2,3\n0,1,2\n", spec()).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
    }
}
