//! Linear discriminant analysis with shrinkage covariance.

use univsa_data::Dataset;
use univsa_tensor::Tensor;

use crate::{normalize_sample, Classifier};

/// Multi-class LDA: pooled within-class covariance with diagonal shrinkage,
/// linear discriminants `δ_c(x) = wᵀ_c x + b_c`.
///
/// The deployed model is the `C × N` float32 weight matrix plus `C`
/// biases — the memory the paper charges LDA (e.g. 8.19 KB for EEGMMI's
/// `2 × 1024` floats).
#[derive(Debug, Clone)]
pub struct Lda {
    weights: Vec<f32>, // (classes, features)
    biases: Vec<f32>,
    features: usize,
    classes: usize,
    levels: usize,
}

impl Lda {
    /// Fits LDA on a training split with the given shrinkage coefficient
    /// `γ ∈ [0, 1]` (`Σ' = (1−γ)·Σ + γ·tr(Σ)/N·I`).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `γ` is outside `[0, 1]`.
    pub fn fit(train: &Dataset, shrinkage: f64) -> Self {
        assert!(!train.is_empty(), "LDA needs a nonempty training split");
        assert!(
            (0.0..=1.0).contains(&shrinkage),
            "shrinkage must be in [0, 1]"
        );
        let n = train.spec().features();
        let classes = train.spec().classes;
        let total = train.len();

        // class means and priors
        let counts = train.class_counts();
        let mut means = vec![vec![0.0f64; n]; classes];
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(total);
        for (i, s) in train.samples().iter().enumerate() {
            let x = train.normalized(i);
            for (m, &v) in means[s.label].iter_mut().zip(&x) {
                *m += v as f64;
            }
            rows.push(x);
        }
        for (c, mean) in means.iter_mut().enumerate() {
            let k = counts[c].max(1) as f64;
            for m in mean.iter_mut() {
                *m /= k;
            }
        }

        // pooled covariance
        let mut cov = vec![0.0f64; n * n];
        for (s, x) in train.samples().iter().zip(&rows) {
            let mean = &means[s.label];
            let centred: Vec<f64> = x.iter().zip(mean).map(|(&v, &m)| v as f64 - m).collect();
            for i in 0..n {
                let ci = centred[i];
                if ci == 0.0 {
                    continue;
                }
                let row = &mut cov[i * n..(i + 1) * n];
                for (slot, &cj) in row.iter_mut().zip(&centred) {
                    *slot += ci * cj;
                }
            }
        }
        let denom = (total.saturating_sub(classes)).max(1) as f64;
        let mut trace = 0.0f64;
        for i in 0..n {
            trace += cov[i * n + i];
        }
        let ridge = shrinkage * trace / denom / n as f64 + 1e-6;
        for v in cov.iter_mut() {
            *v = (1.0 - shrinkage) * *v / denom;
        }
        for i in 0..n {
            cov[i * n + i] += ridge;
        }

        // solve Σ' W = Mᵀ  → W columns are Σ'⁻¹ μ_c
        let a = Tensor::from_vec(cov.iter().map(|&v| v as f32).collect(), &[n, n])
            .expect("covariance is square");
        let mut mt = vec![0.0f32; n * classes];
        for (c, mean) in means.iter().enumerate() {
            for (i, &m) in mean.iter().enumerate() {
                mt[i * classes + c] = m as f32;
            }
        }
        let b = Tensor::from_vec(mt, &[n, classes]).expect("rhs shape");
        let w = a.solve(&b).expect("shrinkage keeps the system regular");

        // weights and biases
        let mut weights = vec![0.0f32; classes * n];
        let mut biases = vec![0.0f32; classes];
        for c in 0..classes {
            let mut dot = 0.0f64;
            for i in 0..n {
                let wi = w.at(&[i, c]);
                weights[c * n + i] = wi;
                dot += wi as f64 * means[c][i];
            }
            let prior = (counts[c].max(1) as f64 / total as f64).ln();
            biases[c] = (prior - 0.5 * dot) as f32;
        }
        Self {
            weights,
            biases,
            features: n,
            classes,
            levels: train.spec().levels,
        }
    }

    /// Per-class discriminant scores for one normalized sample.
    fn scores(&self, x: &[f32]) -> Vec<f32> {
        (0..self.classes)
            .map(|c| {
                let w = &self.weights[c * self.features..(c + 1) * self.features];
                let dot: f32 = w.iter().zip(x).map(|(&a, &b)| a * b).sum();
                dot + self.biases[c]
            })
            .collect()
    }
}

impl Classifier for Lda {
    fn name(&self) -> &str {
        "LDA"
    }

    fn predict(&self, values: &[u8]) -> usize {
        let x = normalize_sample(values, self.levels);
        let scores = self.scores(&x);
        scores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn memory_bits(&self) -> Option<usize> {
        // C×N float32 weights + C float32 biases
        Some((self.classes * self.features + self.classes) * 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use univsa_data::{GeneratorParams, SyntheticGenerator, TaskSpec};

    fn linear_task(seed: u64) -> (Dataset, Dataset) {
        let spec = TaskSpec {
            name: "lin".into(),
            width: 4,
            length: 8,
            classes: 3,
            levels: 256,
        };
        let mut p = GeneratorParams::new(spec);
        p.linear_bias = 1.0;
        p.interaction = 0.0;
        p.noise = 0.3;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = SyntheticGenerator::new(p, &mut rng);
        (
            g.dataset(&[40, 40, 40], &mut rng),
            g.dataset(&[20, 20, 20], &mut rng),
        )
    }

    #[test]
    fn separates_linear_task() {
        let (train, test) = linear_task(0);
        let lda = Lda::fit(&train, 0.3);
        let acc = crate::evaluate(&lda, &test);
        assert!(acc > 0.8, "LDA accuracy {acc} too low on a linear task");
    }

    #[test]
    fn memory_matches_paper_formula() {
        let (train, _) = linear_task(1);
        let lda = Lda::fit(&train, 0.3);
        // 3 classes × 32 features × 32 bits + biases
        assert_eq!(lda.memory_bits(), Some((3 * 32 + 3) * 32));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn rejects_empty() {
        let spec = TaskSpec {
            name: "t".into(),
            width: 1,
            length: 1,
            classes: 2,
            levels: 2,
        };
        let ds = Dataset::new(spec, vec![]).unwrap();
        Lda::fit(&ds, 0.3);
    }

    #[test]
    #[should_panic(expected = "shrinkage")]
    fn rejects_bad_shrinkage() {
        let (train, _) = linear_task(2);
        Lda::fit(&train, 1.5);
    }
}
