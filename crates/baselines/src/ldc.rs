//! Low-dimensional computing (LDC) binary VSA baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use univsa::{EncodingLayer, ValueBox};
use univsa_bits::{BitMatrix, BitVec, Bundler};
use univsa_data::Dataset;
use univsa_nn::{softmax_cross_entropy, Adam, BatchIter, BinaryLinear, Optimizer};
use univsa_tensor::Tensor;

use crate::Classifier;

/// LDC hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LdcOptions {
    /// VSA vector dimension (the paper's Table II uses `D = 128`).
    pub dims: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// ValueBox hidden width.
    pub hidden: usize,
}

impl Default for LdcOptions {
    fn default() -> Self {
        Self {
            dims: 128,
            epochs: 20,
            learning_rate: 0.01,
            batch_size: 32,
            hidden: 16,
        }
    }
}

/// The LDC-trained binary VSA of Duan et al. (tinyML'22), the paper's
/// state-of-the-art low-dimensional baseline: a trainable ValueBox
/// projects each feature value to a `D`-bit vector, a trainable binary
/// encoding layer holds one feature vector per *feature position*
/// (`N × D`, unlike UniVSA's per-channel layout), and a single binary
/// dense head holds the class vectors.
///
/// After training the model is the packed triple `(V, F, C)` and inference
/// is pure XNOR/popcount.
#[derive(Debug, Clone)]
pub struct Ldc {
    value_table: BitMatrix,     // M × D
    feature_vectors: BitMatrix, // N × D
    class_vectors: BitMatrix,   // C × D
}

impl Ldc {
    /// Trains the LDC partial BNN and exports the packed model.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `dims == 0`.
    pub fn fit(train: &Dataset, options: &LdcOptions, seed: u64) -> Self {
        assert!(!train.is_empty(), "LDC needs a nonempty training split");
        assert!(options.dims > 0, "dims must be positive");
        let spec = train.spec();
        let (n_features, classes, levels) = (spec.features(), spec.classes, spec.levels);
        let d = options.dims;
        let mut rng = StdRng::seed_from_u64(seed);

        let mut vb = ValueBox::new(levels, d, options.hidden, &mut rng);
        let mut enc = EncodingLayer::new(n_features, d, &mut rng);
        let mut head = BinaryLinear::new(d, classes, &mut rng);
        let mut adam = Adam::new(options.learning_rate);
        let scale = 4.0 / (d as f32).sqrt();
        let n = train.len();

        for _ in 0..options.epochs {
            for batch in BatchIter::new(n, options.batch_size, &mut rng) {
                let table = vb.forward_table().expect("value box shapes fixed");
                // per-sample activation maps (N, D): row i = v_{x_i}
                let a_maps: Vec<Tensor> = batch
                    .iter()
                    .map(|&i| {
                        let sample = &train.samples()[i];
                        let mut buf = Vec::with_capacity(n_features * d);
                        for &level in &sample.values {
                            let row =
                                &table.as_slice()[level as usize * d..(level as usize + 1) * d];
                            buf.extend_from_slice(row);
                        }
                        Tensor::from_vec(buf, &[n_features, d]).expect("buffer sized")
                    })
                    .collect();
                let s_vecs = enc.forward(&a_maps).expect("encoding shapes fixed");
                let mut flat = Vec::with_capacity(batch.len() * d);
                for s in &s_vecs {
                    flat.extend_from_slice(s.as_slice());
                }
                let s_batch = Tensor::from_vec(flat, &[batch.len(), d]).expect("buffer sized");
                let labels: Vec<usize> = batch.iter().map(|&i| train.samples()[i].label).collect();
                let logits = head.forward(&s_batch).expect("shapes fixed").scale(scale);
                let (_, grad) = softmax_cross_entropy(&logits, &labels).expect("shapes fixed");

                vb.zero_grad();
                enc.zero_grad();
                head.zero_grad();
                let grad_s = head.backward(&grad.scale(scale)).expect("shapes fixed");
                let grad_rows: Vec<Tensor> = grad_s
                    .as_slice()
                    .chunks(d)
                    .map(|row| Tensor::from_vec(row.to_vec(), &[d]).expect("row sized"))
                    .collect();
                let grad_a = enc.backward(&grad_rows).expect("shapes fixed");
                // scatter activation grads into the value table
                let mut grad_table = Tensor::zeros(&[levels, d]);
                for (bi, &i) in batch.iter().enumerate() {
                    let sample = &train.samples()[i];
                    let ga = grad_a[bi].as_slice();
                    for (fi, &level) in sample.values.iter().enumerate() {
                        let dst = &mut grad_table.as_mut_slice()
                            [level as usize * d..(level as usize + 1) * d];
                        for (slot, &g) in dst.iter_mut().zip(&ga[fi * d..(fi + 1) * d]) {
                            *slot += g;
                        }
                    }
                }
                vb.backward_table(&grad_table).expect("shapes fixed");

                vb.step(&mut adam);
                adam.step(enc.f_latent_mut());
                enc.f_latent_mut().clip(1.0);
                adam.step(head.weight_mut());
                head.weight_mut().clip(1.0);
            }
        }

        let value_table = vb.export_table().expect("value box exports");
        let feature_vectors = pack(&enc.binary_f(), n_features, d);
        let class_vectors = pack(&head.binary_weight(), classes, d);
        Self {
            value_table,
            feature_vectors,
            class_vectors,
        }
    }

    /// The VSA dimension `D`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.value_table.dim()
    }

    /// Encodes one sample: `s = sgn(Σᵢ fᵢ ∘ v_{xᵢ})`.
    pub fn encode(&self, values: &[u8]) -> BitVec {
        let mut bundler = Bundler::new(self.dims());
        for (i, &level) in values.iter().enumerate() {
            let bound = self
                .feature_vectors
                .row(i)
                .xnor(self.value_table.row(level as usize))
                .expect("codebooks share dimension");
            bundler.add(&bound).expect("dimension matches");
        }
        bundler.finish()
    }
}

fn pack(t: &Tensor, rows: usize, dim: usize) -> BitMatrix {
    BitMatrix::from_rows(
        (0..rows)
            .map(|r| {
                let mut v = BitVec::zeros(dim);
                for (i, &x) in t.as_slice()[r * dim..(r + 1) * dim].iter().enumerate() {
                    if x > 0.0 {
                        v.set(i, true);
                    }
                }
                v
            })
            .collect(),
    )
    .expect("rows share dimension")
}

impl Classifier for Ldc {
    fn name(&self) -> &str {
        "LDC"
    }

    fn predict(&self, values: &[u8]) -> usize {
        let s = self.encode(values);
        self.class_vectors
            .nearest(&s)
            .expect("class vectors match encoding dimension")
    }

    fn memory_bits(&self) -> Option<usize> {
        Some(
            self.value_table.storage_bits()
                + self.feature_vectors.storage_bits()
                + self.class_vectors.storage_bits(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa_data::{GeneratorParams, SyntheticGenerator, TaskSpec};

    fn task(seed: u64) -> (Dataset, Dataset) {
        let spec = TaskSpec {
            name: "t".into(),
            width: 4,
            length: 8,
            classes: 2,
            levels: 256,
        };
        let mut p = GeneratorParams::new(spec);
        p.linear_bias = 0.7;
        p.noise = 0.25;
        p.informative_fraction = 0.5;
        p.texture = 0.4;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = SyntheticGenerator::new(p, &mut rng);
        (
            g.dataset(&[40, 40], &mut rng),
            g.dataset(&[20, 20], &mut rng),
        )
    }

    fn small_options() -> LdcOptions {
        LdcOptions {
            dims: 32,
            epochs: 10,
            ..LdcOptions::default()
        }
    }

    #[test]
    fn learns_above_chance() {
        let (train, test) = task(0);
        let model = Ldc::fit(&train, &small_options(), 1);
        let acc = crate::evaluate(&model, &test);
        assert!(acc > 0.65, "LDC accuracy {acc} too low");
    }

    #[test]
    fn memory_is_codebook_sum() {
        let (train, _) = task(1);
        let model = Ldc::fit(&train, &small_options(), 2);
        // (M + N + C) × D
        assert_eq!(model.memory_bits(), Some((256 + 32 + 2) * 32));
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, test) = task(2);
        let a = Ldc::fit(&train, &small_options(), 5);
        let b = Ldc::fit(&train, &small_options(), 5);
        for s in test.samples().iter().take(10) {
            assert_eq!(a.predict(&s.values), b.predict(&s.values));
        }
    }

    #[test]
    fn default_dims_is_paper_value() {
        assert_eq!(LdcOptions::default().dims, 128);
    }
}
