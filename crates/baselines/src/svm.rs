//! RBF-kernel support vector machine trained with simplified SMO.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use univsa_data::Dataset;

use crate::{normalize_sample, Classifier};

/// SVM hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmOptions {
    /// Soft-margin penalty `C`.
    pub c: f32,
    /// RBF width `γ` in `exp(-γ‖x−x'‖²)`; `None` uses the scale heuristic
    /// `1 / (N · Var[x])`.
    pub gamma: Option<f32>,
    /// KKT violation tolerance.
    pub tol: f32,
    /// Consecutive clean passes required to declare convergence.
    pub max_passes: usize,
    /// Hard iteration cap (outer loops over the training set).
    pub max_iters: usize,
    /// Scale each class's penalty by `n / (classes · n_class)` so minority
    /// classes are not sacrificed (the standard class-weighted SVM). Keeps
    /// the CHB-IB-style imbalanced tasks honest.
    pub balanced: bool,
}

impl Default for SvmOptions {
    fn default() -> Self {
        Self {
            c: 1.0,
            gamma: None,
            tol: 1e-3,
            max_passes: 3,
            max_iters: 60,
            balanced: true,
        }
    }
}

/// One-vs-rest RBF SVM (the paper's Table II uses an RBF kernel and a
/// 16-bit-float model, which is how [`Classifier::memory_bits`] accounts
/// the support vectors).
#[derive(Debug, Clone)]
pub struct Svm {
    /// Deduplicated support vectors shared across the per-class machines.
    support: Vec<Vec<f32>>,
    /// Per class: (support index, `αᵢ·yᵢ` coefficient) pairs plus bias.
    machines: Vec<(Vec<(usize, f32)>, f32)>,
    gamma: f32,
    levels: usize,
}

impl Svm {
    /// Trains one-vs-rest machines with simplified SMO.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(train: &Dataset, options: &SvmOptions, seed: u64) -> Self {
        assert!(!train.is_empty(), "SVM needs a nonempty training split");
        let n = train.len();
        let features = train.spec().features();
        let classes = train.spec().classes;
        let points: Vec<Vec<f32>> = (0..n).map(|i| train.normalized(i)).collect();
        let labels = train.labels();

        // γ heuristic: 1 / (N_features · variance)
        let gamma = options.gamma.unwrap_or_else(|| {
            let mut mean = 0.0f64;
            let mut sq = 0.0f64;
            let count = (n * features) as f64;
            for p in &points {
                for &v in p {
                    mean += v as f64;
                    sq += (v as f64) * (v as f64);
                }
            }
            mean /= count;
            let var = (sq / count - mean * mean).max(1e-6);
            (1.0 / (features as f64 * var)) as f32
        });

        // Shared kernel matrix.
        let kernel = kernel_matrix(&points, gamma);

        let mut rng = StdRng::seed_from_u64(seed);
        let mut machines = Vec::with_capacity(classes);
        let mut used = vec![false; n];
        let mut raw_machines = Vec::with_capacity(classes);
        let class_counts = train.class_counts();
        for (class, &count) in class_counts.iter().enumerate().take(classes) {
            let y: Vec<f32> = labels
                .iter()
                .map(|&l| if l == class { 1.0 } else { -1.0 })
                .collect();
            // per-sample penalties (class-weighted for imbalanced data)
            let n_pos = count.max(1) as f32;
            let n_neg = (n - count).max(1) as f32;
            let c_vec: Vec<f32> = if options.balanced {
                y.iter()
                    .map(|&yi| {
                        if yi > 0.0 {
                            options.c * n as f32 / (2.0 * n_pos)
                        } else {
                            options.c * n as f32 / (2.0 * n_neg)
                        }
                    })
                    .collect()
            } else {
                vec![options.c; n]
            };
            let (alpha, b) = smo(&kernel, &y, &c_vec, options, &mut rng);
            for (i, &a) in alpha.iter().enumerate() {
                if a > 1e-6 {
                    used[i] = true;
                }
            }
            raw_machines.push((alpha, y, b));
        }
        // compact: only keep training points that are a support vector of
        // at least one machine
        let mut remap = vec![usize::MAX; n];
        let mut support = Vec::new();
        for (i, &u) in used.iter().enumerate() {
            if u {
                remap[i] = support.len();
                support.push(points[i].clone());
            }
        }
        for (alpha, y, b) in raw_machines {
            let coeffs: Vec<(usize, f32)> = alpha
                .iter()
                .enumerate()
                .filter(|(_, &a)| a > 1e-6)
                .map(|(i, &a)| (remap[i], a * y[i]))
                .collect();
            machines.push((coeffs, b));
        }
        Self {
            support,
            machines,
            gamma,
            levels: train.spec().levels,
        }
    }

    /// Number of distinct support vectors retained.
    pub fn support_count(&self) -> usize {
        self.support.len()
    }

    /// The RBF width in use.
    #[inline]
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    fn decision(&self, x: &[f32], class: usize) -> f32 {
        let (coeffs, b) = &self.machines[class];
        let mut score = *b;
        for &(si, c) in coeffs {
            score += c * rbf(&self.support[si], x, self.gamma);
        }
        score
    }
}

impl Classifier for Svm {
    fn name(&self) -> &str {
        "SVM"
    }

    fn predict(&self, values: &[u8]) -> usize {
        let x = normalize_sample(values, self.levels);
        if self.machines.len() == 2 {
            // binary: one machine suffices; use class-0 machine's sign
            return if self.decision(&x, 0) >= self.decision(&x, 1) {
                0
            } else {
                1
            };
        }
        (0..self.machines.len())
            .max_by(|&a, &b| {
                self.decision(&x, a)
                    .partial_cmp(&self.decision(&x, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }

    fn memory_bits(&self) -> Option<usize> {
        // support vectors + coefficients at 16-bit floats, as the paper
        // accounts SVM model size
        let features = self.support.first().map_or(0, Vec::len);
        let coeff_count: usize = self.machines.iter().map(|(c, _)| c.len() + 1).sum();
        Some((self.support.len() * features + coeff_count) * 16)
    }
}

fn rbf(a: &[f32], b: &[f32], gamma: f32) -> f32 {
    let d2: f32 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

fn kernel_matrix(points: &[Vec<f32>], gamma: f32) -> Vec<Vec<f32>> {
    let n = points.len();
    let mut k = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in i..n {
            let v = rbf(&points[i], &points[j], gamma);
            k[i][j] = v;
            k[j][i] = v;
        }
    }
    k
}

/// Simplified SMO (Platt's algorithm in the form popularized by CS229).
/// Returns the dual variables `α` and the bias `b`.
fn smo(
    kernel: &[Vec<f32>],
    y: &[f32],
    c: &[f32],
    options: &SvmOptions,
    rng: &mut StdRng,
) -> (Vec<f32>, f32) {
    let n = y.len();
    let mut alpha = vec![0.0f32; n];
    let mut b = 0.0f32;
    let f = |alpha: &[f32], b: f32, k: usize| -> f32 {
        let mut s = b;
        for i in 0..n {
            if alpha[i] != 0.0 {
                s += alpha[i] * y[i] * kernel[i][k];
            }
        }
        s
    };
    let mut passes = 0usize;
    let mut iters = 0usize;
    while passes < options.max_passes && iters < options.max_iters {
        iters += 1;
        let mut changed = 0usize;
        for i in 0..n {
            let ei = f(&alpha, b, i) - y[i];
            if (y[i] * ei < -options.tol && alpha[i] < c[i])
                || (y[i] * ei > options.tol && alpha[i] > 0.0)
            {
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, j) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                // box constraints 0 ≤ αi ≤ Ci, 0 ≤ αj ≤ Cj with the linear
                // constraint αi·yi + αj·yj fixed
                let (lo, hi) = if (y[i] - y[j]).abs() > f32::EPSILON {
                    (
                        (aj_old - ai_old).max(0.0),
                        (c[i] + aj_old - ai_old).min(c[j]),
                    )
                } else {
                    (
                        (ai_old + aj_old - c[i]).max(0.0),
                        (ai_old + aj_old).min(c[j]),
                    )
                };
                if lo >= hi {
                    continue;
                }
                let eta = 2.0 * kernel[i][j] - kernel[i][i] - kernel[j][j];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                let b1 = b
                    - ei
                    - y[i] * (ai - ai_old) * kernel[i][i]
                    - y[j] * (aj - aj_old) * kernel[i][j];
                let b2 = b
                    - ej
                    - y[i] * (ai - ai_old) * kernel[i][j]
                    - y[j] * (aj - aj_old) * kernel[j][j];
                b = if ai > 0.0 && ai < c[i] {
                    b1
                } else if aj > 0.0 && aj < c[j] {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }
    (alpha, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa_data::{GeneratorParams, SyntheticGenerator, TaskSpec};

    fn task(seed: u64, interaction: f32) -> (Dataset, Dataset) {
        let spec = TaskSpec {
            name: "t".into(),
            width: 4,
            length: 8,
            classes: 2,
            levels: 256,
        };
        let mut p = GeneratorParams::new(spec);
        p.interaction = interaction;
        p.noise = 0.25;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = SyntheticGenerator::new(p, &mut rng);
        (
            g.dataset(&[50, 50], &mut rng),
            g.dataset(&[25, 25], &mut rng),
        )
    }

    #[test]
    fn separates_binary_task() {
        let (train, test) = task(1, 0.4);
        let svm = Svm::fit(&train, &SvmOptions::default(), 1);
        let acc = crate::evaluate(&svm, &test);
        assert!(acc > 0.7, "SVM accuracy {acc} too low");
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let spec = TaskSpec {
            name: "t3".into(),
            width: 3,
            length: 6,
            classes: 3,
            levels: 256,
        };
        let mut p = GeneratorParams::new(spec);
        p.linear_bias = 0.8;
        p.noise = 0.2;
        p.informative_fraction = 0.5;
        p.texture = 0.4;
        let mut rng = StdRng::seed_from_u64(4);
        let g = SyntheticGenerator::new(p, &mut rng);
        let train = g.dataset(&[40, 40, 40], &mut rng);
        let test = g.dataset(&[20, 20, 20], &mut rng);
        let svm = Svm::fit(&train, &SvmOptions::default(), 2);
        let acc = crate::evaluate(&svm, &test);
        assert!(acc > 0.6, "3-class SVM accuracy {acc} too low");
    }

    #[test]
    fn memory_scales_with_support_vectors() {
        let (train, _) = task(1, 0.4);
        let svm = Svm::fit(&train, &SvmOptions::default(), 3);
        assert!(svm.support_count() > 0);
        let bits = svm.memory_bits().unwrap();
        assert!(bits >= svm.support_count() * 32 * 16);
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, test) = task(2, 0.4);
        let a = Svm::fit(&train, &SvmOptions::default(), 9);
        let b = Svm::fit(&train, &SvmOptions::default(), 9);
        for s in test.samples().iter().take(10) {
            assert_eq!(a.predict(&s.values), b.predict(&s.values));
        }
    }

    #[test]
    fn gamma_heuristic_positive() {
        let (train, _) = task(3, 0.4);
        let svm = Svm::fit(&train, &SvmOptions::default(), 0);
        assert!(svm.gamma() > 0.0);
    }
}
