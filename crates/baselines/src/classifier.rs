//! The common classifier interface swept by the Table II harness.

use univsa_data::Dataset;

/// A trained classifier over discretized `(W, L)` samples.
///
/// Object-safe so the benchmark harness can hold a heterogeneous list of
/// `Box<dyn Classifier>`.
pub trait Classifier {
    /// Human-readable method name (e.g. `"SVM"`).
    fn name(&self) -> &str;

    /// Predicts the class of one sample (its `W·L` discretized levels).
    fn predict(&self, values: &[u8]) -> usize;

    /// Deployed model size in bits, or `None` when the method has no
    /// compact model (KNN stores its training set; the paper prints `–`).
    fn memory_bits(&self) -> Option<usize>;
}

/// Accuracy of a classifier over a labelled dataset (0 for an empty one).
pub fn evaluate<C: Classifier + ?Sized>(classifier: &C, dataset: &Dataset) -> f64 {
    if dataset.is_empty() {
        return 0.0;
    }
    let correct = dataset
        .samples()
        .iter()
        .filter(|s| classifier.predict(&s.values) == s.label)
        .count();
    correct as f64 / dataset.len() as f64
}

/// Normalizes a sample's levels to centred floats in `[-1, 1]`, the input
/// convention shared by the float baselines.
pub fn normalize_sample(values: &[u8], levels: usize) -> Vec<f32> {
    let m = (levels - 1).max(1) as f32;
    values.iter().map(|&v| v as f32 / m * 2.0 - 1.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa_data::{Sample, TaskSpec};

    struct Constant(usize);

    impl Classifier for Constant {
        fn name(&self) -> &str {
            "const"
        }
        fn predict(&self, _: &[u8]) -> usize {
            self.0
        }
        fn memory_bits(&self) -> Option<usize> {
            Some(1)
        }
    }

    fn dataset() -> Dataset {
        let spec = TaskSpec {
            name: "t".into(),
            width: 1,
            length: 1,
            classes: 2,
            levels: 2,
        };
        Dataset::new(
            spec,
            vec![
                Sample {
                    values: vec![0],
                    label: 0,
                },
                Sample {
                    values: vec![1],
                    label: 1,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn evaluate_counts_hits() {
        let ds = dataset();
        assert_eq!(evaluate(&Constant(0), &ds), 0.5);
        assert_eq!(evaluate(&Constant(1), &ds), 0.5);
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let spec = TaskSpec {
            name: "t".into(),
            width: 1,
            length: 1,
            classes: 2,
            levels: 2,
        };
        let ds = Dataset::new(spec, vec![]).unwrap();
        assert_eq!(evaluate(&Constant(0), &ds), 0.0);
    }

    #[test]
    fn normalize_endpoints() {
        let v = normalize_sample(&[0, 255], 256);
        assert_eq!(v[0], -1.0);
        assert_eq!(v[1], 1.0);
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Classifier> = Box::new(Constant(0));
        assert_eq!(boxed.predict(&[0]), 0);
        assert_eq!(evaluate(boxed.as_ref(), &dataset()), 0.5);
    }
}
