//! LeHDC-style high-dimensional learned binary VSA.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use univsa_bits::{BitMatrix, BitVec, Bundler};
use univsa_data::Dataset;
use univsa_nn::{softmax_cross_entropy, Adam, BatchIter, BinaryLinear, Optimizer};
use univsa_tensor::Tensor;

use crate::Classifier;

/// LeHDC hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LeHdcOptions {
    /// Hypervector dimension (the paper's comparison uses `D = 10,000`).
    pub dims: usize,
    /// Training epochs for the class-vector head.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for LeHdcOptions {
    fn default() -> Self {
        Self {
            dims: 10_000,
            epochs: 20,
            learning_rate: 0.05,
            batch_size: 32,
        }
    }
}

/// High-dimensional binary VSA in the LeHDC mould: *random* value and
/// feature vectors (classic holographic encoding), with the class vectors
/// *learned* as a binarized dense layer instead of naive bundling — the
/// key idea of LeHDC (DAC'22), which the UniVSA paper uses as its
/// high-dimensional reference point.
#[derive(Debug, Clone)]
pub struct LeHdc {
    value_vectors: BitMatrix,   // M × D
    feature_vectors: BitMatrix, // N × D
    class_vectors: BitMatrix,   // C × D (binarized after training)
}

impl LeHdc {
    /// Draws random codebooks, encodes the training split, and trains the
    /// class head.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `dims == 0`.
    pub fn fit(train: &Dataset, options: &LeHdcOptions, seed: u64) -> Self {
        assert!(!train.is_empty(), "LeHDC needs a nonempty training split");
        assert!(options.dims > 0, "dims must be positive");
        let spec = train.spec();
        let d = options.dims;
        let mut rng = StdRng::seed_from_u64(seed);
        // level (thermometer) encoding: adjacent levels share most of
        // their bits, the extremes are ~orthogonal — the standard HDC
        // value encoding, which preserves the ordinal structure of the
        // discretized inputs (fully random per-level vectors would not
        // generalize across neighbouring levels)
        let value_vectors = level_vectors(spec.levels, d, &mut rng);
        let feature_vectors = BitMatrix::random(spec.features(), d, &mut rng);

        // Encode the whole split once (packed), then train on ±1 floats.
        let encoded: Vec<BitVec> = train
            .samples()
            .iter()
            .map(|s| encode(&s.values, &feature_vectors, &value_vectors))
            .collect();
        let labels = train.labels();

        let mut head = BinaryLinear::new(d, spec.classes, &mut rng);
        let mut adam = Adam::new(options.learning_rate);
        let scale = 4.0 / (d as f32).sqrt();
        let n = train.len();
        for _ in 0..options.epochs {
            for batch in BatchIter::new(n, options.batch_size, &mut rng) {
                let mut flat = Vec::with_capacity(batch.len() * d);
                for &i in &batch {
                    flat.extend(encoded[i].to_f32());
                }
                let x =
                    Tensor::from_vec(flat, &[batch.len(), d]).expect("batch buffer sized to shape");
                let batch_labels: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                let logits = head.forward(&x).expect("shapes fixed").scale(scale);
                let (_, grad) =
                    softmax_cross_entropy(&logits, &batch_labels).expect("shapes fixed");
                head.zero_grad();
                head.backward(&grad.scale(scale)).expect("shapes fixed");
                adam.step(head.weight_mut());
                head.weight_mut().clip(1.0);
            }
        }

        // Export binarized class vectors.
        let wb = head.binary_weight();
        let class_vectors = BitMatrix::from_rows(
            wb.as_slice()
                .chunks(d)
                .map(|row| {
                    let mut v = BitVec::zeros(d);
                    for (i, &x) in row.iter().enumerate() {
                        if x > 0.0 {
                            v.set(i, true);
                        }
                    }
                    v
                })
                .collect(),
        )
        .expect("class rows share dimension");
        Self {
            value_vectors,
            feature_vectors,
            class_vectors,
        }
    }

    /// The hypervector dimension.
    #[inline]
    pub fn dims(&self) -> usize {
        self.value_vectors.dim()
    }

    /// Encodes one sample to its hypervector.
    pub fn encode(&self, values: &[u8]) -> BitVec {
        encode(values, &self.feature_vectors, &self.value_vectors)
    }
}

/// The standard HDC level-vector codebook: a random base vector with a
/// progressively flipped random half of the positions, so level `0` and
/// level `M−1` are nearly orthogonal while neighbours stay similar.
fn level_vectors(m: usize, d: usize, rng: &mut StdRng) -> BitMatrix {
    let base = BitVec::random(d, rng);
    let mut order: Vec<usize> = (0..d).collect();
    order.shuffle(rng);
    let rows = (0..m)
        .map(|level| {
            let flips = if m <= 1 { 0 } else { level * (d / 2) / (m - 1) };
            let mut v = base.clone();
            for &pos in order.iter().take(flips) {
                let cur = v.get(pos) == Some(true);
                v.set(pos, !cur);
            }
            v
        })
        .collect();
    BitMatrix::from_rows(rows).expect("level rows share dimension")
}

/// Classic binary VSA encoding: `s = sgn(Σᵢ fᵢ ∘ v_{xᵢ})` with
/// `sgn(0) = +1`.
fn encode(values: &[u8], f: &BitMatrix, v: &BitMatrix) -> BitVec {
    let mut bundler = Bundler::new(f.dim());
    for (i, &level) in values.iter().enumerate() {
        let bound = f
            .row(i)
            .xnor(v.row(level as usize))
            .expect("codebooks share dimension");
        bundler.add(&bound).expect("bundler matches dimension");
    }
    bundler.finish()
}

impl Classifier for LeHdc {
    fn name(&self) -> &str {
        "LeHDC"
    }

    fn predict(&self, values: &[u8]) -> usize {
        let s = self.encode(values);
        self.class_vectors
            .nearest(&s)
            .expect("class vectors match encoding dimension")
    }

    fn memory_bits(&self) -> Option<usize> {
        Some(
            self.value_vectors.storage_bits()
                + self.feature_vectors.storage_bits()
                + self.class_vectors.storage_bits(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa_data::{GeneratorParams, SyntheticGenerator, TaskSpec};

    fn task(seed: u64) -> (Dataset, Dataset) {
        let spec = TaskSpec {
            name: "t".into(),
            width: 4,
            length: 8,
            classes: 2,
            levels: 256,
        };
        let mut p = GeneratorParams::new(spec);
        p.linear_bias = 0.7;
        p.noise = 0.25;
        p.informative_fraction = 0.5;
        p.texture = 0.4;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = SyntheticGenerator::new(p, &mut rng);
        (
            g.dataset(&[40, 40], &mut rng),
            g.dataset(&[20, 20], &mut rng),
        )
    }

    fn small_options() -> LeHdcOptions {
        LeHdcOptions {
            dims: 1000,
            epochs: 20,
            ..LeHdcOptions::default()
        }
    }

    #[test]
    fn learns_above_chance() {
        let (train, test) = task(0);
        let model = LeHdc::fit(&train, &small_options(), 1);
        let acc = crate::evaluate(&model, &test);
        assert!(acc > 0.65, "LeHDC accuracy {acc} too low");
    }

    #[test]
    fn memory_is_codebook_sum() {
        let (train, _) = task(1);
        let model = LeHdc::fit(&train, &small_options(), 2);
        // (M + N + C) × D bits
        assert_eq!(model.memory_bits(), Some((256 + 32 + 2) * 1000));
    }

    #[test]
    fn encoding_deterministic() {
        let (train, test) = task(2);
        let model = LeHdc::fit(&train, &small_options(), 3);
        let s = &test.samples()[0].values;
        assert_eq!(model.encode(s), model.encode(s));
    }

    #[test]
    fn default_dims_is_paper_value() {
        assert_eq!(LeHdcOptions::default().dims, 10_000);
    }

    #[test]
    fn level_vectors_similarity_is_monotone_in_level_distance() {
        let mut rng = StdRng::seed_from_u64(11);
        let levels = level_vectors(256, 2000, &mut rng);
        let base = levels.row(0);
        let d_near = base.hamming(levels.row(16)).unwrap();
        let d_mid = base.hamming(levels.row(128)).unwrap();
        let d_far = base.hamming(levels.row(255)).unwrap();
        assert!(d_near < d_mid && d_mid < d_far, "{d_near} {d_mid} {d_far}");
        // extremes differ by the full flip budget (d/2)
        assert!((d_far as i64 - 1000).abs() < 50, "d_far = {d_far}");
    }
}
