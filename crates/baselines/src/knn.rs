//! k-nearest-neighbour classifier.

use univsa_data::Dataset;

use crate::{normalize_sample, Classifier};

/// k-nearest neighbours with Euclidean distance and majority vote
/// (the paper uses `K = 5`). Vote ties break toward the nearest
/// neighbour's class.
///
/// KNN has no compact deployed model — it memorizes the training split —
/// so [`Classifier::memory_bits`] returns `None` (the paper prints `–`).
#[derive(Debug, Clone)]
pub struct Knn {
    points: Vec<Vec<f32>>,
    labels: Vec<usize>,
    k: usize,
    classes: usize,
    levels: usize,
}

impl Knn {
    /// Memorizes the training split.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `k == 0`.
    pub fn fit(train: &Dataset, k: usize) -> Self {
        assert!(!train.is_empty(), "KNN needs a nonempty training split");
        assert!(k > 0, "k must be positive");
        let points = (0..train.len()).map(|i| train.normalized(i)).collect();
        Self {
            points,
            labels: train.labels(),
            k,
            classes: train.spec().classes,
            levels: train.spec().levels,
        }
    }

    /// The neighbourhood size.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Classifier for Knn {
    fn name(&self) -> &str {
        "KNN"
    }

    fn predict(&self, values: &[u8]) -> usize {
        let x = normalize_sample(values, self.levels);
        // (distance², label) for all training points
        let mut dists: Vec<(f32, usize)> = self
            .points
            .iter()
            .zip(&self.labels)
            .map(|(p, &l)| {
                let d: f32 = p.iter().zip(&x).map(|(&a, &b)| (a - b) * (a - b)).sum();
                (d, l)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut neighbours = dists[..k].to_vec();
        neighbours.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut votes = vec![0usize; self.classes];
        for &(_, l) in &neighbours {
            votes[l] += 1;
        }
        let best = *votes.iter().max().expect("classes > 0");
        // tie → nearest neighbour among tied classes
        neighbours
            .iter()
            .find(|&&(_, l)| votes[l] == best)
            .map(|&(_, l)| l)
            .unwrap_or(0)
    }

    fn memory_bits(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa_data::{Sample, TaskSpec};

    fn dataset(points: &[(u8, usize)]) -> Dataset {
        let spec = TaskSpec {
            name: "t".into(),
            width: 1,
            length: 1,
            classes: 2,
            levels: 256,
        };
        Dataset::new(
            spec,
            points
                .iter()
                .map(|&(v, label)| Sample {
                    values: vec![v],
                    label,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn one_nn_returns_nearest() {
        let ds = dataset(&[(0, 0), (255, 1)]);
        let knn = Knn::fit(&ds, 1);
        assert_eq!(knn.predict(&[10]), 0);
        assert_eq!(knn.predict(&[250]), 1);
    }

    #[test]
    fn majority_wins_over_single_nearest() {
        // nearest point is class 1, but two of three neighbours are class 0
        let ds = dataset(&[(100, 1), (120, 0), (130, 0)]);
        let knn = Knn::fit(&ds, 3);
        assert_eq!(knn.predict(&[99]), 0);
    }

    #[test]
    fn tie_breaks_to_nearest() {
        let ds = dataset(&[(90, 1), (110, 0)]);
        let knn = Knn::fit(&ds, 2);
        // one vote each → the closer point (90, class 1) wins at query 95
        assert_eq!(knn.predict(&[95]), 1);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let ds = dataset(&[(0, 0), (255, 1)]);
        let knn = Knn::fit(&ds, 10);
        // both points vote; tie → nearest
        assert_eq!(knn.predict(&[10]), 0);
    }

    #[test]
    fn no_compact_model() {
        let ds = dataset(&[(0, 0), (255, 1)]);
        assert_eq!(Knn::fit(&ds, 1).memory_bits(), None);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        Knn::fit(&dataset(&[(0, 0)]), 0);
    }
}
