//! # univsa-baselines
//!
//! The baseline classifiers the UniVSA paper compares against in Table II:
//!
//! * [`Lda`] — linear discriminant analysis with shrinkage covariance
//!   (32-bit float model, as in the paper).
//! * [`Knn`] — k-nearest neighbours (`K = 5` in the paper).
//! * [`Svm`] — RBF-kernel support vector machine trained with simplified
//!   SMO, one-vs-rest for multiclass (16-bit-float model size accounting,
//!   as in the paper).
//! * [`LeHdc`] — high-dimensional learned binary VSA (`D = 10,000`):
//!   random value/feature vectors, majority-rule encoding, learned then
//!   binarized class vectors.
//! * [`Ldc`] — low-dimensional binary VSA (`D = 128`) trained with the LDC
//!   strategy (trainable ValueBox and feature vectors, one dense head).
//!
//! All baselines implement the [`Classifier`] trait so the Table II harness
//! can sweep them uniformly.
//!
//! # Examples
//!
//! ```
//! use univsa_baselines::{Classifier, Knn};
//! use univsa_data::tasks;
//!
//! let task = tasks::bci3v(3);
//! let knn = Knn::fit(&task.train, 5);
//! let acc = univsa_baselines::evaluate(&knn, &task.test);
//! assert!(acc > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod knn;
mod lda;
mod ldc;
mod lehdc;
mod svm;

pub use classifier::{evaluate, normalize_sample, Classifier};
pub use knn::Knn;
pub use lda::Lda;
pub use ldc::{Ldc, LdcOptions};
pub use lehdc::{LeHdc, LeHdcOptions};
pub use svm::{Svm, SvmOptions};
