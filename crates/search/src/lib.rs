//! # univsa-search
//!
//! Evolutionary configuration search with elitist preservation over the
//! UniVSA hyperparameter tuple `(D_H, D_L, D_K, O, Θ)` — the procedure the
//! paper uses to derive its Table I configurations, maximizing
//! `obj = Acc − L_HW` with `λ₁ = λ₂ = 0.005`.
//!
//! The search itself ([`EvolutionarySearch`]) is generic over the fitness
//! function, so tests can use cheap surrogates while the benchmark harness
//! plugs in real training runs ([`AccuracyHardwareObjective`]).
//!
//! # Examples
//!
//! ```
//! use univsa_data::TaskSpec;
//! use univsa_search::{EvolutionarySearch, Genome, SearchOptions, SearchSpace};
//!
//! let spec = TaskSpec { name: "t".into(), width: 8, length: 8, classes: 2, levels: 256 };
//! let space = SearchSpace::for_task(&spec);
//! let options = SearchOptions { population: 12, generations: 6, elites: 2, ..Default::default() };
//! // surrogate fitness: prefer small O
//! let best = EvolutionarySearch::new(space, options)
//!     .run(|g: &Genome| 1.0 / (g.out_channels as f64), 42);
//! assert!(best.fitness > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evolve;
mod genome;
mod objective;

pub use evolve::{EvolutionarySearch, SearchOptions, SearchResult};
pub use genome::{Genome, SearchSpace};
pub use objective::AccuracyHardwareObjective;
