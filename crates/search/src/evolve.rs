//! The evolutionary loop with elitist preservation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Genome, SearchSpace};

/// Evolution hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOptions {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Elites copied unchanged into the next generation (elitist
    /// preservation, after reference 28 of the paper).
    pub elites: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-child mutation probability.
    pub mutation_rate: f64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            population: 24,
            generations: 12,
            elites: 4,
            tournament: 3,
            mutation_rate: 0.6,
        }
    }
}

/// Outcome of a search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best genome found.
    pub genome: Genome,
    /// Its fitness.
    pub fitness: f64,
    /// Best fitness per generation (monotone thanks to elitism).
    pub curve: Vec<f64>,
    /// Total fitness evaluations spent (cache hits excluded).
    pub evaluations: usize,
}

/// Evolutionary search with elitist preservation over a [`SearchSpace`].
///
/// Generic over the fitness function so surrogates and real
/// train-and-evaluate objectives plug in interchangeably. Fitness values
/// are cached per genome, so re-visiting a configuration is free — which
/// matters when each evaluation is a full training run.
#[derive(Debug, Clone)]
pub struct EvolutionarySearch {
    space: SearchSpace,
    options: SearchOptions,
}

impl EvolutionarySearch {
    /// Creates a search over the given space.
    ///
    /// # Panics
    ///
    /// Panics if the options are degenerate (zero population/generations,
    /// or more elites than population).
    pub fn new(space: SearchSpace, options: SearchOptions) -> Self {
        assert!(options.population > 0, "population must be positive");
        assert!(options.generations > 0, "generations must be positive");
        assert!(
            options.elites < options.population,
            "elites must leave room for offspring"
        );
        assert!(options.tournament > 0, "tournament must be positive");
        Self { space, options }
    }

    /// Runs the search with a fitness function (higher is better).
    ///
    /// Each generation's uncached genomes are evaluated concurrently on
    /// the [`univsa_par`] worker pool (the fitness cache is consulted
    /// before dispatch and filled after the barrier, in population
    /// order), so `F` must be `Fn + Sync`; expensive train-and-evaluate
    /// objectives scale with `UNIVSA_THREADS`. The search trajectory is
    /// identical to serial execution at every thread count: fitness
    /// values are pure per genome and the driving RNG never crosses
    /// threads.
    pub fn run<F>(&self, fitness: F, seed: u64) -> SearchResult
    where
        F: Fn(&Genome) -> f64 + Sync,
    {
        let result: Result<SearchResult, std::convert::Infallible> =
            self.try_run_batched(seed, |pending| {
                Ok(univsa_par::map_indexed(
                    "search.fitness",
                    pending.len(),
                    |i| fitness(&pending[i]),
                ))
            });
        match result {
            Ok(r) => r,
            Err(never) => match never {},
        }
    }

    /// Runs the search with a *batch* fitness evaluator: each generation's
    /// unique uncached genomes are handed over in one call (in first-seen
    /// population order), and the evaluator returns one fitness per genome
    /// in the same order.
    ///
    /// This is the hook process-sharded backends plug into (the
    /// `univsa-dist` supervisor dispatches a whole generation to the
    /// worker fleet); [`EvolutionarySearch::run`] wires the default
    /// in-process `univsa-par` evaluator through the same path, so the
    /// search trajectory is identical for every backend that returns
    /// identical fitness values.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluator error verbatim; the search stops at
    /// that generation.
    ///
    /// # Panics
    ///
    /// Panics if the evaluator returns a result count different from the
    /// batch it was handed.
    pub fn try_run_batched<E>(
        &self,
        seed: u64,
        mut eval_batch: impl FnMut(&[Genome]) -> Result<Vec<f64>, E>,
    ) -> Result<SearchResult, E> {
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = &self.options;
        let mut cache: std::collections::HashMap<Genome, f64> = std::collections::HashMap::new();
        let mut evaluations = 0usize;
        // Scores a whole generation: unique cache misses (in first-seen
        // order) go to the batch evaluator, land in the cache in that
        // same order, and the population is then scored from the cache.
        let mut score_all = |genomes: &[Genome],
                             cache: &mut std::collections::HashMap<Genome, f64>,
                             evaluations: &mut usize|
         -> Result<Vec<(Genome, f64)>, E> {
            let mut pending: Vec<Genome> = Vec::new();
            for g in genomes {
                if !cache.contains_key(g) && !pending.contains(g) {
                    pending.push(*g);
                }
            }
            let results = eval_batch(&pending)?;
            assert_eq!(
                results.len(),
                pending.len(),
                "batch evaluator must score every genome exactly once"
            );
            for (g, f) in pending.iter().zip(results) {
                cache.insert(*g, f);
                *evaluations += 1;
            }
            Ok(genomes.iter().map(|g| (*g, cache[g])).collect())
        };

        let mut population: Vec<Genome> = (0..opts.population)
            .map(|_| self.space.sample(&mut rng))
            .collect();
        let mut curve = Vec::with_capacity(opts.generations);
        let mut scored: Vec<(Genome, f64)> = Vec::new();

        for gen in 0..opts.generations {
            // telemetry span per generation: carries wall time and, with
            // the counting allocator on, the generation's allocation delta
            let _gen_span = univsa_telemetry::span("search", "generation").field("generation", gen);
            scored = score_all(&population, &mut cache, &mut evaluations)?;
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            curve.push(scored[0].1);

            // elitist preservation + tournament offspring
            let mut next: Vec<Genome> = scored.iter().take(opts.elites).map(|&(g, _)| g).collect();
            while next.len() < opts.population {
                let a = self.tournament_pick(&scored, &mut rng);
                let b = self.tournament_pick(&scored, &mut rng);
                let mut child = self.space.crossover(&a, &b, &mut rng);
                if rng.gen::<f64>() < opts.mutation_rate {
                    self.space.mutate(&mut child, &mut rng);
                }
                next.push(child);
            }
            population = next;
        }
        // final scoring pass for the last generation's offspring
        let mut final_scored: Vec<(Genome, f64)> =
            score_all(&population, &mut cache, &mut evaluations)?;
        final_scored.extend(scored);
        final_scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let (genome, best) = final_scored[0];
        curve.push(best);
        Ok(SearchResult {
            genome,
            fitness: best,
            curve,
            evaluations,
        })
    }

    fn tournament_pick(&self, scored: &[(Genome, f64)], rng: &mut StdRng) -> Genome {
        let mut best: Option<(Genome, f64)> = None;
        for _ in 0..self.options.tournament {
            let c = scored[rng.gen_range(0..scored.len())];
            if best.is_none() || c.1 > best.expect("just checked").1 {
                best = Some(c);
            }
        }
        best.expect("tournament is nonempty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa_data::TaskSpec;

    fn space() -> SearchSpace {
        SearchSpace::for_task(&TaskSpec {
            name: "t".into(),
            width: 8,
            length: 10,
            classes: 2,
            levels: 256,
        })
    }

    fn options() -> SearchOptions {
        SearchOptions {
            population: 16,
            generations: 10,
            elites: 3,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn finds_known_optimum() {
        // fitness peaks at O = 100, D_H = 8
        let f = |g: &Genome| {
            -((g.out_channels as f64 - 100.0).powi(2)) / 1000.0 - (g.d_h as f64 - 8.0).abs()
        };
        let result = EvolutionarySearch::new(space(), options()).run(f, 0);
        assert_eq!(result.genome.d_h, 8);
        assert!(
            (result.genome.out_channels as i64 - 100).abs() <= 10,
            "O = {}",
            result.genome.out_channels
        );
    }

    #[test]
    fn curve_is_monotone_with_elitism() {
        let f = |g: &Genome| -(g.out_channels as f64);
        let result = EvolutionarySearch::new(space(), options()).run(f, 1);
        for pair in result.curve.windows(2) {
            assert!(pair[1] >= pair[0], "elitism broken: {:?}", result.curve);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let f = |g: &Genome| g.d_h as f64 + g.voters as f64;
        let a = EvolutionarySearch::new(space(), options()).run(f, 9);
        let b = EvolutionarySearch::new(space(), options()).run(f, 9);
        assert_eq!(a.genome, b.genome);
        assert_eq!(a.curve, b.curve);
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let f = |g: &Genome| {
            -((g.out_channels as f64 - 64.0).powi(2)) / 500.0 + (g.voters as f64).sqrt()
        };
        let search = EvolutionarySearch::new(space(), options());
        let serial = univsa_par::with_threads(1, || search.run(f, 21));
        let parallel = univsa_par::with_threads(4, || search.run(f, 21));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn caches_fitness_evaluations() {
        let result = EvolutionarySearch::new(space(), options()).run(|_| 1.0, 2);
        // all genomes identical fitness — evaluations must not exceed
        // population × (generations + 1)
        assert!(result.evaluations <= 16 * 11);
    }

    #[test]
    fn batched_run_matches_plain_run() {
        let f = |g: &Genome| g.d_h as f64 * 2.0 + g.voters as f64 - g.out_channels as f64 / 7.0;
        let search = EvolutionarySearch::new(space(), options());
        let plain = search.run(f, 5);
        let batched = search
            .try_run_batched::<String>(5, |pending| Ok(pending.iter().map(f).collect()))
            .unwrap();
        assert_eq!(plain, batched);
    }

    #[test]
    fn batched_run_propagates_first_error() {
        let search = EvolutionarySearch::new(space(), options());
        let err = search
            .try_run_batched(5, |_| Err("evaluator exploded".to_string()))
            .err();
        assert_eq!(err.as_deref(), Some("evaluator exploded"));
    }

    #[test]
    #[should_panic(expected = "elites")]
    fn rejects_all_elites() {
        let bad = SearchOptions {
            population: 4,
            elites: 4,
            ..SearchOptions::default()
        };
        EvolutionarySearch::new(space(), bad);
    }
}
