//! The paper's search objective: `obj = Acc − L_HW`.

use univsa::{HardwareLoss, TrainOptions, UniVsaTrainer};
use univsa_data::Dataset;

use crate::Genome;

/// The real train-and-evaluate objective of the paper's Table I search:
/// train a candidate configuration on the training split, measure accuracy
/// on the validation split, and subtract the Eq. 7 hardware penalty with
/// `λ₁ = λ₂ = 0.005`.
///
/// Evaluations are expensive (each is a full training run), so the harness
/// pairs this with [`crate::EvolutionarySearch`]'s built-in fitness cache
/// and a reduced epoch budget.
#[derive(Debug, Clone)]
pub struct AccuracyHardwareObjective {
    train: Dataset,
    validation: Dataset,
    options: TrainOptions,
    loss: HardwareLoss,
    seed: u64,
}

impl AccuracyHardwareObjective {
    /// Creates the objective over a train/validation pair.
    pub fn new(train: Dataset, validation: Dataset, options: TrainOptions, seed: u64) -> Self {
        Self {
            train,
            validation,
            options,
            loss: HardwareLoss::paper(),
            seed,
        }
    }

    /// Replaces the hardware-loss weights (defaults to the paper's
    /// `λ₁ = λ₂ = 0.005`).
    pub fn with_hardware_loss(mut self, loss: HardwareLoss) -> Self {
        self.loss = loss;
        self
    }

    /// Evaluates one genome: `accuracy − L_HW`, or `−∞` for genomes that
    /// do not form a valid configuration for this task.
    pub fn evaluate(&self, genome: &Genome) -> f64 {
        let spec = self.train.spec();
        let Ok(config) = genome.to_config(spec) else {
            return f64::NEG_INFINITY;
        };
        let penalty = self.loss.evaluate(&config);
        let trainer = UniVsaTrainer::new(config, self.options.clone());
        match trainer.fit(&self.train, self.seed) {
            Ok(outcome) => match outcome.model.evaluate(&self.validation) {
                Ok(acc) => acc - penalty,
                Err(_) => f64::NEG_INFINITY,
            },
            Err(_) => f64::NEG_INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use univsa_data::{GeneratorParams, SyntheticGenerator, TaskSpec};

    fn tiny() -> (Dataset, Dataset) {
        let spec = TaskSpec {
            name: "tiny".into(),
            width: 4,
            length: 6,
            classes: 2,
            levels: 256,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let g = SyntheticGenerator::new(GeneratorParams::new(spec), &mut rng);
        (
            g.dataset(&[20, 20], &mut rng),
            g.dataset(&[10, 10], &mut rng),
        )
    }

    fn fast_options() -> TrainOptions {
        TrainOptions {
            epochs: 3,
            ..TrainOptions::default()
        }
    }

    #[test]
    fn invalid_genome_gets_neg_infinity() {
        let (train, val) = tiny();
        let obj = AccuracyHardwareObjective::new(train, val, fast_options(), 0);
        let bad = Genome {
            d_h: 4,
            d_l: 8, // D_L > D_H
            d_k: 3,
            out_channels: 8,
            voters: 1,
        };
        assert_eq!(obj.evaluate(&bad), f64::NEG_INFINITY);
    }

    #[test]
    fn valid_genome_scores_finite() {
        let (train, val) = tiny();
        let obj = AccuracyHardwareObjective::new(train, val, fast_options(), 0);
        let g = Genome {
            d_h: 4,
            d_l: 2,
            d_k: 3,
            out_channels: 8,
            voters: 1,
        };
        let f = obj.evaluate(&g);
        assert!(f.is_finite());
        assert!(f <= 1.0, "fitness {f} exceeds max possible accuracy");
    }

    #[test]
    fn bigger_configs_pay_larger_penalty() {
        let (train, val) = tiny();
        let obj = AccuracyHardwareObjective::new(train, val, fast_options(), 0);
        let small = Genome {
            d_h: 4,
            d_l: 2,
            d_k: 3,
            out_channels: 8,
            voters: 1,
        };
        let big = Genome {
            d_h: 16,
            d_l: 8,
            d_k: 3,
            out_channels: 128,
            voters: 5,
        };
        let spec = obj.train.spec();
        let loss = HardwareLoss::paper();
        assert!(
            loss.evaluate(&big.to_config(spec).unwrap())
                > loss.evaluate(&small.to_config(spec).unwrap())
        );
    }
}
