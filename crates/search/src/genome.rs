//! The searched configuration tuple and its search space.

use rand::Rng;
use univsa::{UniVsaConfig, UniVsaError};
use univsa_data::TaskSpec;

/// One candidate configuration: the paper's searched tuple
/// `(D_H, D_L, D_K, O, Θ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Genome {
    /// High value dimension.
    pub d_h: usize,
    /// Low value dimension.
    pub d_l: usize,
    /// Kernel side.
    pub d_k: usize,
    /// Conv output channels.
    pub out_channels: usize,
    /// Soft-voting heads.
    pub voters: usize,
}

impl Genome {
    /// Materializes the genome as a full model configuration for a task.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Config`] if the genome violates a config
    /// constraint for this task (e.g. kernel larger than the grid) — such
    /// genomes get fitness `−∞` during search.
    pub fn to_config(self, spec: &TaskSpec) -> Result<UniVsaConfig, UniVsaError> {
        UniVsaConfig::for_task(spec)
            .d_h(self.d_h)
            .d_l(self.d_l)
            .d_k(self.d_k)
            .out_channels(self.out_channels)
            .voters(self.voters)
            .build()
    }
}

/// Bounds of the evolutionary search, matched to the ranges seen in the
/// paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    /// Candidate `D_H` values.
    pub d_h: Vec<usize>,
    /// Candidate `D_L` values (filtered to `≤ D_H` at sampling time).
    pub d_l: Vec<usize>,
    /// Candidate kernel sides.
    pub d_k: Vec<usize>,
    /// Inclusive output-channel range.
    pub out_channels: (usize, usize),
    /// Candidate voter counts.
    pub voters: Vec<usize>,
}

impl SearchSpace {
    /// The default space used for the Table I search, clipped so kernels
    /// fit the task's grid.
    pub fn for_task(spec: &TaskSpec) -> Self {
        let max_k = spec.width.min(spec.length);
        let d_k = [3usize, 5, 7]
            .into_iter()
            .filter(|&k| k <= max_k)
            .collect::<Vec<_>>();
        Self {
            d_h: vec![2, 4, 8, 16],
            d_l: vec![1, 2, 4, 8],
            d_k: if d_k.is_empty() { vec![1] } else { d_k },
            out_channels: (8, 160),
            voters: vec![1, 3, 5],
        }
    }

    /// Draws a uniformly random valid genome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Genome {
        let d_h = self.d_h[rng.gen_range(0..self.d_h.len())];
        let d_l_options: Vec<usize> = self.d_l.iter().copied().filter(|&v| v <= d_h).collect();
        let d_l = d_l_options[rng.gen_range(0..d_l_options.len())];
        Genome {
            d_h,
            d_l,
            d_k: self.d_k[rng.gen_range(0..self.d_k.len())],
            out_channels: rng.gen_range(self.out_channels.0..=self.out_channels.1),
            voters: self.voters[rng.gen_range(0..self.voters.len())],
        }
    }

    /// Mutates one gene of a genome in place (uniform gene choice).
    pub fn mutate<R: Rng + ?Sized>(&self, genome: &mut Genome, rng: &mut R) {
        match rng.gen_range(0..5) {
            0 => genome.d_h = self.d_h[rng.gen_range(0..self.d_h.len())],
            1 => {
                let options: Vec<usize> = self
                    .d_l
                    .iter()
                    .copied()
                    .filter(|&v| v <= genome.d_h)
                    .collect();
                genome.d_l = options[rng.gen_range(0..options.len())];
            }
            2 => genome.d_k = self.d_k[rng.gen_range(0..self.d_k.len())],
            3 => {
                // local perturbation of O keeps search smooth
                let delta = rng.gen_range(-8i64..=8);
                let o = genome.out_channels as i64 + delta;
                genome.out_channels =
                    o.clamp(self.out_channels.0 as i64, self.out_channels.1 as i64) as usize;
            }
            _ => genome.voters = self.voters[rng.gen_range(0..self.voters.len())],
        }
        // repair D_L ≤ D_H after a D_H mutation
        if genome.d_l > genome.d_h {
            genome.d_l = genome.d_h;
        }
    }

    /// Uniform crossover of two genomes.
    pub fn crossover<R: Rng + ?Sized>(&self, a: &Genome, b: &Genome, rng: &mut R) -> Genome {
        let pick = |rng: &mut R, x: usize, y: usize| if rng.gen::<bool>() { x } else { y };
        let mut child = Genome {
            d_h: pick(rng, a.d_h, b.d_h),
            d_l: pick(rng, a.d_l, b.d_l),
            d_k: pick(rng, a.d_k, b.d_k),
            out_channels: pick(rng, a.out_channels, b.out_channels),
            voters: pick(rng, a.voters, b.voters),
        };
        if child.d_l > child.d_h {
            child.d_l = child.d_h;
        }
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> TaskSpec {
        TaskSpec {
            name: "t".into(),
            width: 8,
            length: 10,
            classes: 2,
            levels: 256,
        }
    }

    #[test]
    fn samples_are_valid_configs() {
        let space = SearchSpace::for_task(&spec());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let g = space.sample(&mut rng);
            assert!(g.d_l <= g.d_h);
            assert!(
                g.to_config(&spec()).is_ok(),
                "sampled genome {g:?} is invalid"
            );
        }
    }

    #[test]
    fn mutation_keeps_validity() {
        let space = SearchSpace::for_task(&spec());
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = space.sample(&mut rng);
        for _ in 0..500 {
            space.mutate(&mut g, &mut rng);
            assert!(g.d_l <= g.d_h);
            assert!(g.to_config(&spec()).is_ok());
        }
    }

    #[test]
    fn crossover_mixes_parents() {
        let space = SearchSpace::for_task(&spec());
        let mut rng = StdRng::seed_from_u64(2);
        let a = Genome {
            d_h: 16,
            d_l: 8,
            d_k: 3,
            out_channels: 8,
            voters: 1,
        };
        let b = Genome {
            d_h: 2,
            d_l: 1,
            d_k: 5,
            out_channels: 160,
            voters: 5,
        };
        for _ in 0..50 {
            let c = space.crossover(&a, &b, &mut rng);
            assert!(c.d_l <= c.d_h);
            assert!([3, 5].contains(&c.d_k));
            assert!([8, 160].contains(&c.out_channels));
        }
    }

    #[test]
    fn kernel_clipped_to_small_grids() {
        let tiny = TaskSpec {
            name: "tiny".into(),
            width: 4,
            length: 20,
            classes: 2,
            levels: 256,
        };
        let space = SearchSpace::for_task(&tiny);
        assert_eq!(space.d_k, vec![3]);
    }
}
