//! Runtime-dispatched popcount / XOR-popcount kernels.
//!
//! Every similarity, Hamming-distance, and binary-convolution inner loop in
//! the workspace reduces to one of two primitives over packed `u64` slabs:
//!
//! * [`count_ones`] — `Σ popcount(wᵢ)`
//! * [`xor_popcount`] — `Σ popcount(aᵢ ^ bᵢ)` (the Hamming distance of two
//!   canonical packed vectors)
//!
//! Both are provided at several *dispatch tiers* selected once at startup
//! ([`active`]) from CPU feature detection, overridable with the
//! `UNIVSA_KERNELS` environment variable:
//!
//! | tier       | arch      | technique                                     |
//! |------------|-----------|-----------------------------------------------|
//! | `portable` | any       | 4-word chunked `u64::count_ones`, u64 accum   |
//! | `popcnt`   | x86_64    | same loop compiled with the POPCNT ISA enabled|
//! | `avx2`     | x86_64    | 256-bit vpshufb nibble-LUT + `psadbw` reduce  |
//! | `neon`     | aarch64   | 128-bit `cnt` + horizontal add                |
//!
//! `UNIVSA_KERNELS` accepts `portable`, `native` (best available — the
//! default), or an explicit tier name; an explicit tier the CPU cannot run
//! silently degrades to the best available one so a pinned CI matrix stays
//! portable across runners. Tests can bypass the global selection entirely
//! with [`count_ones_with`] / [`xor_popcount_with`].
//!
//! Every tier returns bit-identical results — the tiers differ only in how
//! the popcounts are computed, never in what is counted — and the proptest
//! suite in `tests/properties.rs` holds them to that.
//!
//! This module is the only place in the crate (and the workspace) where
//! `unsafe` appears: each `target_feature` function is reachable only after
//! the corresponding `is_x86_feature_detected!` probe (NEON is baseline on
//! aarch64), and every intrinsic operates on whole `u64`/vector lanes loaded
//! through unaligned loads from in-bounds slices.

use std::sync::OnceLock;

/// One SIMD dispatch tier for the popcount kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Architecture-independent chunked `u64::count_ones` loop.
    Portable,
    /// x86_64 scalar loop compiled with the POPCNT instruction enabled.
    Popcnt,
    /// x86_64 AVX2 vpshufb nibble-LUT popcount over 256-bit lanes.
    Avx2,
    /// aarch64 NEON `cnt` popcount over 128-bit lanes.
    Neon,
}

impl KernelTier {
    /// All tiers in preference order, best first.
    pub const ALL: [KernelTier; 4] = [
        KernelTier::Avx2,
        KernelTier::Neon,
        KernelTier::Popcnt,
        KernelTier::Portable,
    ];

    /// Stable lower-case name (`portable`, `popcnt`, `avx2`, `neon`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Portable => "portable",
            KernelTier::Popcnt => "popcnt",
            KernelTier::Avx2 => "avx2",
            KernelTier::Neon => "neon",
        }
    }

    /// Parses a tier name as accepted by `UNIVSA_KERNELS` (explicit tiers
    /// only — `native` is resolved by [`detect`]).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "portable" => Some(KernelTier::Portable),
            "popcnt" => Some(KernelTier::Popcnt),
            "avx2" => Some(KernelTier::Avx2),
            "neon" => Some(KernelTier::Neon),
            _ => None,
        }
    }

    /// Whether this tier can run on the current CPU.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            KernelTier::Portable => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Popcnt => std::arch::is_x86_feature_detected!("popcnt"),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            KernelTier::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Best tier the current CPU supports, ignoring the environment override.
#[must_use]
pub fn native_tier() -> KernelTier {
    *KernelTier::ALL
        .iter()
        .find(|t| t.is_available())
        .unwrap_or(&KernelTier::Portable)
}

/// Resolves the dispatch tier from `UNIVSA_KERNELS` and CPU detection
/// (uncached — [`active`] is the hot-path accessor).
///
/// `portable` forces the fallback, `native` (or an unset/unknown value)
/// picks the best detected tier, and an explicit tier name is honored when
/// available and degrades to [`native_tier`] otherwise.
#[must_use]
pub fn detect() -> KernelTier {
    match std::env::var("UNIVSA_KERNELS") {
        Ok(v) if v.eq_ignore_ascii_case("portable") => KernelTier::Portable,
        Ok(v) => match KernelTier::parse(&v) {
            Some(t) if t.is_available() => t,
            _ => native_tier(),
        },
        Err(_) => native_tier(),
    }
}

/// The process-wide dispatch tier, resolved once on first use.
#[must_use]
pub fn active() -> KernelTier {
    static ACTIVE: OnceLock<KernelTier> = OnceLock::new();
    *ACTIVE.get_or_init(detect)
}

/// `Σ popcount(wᵢ)` over a packed slab, dispatched through [`active`].
#[must_use]
pub fn count_ones(words: &[u64]) -> u64 {
    count_ones_with(active(), words)
}

/// `Σ popcount(aᵢ ^ bᵢ)` over two equal-length packed slabs — the Hamming
/// distance of two canonical vectors — dispatched through [`active`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
    xor_popcount_with(active(), a, b)
}

/// [`count_ones`] at an explicit tier (tests force tiers through this).
/// An unavailable tier falls back to the portable loop.
#[must_use]
pub fn count_ones_with(tier: KernelTier, words: &[u64]) -> u64 {
    match tier {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Popcnt if tier.is_available() => x86::count_ones_popcnt(words),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 if tier.is_available() => x86::count_ones_avx2(words),
        #[cfg(target_arch = "aarch64")]
        KernelTier::Neon => neon::count_ones(words),
        _ => count_ones_portable(words),
    }
}

/// [`xor_popcount`] at an explicit tier (tests force tiers through this).
/// An unavailable tier falls back to the portable loop.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn xor_popcount_with(tier: KernelTier, a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "xor_popcount operands must match");
    match tier {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Popcnt if tier.is_available() => x86::xor_popcount_popcnt(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 if tier.is_available() => x86::xor_popcount_avx2(a, b),
        #[cfg(target_arch = "aarch64")]
        KernelTier::Neon => neon::xor_popcount(a, b),
        _ => xor_popcount_portable(a, b),
    }
}

/// Bipolar dot product of two canonical packed `dim`-element vectors:
/// `dim − 2·hamming`, shared by [`crate::BitVec::dot`], the class-vector
/// similarity stage, and the packed inference engine.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot_i64(a: &[u64], b: &[u64], dim: usize) -> i64 {
    dim as i64 - 2 * xor_popcount(a, b) as i64
}

/// Agreement count of two channel words under a mask:
/// `popcount(xnor(a, b) & mask)` — the binary-convolution tap primitive.
#[inline]
#[must_use]
pub fn xnor_popcount_word(a: u64, b: u64, mask: u64) -> u32 {
    (!(a ^ b) & mask).count_ones()
}

/// Portable tier: 4-word chunks accumulated in `u64` so the partial sums
/// pipeline independently and can never overflow (a `u32` accumulator
/// saturates past 2³² set bits ≈ 512 MiB of slab).
fn count_ones_portable(words: &[u64]) -> u64 {
    let mut chunks = words.chunks_exact(4);
    let mut acc = [0u64; 4];
    for c in &mut chunks {
        acc[0] += u64::from(c[0].count_ones());
        acc[1] += u64::from(c[1].count_ones());
        acc[2] += u64::from(c[2].count_ones());
        acc[3] += u64::from(c[3].count_ones());
    }
    let tail: u64 = chunks
        .remainder()
        .iter()
        .map(|w| u64::from(w.count_ones()))
        .sum();
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

fn xor_popcount_portable(a: &[u64], b: &[u64]) -> u64 {
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    let mut acc = [0u64; 4];
    for (x, y) in (&mut ac).zip(&mut bc) {
        acc[0] += u64::from((x[0] ^ y[0]).count_ones());
        acc[1] += u64::from((x[1] ^ y[1]).count_ones());
        acc[2] += u64::from((x[2] ^ y[2]).count_ones());
        acc[3] += u64::from((x[3] ^ y[3]).count_ones());
    }
    let tail: u64 = ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .map(|(x, y)| u64::from((x ^ y).count_ones()))
        .sum();
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    //! x86_64 tiers. Safety: every function here carries a
    //! `target_feature` attribute and is only reached through the dispatch
    //! functions above after `is_x86_feature_detected!` confirms the
    //! feature; all memory access is unaligned loads from in-bounds slice
    //! chunks.

    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_extract_epi64,
        _mm256_loadu_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi32, _mm256_xor_si256,
    };

    /// Scalar loop with the POPCNT ISA enabled so `count_ones` compiles to
    /// one `popcnt` instruction instead of the SWAR fallback sequence. The
    /// safe entry points re-probe the feature so they are sound even if a
    /// caller's availability guard is wrong.
    pub fn count_ones_popcnt(words: &[u64]) -> u64 {
        assert!(std::arch::is_x86_feature_detected!("popcnt"));
        // SAFETY: POPCNT availability verified just above.
        unsafe { count_ones_popcnt_impl(words) }
    }

    /// See [`count_ones_popcnt`].
    pub fn xor_popcount_popcnt(a: &[u64], b: &[u64]) -> u64 {
        assert!(std::arch::is_x86_feature_detected!("popcnt"));
        // SAFETY: POPCNT availability verified just above.
        unsafe { xor_popcount_popcnt_impl(a, b) }
    }

    /// Safe AVX2 entry point; probes the feature itself.
    pub fn count_ones_avx2(words: &[u64]) -> u64 {
        assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: AVX2 availability verified just above.
        unsafe { count_ones_avx2_impl(words) }
    }

    /// Safe AVX2 entry point; probes the feature itself.
    pub fn xor_popcount_avx2(a: &[u64], b: &[u64]) -> u64 {
        assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: AVX2 availability verified just above.
        unsafe { xor_popcount_avx2_impl(a, b) }
    }

    #[target_feature(enable = "popcnt")]
    unsafe fn count_ones_popcnt_impl(words: &[u64]) -> u64 {
        super::count_ones_portable(words)
    }

    #[target_feature(enable = "popcnt")]
    unsafe fn xor_popcount_popcnt_impl(a: &[u64], b: &[u64]) -> u64 {
        super::xor_popcount_portable(a, b)
    }

    /// Per-byte popcount of a 256-bit lane via the vpshufb nibble lookup
    /// (AVX2 has no VPOPCNTQ), then `psadbw` folds the 32 byte counts into
    /// four u64 partials.
    #[target_feature(enable = "avx2")]
    unsafe fn popcount256(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
        let cnt = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    #[target_feature(enable = "avx2")]
    unsafe fn hsum(acc: __m256i) -> u64 {
        (_mm256_extract_epi64(acc, 0) as u64)
            .wrapping_add(_mm256_extract_epi64(acc, 1) as u64)
            .wrapping_add(_mm256_extract_epi64(acc, 2) as u64)
            .wrapping_add(_mm256_extract_epi64(acc, 3) as u64)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn count_ones_avx2_impl(words: &[u64]) -> u64 {
        let mut chunks = words.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for c in &mut chunks {
            let v = _mm256_loadu_si256(c.as_ptr().cast());
            acc = _mm256_add_epi64(acc, popcount256(v));
        }
        hsum(acc)
            + chunks
                .remainder()
                .iter()
                .map(|w| u64::from(w.count_ones()))
                .sum::<u64>()
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xor_popcount_avx2_impl(a: &[u64], b: &[u64]) -> u64 {
        let mut ac = a.chunks_exact(4);
        let mut bc = b.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for (x, y) in (&mut ac).zip(&mut bc) {
            let v = _mm256_xor_si256(
                _mm256_loadu_si256(x.as_ptr().cast()),
                _mm256_loadu_si256(y.as_ptr().cast()),
            );
            acc = _mm256_add_epi64(acc, popcount256(v));
        }
        hsum(acc)
            + ac.remainder()
                .iter()
                .zip(bc.remainder())
                .map(|(x, y)| u64::from((x ^ y).count_ones()))
                .sum::<u64>()
    }
}

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon {
    //! aarch64 tier. NEON is part of the baseline aarch64 ABI, so no
    //! runtime probe is needed; all loads are unaligned from in-bounds
    //! slice chunks.

    use std::arch::aarch64::{vaddlvq_u8, vcntq_u8, veorq_u8, vld1q_u8};

    pub fn count_ones(words: &[u64]) -> u64 {
        let mut chunks = words.chunks_exact(2);
        let mut acc = 0u64;
        for c in &mut chunks {
            // SAFETY: a 2×u64 chunk is 16 in-bounds bytes.
            acc += u64::from(unsafe { vaddlvq_u8(vcntq_u8(vld1q_u8(c.as_ptr().cast()))) });
        }
        acc + chunks
            .remainder()
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum::<u64>()
    }

    pub fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
        let mut ac = a.chunks_exact(2);
        let mut bc = b.chunks_exact(2);
        let mut acc = 0u64;
        for (x, y) in (&mut ac).zip(&mut bc) {
            // SAFETY: each 2×u64 chunk is 16 in-bounds bytes.
            acc += u64::from(unsafe {
                vaddlvq_u8(vcntq_u8(veorq_u8(
                    vld1q_u8(x.as_ptr().cast()),
                    vld1q_u8(y.as_ptr().cast()),
                )))
            });
        }
        acc + ac
            .remainder()
            .iter()
            .zip(bc.remainder())
            .map(|(x, y)| u64::from((x ^ y).count_ones()))
            .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_count(words: &[u64]) -> u64 {
        words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    fn patterns() -> Vec<Vec<u64>> {
        // deterministic splitmix so every word pattern class is hit:
        // empty, sub-chunk tails, exact chunks, and long mixed slabs
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut out = vec![
            vec![],
            vec![u64::MAX],
            vec![0, u64::MAX, 0x5555_5555_5555_5555],
        ];
        for len in [1usize, 3, 4, 5, 7, 8, 16, 33] {
            out.push((0..len).map(|_| next()).collect());
        }
        out
    }

    #[test]
    fn every_tier_matches_naive_count() {
        for words in patterns() {
            let expect = naive_count(&words);
            for tier in KernelTier::ALL {
                assert_eq!(
                    count_ones_with(tier, &words),
                    expect,
                    "tier {tier} on {} words",
                    words.len()
                );
            }
            assert_eq!(count_ones(&words), expect);
        }
    }

    #[test]
    fn every_tier_matches_naive_xor_popcount() {
        let pats = patterns();
        for (i, a) in pats.iter().enumerate() {
            let b: Vec<u64> = a.iter().map(|w| w.rotate_left(i as u32) ^ 0xF0F0).collect();
            let expect: u64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| u64::from((x ^ y).count_ones()))
                .sum();
            for tier in KernelTier::ALL {
                assert_eq!(xor_popcount_with(tier, a, &b), expect, "tier {tier}");
            }
            assert_eq!(xor_popcount(a, &b), expect);
        }
    }

    #[test]
    fn dot_matches_definition() {
        // dim 130 = 2 full words + 2-bit tail
        let a = vec![u64::MAX, 0, 0b11];
        let b = vec![u64::MAX, u64::MAX, 0b01];
        // agreements: 64 + 0 + 1 = 65; dot = 2*65 - 130 = 0
        assert_eq!(dot_i64(&a, &b, 130), 0);
        assert_eq!(dot_i64(&a, &a, 130), 130);
    }

    #[test]
    fn xnor_popcount_word_masks() {
        assert_eq!(xnor_popcount_word(0b1010, 0b1010, 0xF), 4);
        assert_eq!(xnor_popcount_word(0b1010, 0b0101, 0xF), 0);
        assert_eq!(xnor_popcount_word(u64::MAX, u64::MAX, u64::MAX), 64);
        assert_eq!(xnor_popcount_word(0, u64::MAX, 0xFF), 0);
        // bits outside the mask never count
        assert_eq!(xnor_popcount_word(u64::MAX, u64::MAX, 0b1), 1);
    }

    #[test]
    fn tier_names_round_trip() {
        for tier in KernelTier::ALL {
            assert_eq!(KernelTier::parse(tier.name()), Some(tier));
        }
        assert_eq!(KernelTier::parse("AVX2"), Some(KernelTier::Avx2));
        assert_eq!(KernelTier::parse("bogus"), None);
    }

    #[test]
    fn portable_always_available_and_active_is_available() {
        assert!(KernelTier::Portable.is_available());
        assert!(native_tier().is_available());
        assert!(active().is_available());
    }
}
