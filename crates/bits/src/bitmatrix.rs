//! Row-major stacks of equal-dimension packed binary vectors.

use std::fmt;

use crate::error::DimMismatchError;
use crate::BitVec;

/// A row-major stack of equal-dimension [`BitVec`]s.
///
/// Binary VSA models are bundles of such matrices: the value box **V**
/// (`M × D`), feature vectors **F** (`O × D`), convolution kernels **K**
/// (flattened per output channel), and class vectors **C** (`C × D`).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use univsa_bits::BitMatrix;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let m = BitMatrix::random(4, 128, &mut rng);
/// assert_eq!(m.rows(), 4);
/// assert_eq!(m.dim(), 128);
/// let nearest = m.nearest(m.row(2)).unwrap();
/// assert_eq!(nearest, 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    dim: usize,
    rows: Vec<BitVec>,
}

impl BitMatrix {
    /// Creates a matrix of all-zero rows.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            dim,
            rows: (0..rows).map(|_| BitVec::zeros(dim)).collect(),
        }
    }

    /// Creates a matrix of uniformly random rows.
    pub fn random<R: rand::Rng + ?Sized>(rows: usize, dim: usize, rng: &mut R) -> Self {
        Self {
            dim,
            rows: (0..rows).map(|_| BitVec::random(dim, rng)).collect(),
        }
    }

    /// Builds a matrix from existing rows.
    ///
    /// # Errors
    ///
    /// Returns [`DimMismatchError`] if rows disagree in dimension (the error
    /// reports the first row's dimension and the offending row's dimension).
    /// An empty row set produces an empty matrix of dimension 0.
    pub fn from_rows(rows: Vec<BitVec>) -> Result<Self, DimMismatchError> {
        let dim = rows.first().map_or(0, BitVec::dim);
        for r in &rows {
            if r.dim() != dim {
                return Err(DimMismatchError {
                    left: dim,
                    right: r.dim(),
                });
            }
        }
        Ok(Self { dim, rows })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Dimension of every row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut BitVec {
        &mut self.rows[i]
    }

    /// Fallible row access.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&BitVec> {
        self.rows.get(i)
    }

    /// Iterates over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, BitVec> {
        self.rows.iter()
    }

    /// Dot products of a query against every row: the similarity vector
    /// `C·s` of the paper's Eq. 2.
    ///
    /// # Errors
    ///
    /// Returns [`DimMismatchError`] if the query dimension differs from the
    /// matrix dimension.
    pub fn dots(&self, query: &BitVec) -> Result<Vec<i64>, DimMismatchError> {
        self.rows.iter().map(|r| r.dot(query)).collect()
    }

    /// Index of the row with the highest dot-product similarity to `query`
    /// (ties broken toward the lower index, matching `argmax` semantics).
    /// An empty matrix yields index 0 by convention (callers construct
    /// class sets with at least one row).
    ///
    /// # Errors
    ///
    /// Returns [`DimMismatchError`] if the query dimension differs from the
    /// matrix dimension.
    pub fn nearest(&self, query: &BitVec) -> Result<usize, DimMismatchError> {
        let dots = self.dots(query)?;
        Ok(dots
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Total packed storage in bits: `rows * dim` — the quantity charged by
    /// the paper's memory model (Eq. 5).
    #[inline]
    pub fn storage_bits(&self) -> usize {
        self.rows.len() * self.dim
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitMatrix({}x{})", self.rows.len(), self.dim)
    }
}

impl<'a> IntoIterator for &'a BitMatrix {
    type Item = &'a BitVec;
    type IntoIter = std::slice::Iter<'a, BitVec>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

impl FromIterator<BitVec> for BitMatrix {
    /// Collects rows into a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the rows disagree in dimension; use
    /// [`BitMatrix::from_rows`] for a fallible build.
    fn from_iter<I: IntoIterator<Item = BitVec>>(iter: I) -> Self {
        Self::from_rows(iter.into_iter().collect()).expect("rows must share one dimension")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_rows_checks_dims() {
        let rows = vec![BitVec::zeros(8), BitVec::zeros(9)];
        let err = BitMatrix::from_rows(rows).unwrap_err();
        assert_eq!(err.left, 8);
        assert_eq!(err.right, 9);
    }

    #[test]
    fn empty_matrix() {
        let m = BitMatrix::from_rows(vec![]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.dim(), 0);
        assert_eq!(m.storage_bits(), 0);
    }

    #[test]
    fn nearest_finds_self() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = BitMatrix::random(10, 256, &mut rng);
        for i in 0..10 {
            assert_eq!(m.nearest(m.row(i)).unwrap(), i);
        }
    }

    #[test]
    fn nearest_ties_break_low() {
        let rows = vec![BitVec::ones(4), BitVec::ones(4), BitVec::zeros(4)];
        let m = BitMatrix::from_rows(rows).unwrap();
        assert_eq!(m.nearest(&BitVec::ones(4)).unwrap(), 0);
    }

    #[test]
    fn dots_match_manual() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = BitMatrix::random(3, 65, &mut rng);
        let q = BitVec::random(65, &mut rng);
        let dots = m.dots(&q).unwrap();
        for (i, d) in dots.iter().enumerate() {
            assert_eq!(*d, m.row(i).dot(&q).unwrap());
        }
    }

    #[test]
    fn dots_dim_mismatch() {
        let m = BitMatrix::zeros(2, 8);
        assert!(m.dots(&BitVec::zeros(9)).is_err());
    }

    #[test]
    fn storage_bits_counts_all_rows() {
        let m = BitMatrix::zeros(7, 100);
        assert_eq!(m.storage_bits(), 700);
    }

    #[test]
    fn collect_rows() {
        let m: BitMatrix = (0..4).map(|_| BitVec::zeros(16)).collect();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.iter().count(), 4);
    }
}
