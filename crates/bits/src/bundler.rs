//! Majority-rule bundling accumulator.

use crate::error::DimMismatchError;
use crate::BitVec;

/// Accumulator implementing the VSA *bundling* operation
/// `s = sgn(Σᵢ vᵢ)` over bipolar vectors, with the paper's `sgn(0) = +1`
/// tiebreak.
///
/// Internally keeps one signed counter per element; adding a vector adds
/// `+1`/`-1` per element, and [`Bundler::finish`] thresholds at zero.
///
/// # Examples
///
/// ```
/// use univsa_bits::{BitVec, Bundler};
///
/// let mut b = Bundler::new(3);
/// b.add(&BitVec::from_bipolar(&[1, 1, -1]).unwrap()).unwrap();
/// b.add(&BitVec::from_bipolar(&[1, -1, -1]).unwrap()).unwrap();
/// b.add(&BitVec::from_bipolar(&[-1, 1, -1]).unwrap()).unwrap();
/// // sums: [1, 1, -3] → sgn → [+1, +1, -1]
/// assert_eq!(b.finish().to_bipolar(), vec![1, 1, -1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bundler {
    counts: Vec<i32>,
}

impl Bundler {
    /// Creates an empty accumulator for `dim`-element vectors.
    pub fn new(dim: usize) -> Self {
        Self {
            counts: vec![0; dim],
        }
    }

    /// The element dimension this bundler accepts.
    #[inline]
    pub fn dim(&self) -> usize {
        self.counts.len()
    }

    /// Adds a bipolar vector to the accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`DimMismatchError`] if `v.dim() != self.dim()`.
    pub fn add(&mut self, v: &BitVec) -> Result<(), DimMismatchError> {
        self.add_weighted(v, 1)
    }

    /// Adds a bipolar vector scaled by an integer weight.
    ///
    /// Negative weights subtract (equivalent to adding the complement
    /// `weight` times).
    ///
    /// # Errors
    ///
    /// Returns [`DimMismatchError`] if `v.dim() != self.dim()`.
    pub fn add_weighted(&mut self, v: &BitVec, weight: i32) -> Result<(), DimMismatchError> {
        if v.dim() != self.counts.len() {
            return Err(DimMismatchError {
                left: self.counts.len(),
                right: v.dim(),
            });
        }
        for (i, c) in self.counts.iter_mut().enumerate() {
            // bit 1 → +weight, bit 0 → -weight
            if v.get(i) == Some(true) {
                *c += weight;
            } else {
                *c -= weight;
            }
        }
        Ok(())
    }

    /// Borrows the raw per-element counters.
    #[inline]
    pub fn counts(&self) -> &[i32] {
        &self.counts
    }

    /// Thresholds the accumulated sums: `sgn(Σ)` with `sgn(0) = +1`.
    ///
    /// Consumes the bundler (bundling is a one-shot reduction); use
    /// [`Bundler::snapshot`] to binarize without consuming.
    pub fn finish(self) -> BitVec {
        self.snapshot()
    }

    /// Binarizes the current sums without consuming the accumulator.
    pub fn snapshot(&self) -> BitVec {
        let mut v = BitVec::zeros(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            // sgn(0) = +1 tiebreak, exactly as the paper specifies.
            if c >= 0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Resets all counters to zero, keeping the dimension.
    pub fn clear(&mut self) {
        self.counts.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sgn_zero_is_plus_one() {
        let mut b = Bundler::new(2);
        b.add(&BitVec::from_bipolar(&[1, -1]).unwrap()).unwrap();
        b.add(&BitVec::from_bipolar(&[-1, 1]).unwrap()).unwrap();
        // sums are [0, 0] → tiebreak to +1
        assert_eq!(b.finish().to_bipolar(), vec![1, 1]);
    }

    #[test]
    fn single_vector_passes_through() {
        let mut rng = StdRng::seed_from_u64(17);
        let v = BitVec::random(200, &mut rng);
        let mut b = Bundler::new(200);
        b.add(&v).unwrap();
        assert_eq!(b.finish(), v);
    }

    #[test]
    fn majority_wins() {
        let mut b = Bundler::new(1);
        let plus = BitVec::from_bipolar(&[1]).unwrap();
        let minus = BitVec::from_bipolar(&[-1]).unwrap();
        b.add(&plus).unwrap();
        b.add(&plus).unwrap();
        b.add(&minus).unwrap();
        assert_eq!(b.finish().to_bipolar(), vec![1]);
    }

    #[test]
    fn weighted_add_matches_repeats() {
        let mut rng = StdRng::seed_from_u64(21);
        let u = BitVec::random(64, &mut rng);
        let v = BitVec::random(64, &mut rng);
        let mut a = Bundler::new(64);
        a.add_weighted(&u, 3).unwrap();
        a.add(&v).unwrap();
        let mut b = Bundler::new(64);
        for _ in 0..3 {
            b.add(&u).unwrap();
        }
        b.add(&v).unwrap();
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn negative_weight_subtracts() {
        let v = BitVec::from_bipolar(&[1, -1]).unwrap();
        let mut b = Bundler::new(2);
        b.add_weighted(&v, -1).unwrap();
        // counts: [-1, +1] → sgn → [-1, +1]
        assert_eq!(b.finish().to_bipolar(), vec![-1, 1]);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let mut b = Bundler::new(4);
        assert!(b.add(&BitVec::zeros(5)).is_err());
    }

    #[test]
    fn clear_resets() {
        let mut b = Bundler::new(3);
        b.add(&BitVec::ones(3)).unwrap();
        b.clear();
        assert_eq!(b.counts(), &[0, 0, 0]);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let mut b = Bundler::new(2);
        b.add(&BitVec::ones(2)).unwrap();
        let s1 = b.snapshot();
        b.add(&BitVec::ones(2)).unwrap();
        let s2 = b.snapshot();
        assert_eq!(s1, s2);
    }
}
