//! Error types for packed binary vector operations.

use std::error::Error;
use std::fmt;

/// Two operands had different dimensions where equal dimensions are required.
///
/// Returned by binary operations such as [`crate::BitVec::xnor`] and
/// [`crate::BitVec::hamming`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimMismatchError {
    /// Dimension of the left-hand operand.
    pub left: usize,
    /// Dimension of the right-hand operand.
    pub right: usize,
}

impl fmt::Display for DimMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimension mismatch: left operand has {} elements, right has {}",
            self.left, self.right
        )
    }
}

impl Error for DimMismatchError {}

/// A string could not be parsed as a packed binary vector.
///
/// Returned by the [`std::str::FromStr`] implementation of
/// [`crate::BitVec`], which accepts strings of `'0'`/`'1'` characters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitVecError {
    /// Byte offset of the first offending character.
    pub position: usize,
    /// The offending character.
    pub found: char,
}

impl fmt::Display for ParseBitVecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid character {:?} at position {} (expected '0' or '1')",
            self.found, self.position
        )
    }
}

impl Error for ParseBitVecError {}
