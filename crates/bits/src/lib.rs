//! # univsa-bits
//!
//! Packed binary/bipolar vector substrate for binary vector symbolic
//! architectures (VSA).
//!
//! Binary VSA represents symbols as *bipolar* vectors with elements in
//! `{-1, +1}`. For hardware efficiency these are stored packed, one element per
//! bit, with the convention used throughout this workspace:
//!
//! * bit `1` ⇔ bipolar `+1`
//! * bit `0` ⇔ bipolar `-1`
//!
//! Under this convention the elementwise bipolar product is `XNOR`, the
//! bipolar dot product of two vectors of dimension `D` is
//! `2 * popcount(xnor(a, b)) - D`, and the Hamming distance relates to the
//! dot product by `dot = D - 2 * hamming`.
//!
//! The crate provides:
//!
//! * [`BitVec`] — a packed, fixed-dimension binary vector with the VSA
//!   operations (XNOR binding, Hamming distance, bipolar dot product).
//! * [`BitMatrix`] — a row-major stack of equal-dimension [`BitVec`]s
//!   (used for value boxes **V**, feature vectors **F**, kernels **K**, and
//!   class vectors **C**).
//! * [`Bundler`] — the majority-rule accumulator implementing the VSA
//!   bundling operation `sgn(Σ ...)` with the paper's `sgn(0) = +1` tiebreak.
//!
//! # Examples
//!
//! ```
//! use univsa_bits::{BitVec, Bundler};
//!
//! // Bind two random vectors and bundle three of them.
//! let a = BitVec::from_bipolar(&[1, -1, 1, 1]).unwrap();
//! let b = BitVec::from_bipolar(&[1, 1, -1, 1]).unwrap();
//! let bound = a.xnor(&b).unwrap();
//! assert_eq!(bound.to_bipolar(), vec![1, -1, -1, 1]);
//!
//! let mut bundler = Bundler::new(4);
//! bundler.add(&a).unwrap();
//! bundler.add(&b).unwrap();
//! bundler.add(&bound).unwrap();
//! let s = bundler.finish();
//! assert_eq!(s.dim(), 4);
//! ```

// `deny` rather than `forbid`: the SIMD dispatch tiers in [`kernels`] are
// the one sanctioned unsafe island (feature-gated `std::arch` intrinsics
// behind runtime detection), scoped there with an explicit allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bitmatrix;
mod bitvec;
mod bundler;
mod error;
pub mod kernels;
pub mod word;

pub use bitmatrix::BitMatrix;
pub use bitvec::BitVec;
pub use bundler::Bundler;
pub use error::{DimMismatchError, ParseBitVecError};
pub use kernels::KernelTier;
