//! Packed fixed-dimension binary vector.

use std::fmt;
use std::str::FromStr;

use crate::error::{DimMismatchError, ParseBitVecError};
use crate::word::{locate, tail_mask, words_for};

/// A packed binary vector of fixed dimension, interpreted as a bipolar
/// (`{-1, +1}`) VSA vector.
///
/// Bit `1` encodes bipolar `+1`; bit `0` encodes bipolar `-1`. Elements are
/// packed 64 per [`u64`] word; see [`crate::word`] for the layout.
///
/// # Examples
///
/// ```
/// use univsa_bits::BitVec;
///
/// let v = BitVec::from_bipolar(&[1, -1, 1]).unwrap();
/// assert_eq!(v.dim(), 3);
/// assert_eq!(v.count_ones(), 2);
/// assert_eq!(v.to_bipolar(), vec![1, -1, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    dim: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero (all bipolar `-1`) vector of the given dimension.
    ///
    /// # Examples
    ///
    /// ```
    /// use univsa_bits::BitVec;
    /// let v = BitVec::zeros(100);
    /// assert_eq!(v.dim(), 100);
    /// assert_eq!(v.count_ones(), 0);
    /// ```
    pub fn zeros(dim: usize) -> Self {
        Self {
            dim,
            words: vec![0; words_for(dim)],
        }
    }

    /// Creates an all-one (all bipolar `+1`) vector of the given dimension.
    ///
    /// # Examples
    ///
    /// ```
    /// use univsa_bits::BitVec;
    /// let v = BitVec::ones(70);
    /// assert_eq!(v.count_ones(), 70);
    /// ```
    pub fn ones(dim: usize) -> Self {
        let mut v = Self {
            dim,
            words: vec![u64::MAX; words_for(dim)],
        };
        v.canonicalize();
        v
    }

    /// Creates a vector from raw packed words.
    ///
    /// Surplus high bits in the final word are cleared; surplus words are
    /// truncated and missing words are zero-filled, so the result is always
    /// canonical.
    pub fn from_words(dim: usize, mut words: Vec<u64>) -> Self {
        words.resize(words_for(dim), 0);
        let mut v = Self { dim, words };
        v.canonicalize();
        v
    }

    /// Creates a vector from a slice of bipolar values.
    ///
    /// Any strictly positive value maps to `+1` (bit 1); zero and negative
    /// values map to `-1` (bit 0) — note that the VSA `sgn(0) = +1` tiebreak
    /// is applied by [`crate::Bundler`], not here, because here a literal `0`
    /// element is an input error tolerated as `-1`.
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` so the encoding contract can
    /// tighten (e.g. rejecting zeros) without breaking callers.
    ///
    /// # Examples
    ///
    /// ```
    /// use univsa_bits::BitVec;
    /// let v = BitVec::from_bipolar(&[1, -1, 1, -1]).unwrap();
    /// assert_eq!(v.to_bipolar(), vec![1, -1, 1, -1]);
    /// ```
    pub fn from_bipolar(values: &[i8]) -> Result<Self, ParseBitVecError> {
        let mut v = Self::zeros(values.len());
        for (i, &x) in values.iter().enumerate() {
            if x > 0 {
                v.set(i, true);
            }
        }
        Ok(v)
    }

    /// Creates a uniformly random vector using the supplied RNG.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use univsa_bits::BitVec;
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let v = BitVec::random(256, &mut rng);
    /// assert_eq!(v.dim(), 256);
    /// ```
    pub fn random<R: rand::Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        let mut words = vec![0u64; words_for(dim)];
        for w in &mut words {
            *w = rng.gen();
        }
        let mut v = Self { dim, words };
        v.canonicalize();
        v
    }

    /// The number of elements in the vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the vector has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dim == 0
    }

    /// Borrows the packed word storage.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Returns element `i` as a bit (`true` = bipolar `+1`).
    ///
    /// Returns `None` when `i >= self.dim()`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.dim {
            return None;
        }
        let (w, b) = locate(i);
        Some((self.words[w] >> b) & 1 == 1)
    }

    /// Returns element `i` as a bipolar value (`+1` or `-1`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn bipolar(&self, i: usize) -> i8 {
        match self.get(i) {
            Some(true) => 1,
            Some(false) => -1,
            None => panic!("index {i} out of bounds for BitVec of dim {}", self.dim),
        }
    }

    /// Sets element `i` to the given bit value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.dim,
            "index {i} out of bounds for BitVec of dim {}",
            self.dim
        );
        let (w, b) = locate(i);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of `1` bits (bipolar `+1` elements).
    ///
    /// # Examples
    ///
    /// ```
    /// use univsa_bits::BitVec;
    /// assert_eq!(BitVec::ones(9).count_ones(), 9);
    /// ```
    pub fn count_ones(&self) -> u32 {
        // chunked word iteration with a u64 accumulator, dispatched to the
        // best SIMD tier; the cast back is exact because dim < 2³² always
        // holds for vectors this crate can address in practice
        crate::kernels::count_ones(&self.words) as u32
    }

    /// Elementwise XNOR — the bipolar *binding* (elementwise product).
    ///
    /// # Errors
    ///
    /// Returns [`DimMismatchError`] if the operands have different dimensions.
    ///
    /// # Examples
    ///
    /// ```
    /// use univsa_bits::BitVec;
    /// let a = BitVec::from_bipolar(&[1, 1, -1]).unwrap();
    /// let b = BitVec::from_bipolar(&[1, -1, -1]).unwrap();
    /// assert_eq!(a.xnor(&b).unwrap().to_bipolar(), vec![1, -1, 1]);
    /// ```
    pub fn xnor(&self, other: &Self) -> Result<Self, DimMismatchError> {
        self.check_dim(other)?;
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| !(a ^ b))
            .collect();
        Ok(Self::from_words(self.dim, words))
    }

    /// Elementwise XOR (bipolar elementwise product of `a` and `-b`).
    ///
    /// # Errors
    ///
    /// Returns [`DimMismatchError`] if the operands have different dimensions.
    pub fn xor(&self, other: &Self) -> Result<Self, DimMismatchError> {
        self.check_dim(other)?;
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a ^ b)
            .collect();
        Ok(Self::from_words(self.dim, words))
    }

    /// Bitwise complement — the bipolar negation.
    ///
    /// # Examples
    ///
    /// ```
    /// use univsa_bits::BitVec;
    /// let a = BitVec::from_bipolar(&[1, -1]).unwrap();
    /// assert_eq!(a.not().to_bipolar(), vec![-1, 1]);
    /// ```
    pub fn not(&self) -> Self {
        let words = self.words.iter().map(|w| !w).collect();
        Self::from_words(self.dim, words)
    }

    /// Hamming distance: the number of positions where the vectors differ.
    ///
    /// # Errors
    ///
    /// Returns [`DimMismatchError`] if the operands have different dimensions.
    ///
    /// # Examples
    ///
    /// ```
    /// use univsa_bits::BitVec;
    /// let a = BitVec::from_bipolar(&[1, 1, -1, -1]).unwrap();
    /// let b = BitVec::from_bipolar(&[1, -1, -1, 1]).unwrap();
    /// assert_eq!(a.hamming(&b).unwrap(), 2);
    /// ```
    pub fn hamming(&self, other: &Self) -> Result<u32, DimMismatchError> {
        self.check_dim(other)?;
        Ok(crate::kernels::xor_popcount(&self.words, &other.words) as u32)
    }

    /// Bipolar dot product: `Σ aᵢ·bᵢ` with `aᵢ, bᵢ ∈ {-1, +1}`.
    ///
    /// Computed as `dim - 2 * hamming`, equivalent to
    /// `2 * popcount(xnor) - dim`. This is the similarity measurement used by
    /// binary VSA classification (the paper's Eq. 2), and is provably
    /// equivalent (up to affine transform) to Hamming similarity.
    ///
    /// # Errors
    ///
    /// Returns [`DimMismatchError`] if the operands have different dimensions.
    ///
    /// # Examples
    ///
    /// ```
    /// use univsa_bits::BitVec;
    /// let a = BitVec::from_bipolar(&[1, 1, -1, -1]).unwrap();
    /// let b = BitVec::from_bipolar(&[1, -1, -1, 1]).unwrap();
    /// assert_eq!(a.dot(&b).unwrap(), 0); // 1 - 1 + 1 - 1
    /// ```
    pub fn dot(&self, other: &Self) -> Result<i64, DimMismatchError> {
        self.check_dim(other)?;
        Ok(crate::kernels::dot_i64(&self.words, &other.words, self.dim))
    }

    /// Cyclic rotation by `k` positions — the VSA *permutation* operator
    /// `ρ`, used to protect sequence/position information. Rotation is a
    /// similarity-preserving bijection: `ρ(a)·ρ(b) = a·b`.
    ///
    /// # Examples
    ///
    /// ```
    /// use univsa_bits::BitVec;
    /// let v: BitVec = "1100".parse().unwrap();
    /// assert_eq!(v.rotate(1).to_string(), "0110");
    /// assert_eq!(v.rotate(4), v);
    /// ```
    pub fn rotate(&self, k: usize) -> Self {
        if self.dim == 0 {
            return self.clone();
        }
        let k = k % self.dim;
        let mut out = BitVec::zeros(self.dim);
        for i in 0..self.dim {
            if self.get(i) == Some(true) {
                out.set((i + k) % self.dim, true);
            }
        }
        out
    }

    /// Converts to a vector of bipolar values.
    pub fn to_bipolar(&self) -> Vec<i8> {
        (0..self.dim).map(|i| self.bipolar(i)).collect()
    }

    /// Converts to a vector of `f32` bipolar values (for feeding the training
    /// substrate).
    pub fn to_f32(&self) -> Vec<f32> {
        (0..self.dim)
            .map(|i| if self.get(i) == Some(true) { 1.0 } else { -1.0 })
            .collect()
    }

    /// Iterates over elements as bits.
    pub fn iter(&self) -> Iter<'_> {
        Iter { vec: self, pos: 0 }
    }

    /// Serialized size in bits when stored packed — the quantity charged by
    /// the paper's memory model (Eq. 5).
    #[inline]
    pub fn storage_bits(&self) -> usize {
        self.dim
    }

    fn check_dim(&self, other: &Self) -> Result<(), DimMismatchError> {
        if self.dim != other.dim {
            Err(DimMismatchError {
                left: self.dim,
                right: other.dim,
            })
        } else {
            Ok(())
        }
    }

    fn canonicalize(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.dim);
        }
    }
}

/// Iterator over the bits of a [`BitVec`], produced by [`BitVec::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    vec: &'a BitVec,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.vec.get(self.pos)?;
        self.pos += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.dim.saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec(dim={}, bits=", self.dim)?;
        let shown = self.dim.min(64);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i) == Some(true)))?;
        }
        if self.dim > shown {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.dim {
            write!(f, "{}", u8::from(self.get(i) == Some(true)))?;
        }
        Ok(())
    }
}

impl FromStr for BitVec {
    type Err = ParseBitVecError;

    /// Parses a string of `'0'` and `'1'` characters.
    ///
    /// # Examples
    ///
    /// ```
    /// use univsa_bits::BitVec;
    /// let v: BitVec = "1011".parse().unwrap();
    /// assert_eq!(v.to_bipolar(), vec![1, -1, 1, 1]);
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut v = BitVec::zeros(s.chars().count());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => {}
                '1' => v.set(i, true),
                found => return Err(ParseBitVecError { position: i, found }),
            }
        }
        Ok(v)
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }
}

impl<'a> IntoIterator for &'a BitVec {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::BITS_PER_WORD;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        // canonical: no stray bits beyond dim
        assert_eq!(o.as_words()[2], tail_mask(130));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert_eq!(v.get(0), Some(true));
        assert_eq!(v.get(1), Some(false));
        assert_eq!(v.get(63), Some(true));
        assert_eq!(v.get(64), Some(true));
        assert_eq!(v.get(99), Some(true));
        assert_eq!(v.get(100), None);
        assert_eq!(v.count_ones(), 4);
        v.set(63, false);
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        let mut v = BitVec::zeros(8);
        v.set(8, true);
    }

    #[test]
    fn xnor_is_bipolar_product() {
        let a = BitVec::from_bipolar(&[1, 1, -1, -1]).unwrap();
        let b = BitVec::from_bipolar(&[1, -1, 1, -1]).unwrap();
        let c = a.xnor(&b).unwrap();
        assert_eq!(c.to_bipolar(), vec![1, -1, -1, 1]);
    }

    #[test]
    fn xnor_dim_mismatch() {
        let a = BitVec::zeros(4);
        let b = BitVec::zeros(5);
        let err = a.xnor(&b).unwrap_err();
        assert_eq!(err, DimMismatchError { left: 4, right: 5 });
        assert!(err.to_string().contains("dimension mismatch"));
    }

    #[test]
    fn dot_equals_dim_minus_twice_hamming() {
        let mut rng = StdRng::seed_from_u64(42);
        for dim in [1usize, 63, 64, 65, 100, 1000] {
            let a = BitVec::random(dim, &mut rng);
            let b = BitVec::random(dim, &mut rng);
            let h = a.hamming(&b).unwrap();
            let d = a.dot(&b).unwrap();
            assert_eq!(d, dim as i64 - 2 * h as i64);
            // brute-force check
            let brute: i64 = a
                .to_bipolar()
                .iter()
                .zip(b.to_bipolar())
                .map(|(&x, y)| x as i64 * y as i64)
                .sum();
            assert_eq!(d, brute);
        }
    }

    #[test]
    fn self_dot_is_dim() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BitVec::random(257, &mut rng);
        assert_eq!(a.dot(&a).unwrap(), 257);
        assert_eq!(a.hamming(&a).unwrap(), 0);
    }

    #[test]
    fn not_negates() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = BitVec::random(129, &mut rng);
        let n = a.not();
        assert_eq!(a.dot(&n).unwrap(), -129);
        assert_eq!(n.count_ones() + a.count_ones(), 129);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let s = "10110001101";
        let v: BitVec = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn parse_rejects_bad_char() {
        let err = "10x1".parse::<BitVec>().unwrap_err();
        assert_eq!(err.position, 2);
        assert_eq!(err.found, 'x');
    }

    #[test]
    fn from_iterator_collect() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.to_bipolar(), vec![1, -1, 1]);
        let bits: Vec<bool> = v.iter().collect();
        assert_eq!(bits, vec![true, false, true]);
        assert_eq!(v.iter().len(), 3);
    }

    #[test]
    fn random_is_canonical() {
        let mut rng = StdRng::seed_from_u64(3);
        for dim in [1usize, 3, 63, 64, 65, 127] {
            let v = BitVec::random(dim, &mut rng);
            if dim % BITS_PER_WORD != 0 {
                assert_eq!(v.as_words().last().unwrap() & !tail_mask(dim), 0);
            }
        }
    }

    #[test]
    fn empty_vector() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.dot(&BitVec::zeros(0)).unwrap(), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let v = BitVec::zeros(4);
        assert!(!format!("{v:?}").is_empty());
    }

    #[test]
    fn rotate_preserves_similarity() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = BitVec::random(129, &mut rng);
        let b = BitVec::random(129, &mut rng);
        for k in [0usize, 1, 64, 128, 129, 200] {
            assert_eq!(
                a.rotate(k).dot(&b.rotate(k)).unwrap(),
                a.dot(&b).unwrap(),
                "rotation by {k} must preserve similarity"
            );
            assert_eq!(a.rotate(k).count_ones(), a.count_ones());
        }
    }

    #[test]
    fn rotate_composes() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = BitVec::random(70, &mut rng);
        assert_eq!(a.rotate(3).rotate(4), a.rotate(7));
        assert_eq!(a.rotate(70), a);
        assert!(BitVec::zeros(0).rotate(5).is_empty());
    }

    #[test]
    fn serde_roundtrip_via_words() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = BitVec::random(100, &mut rng);
        let w = BitVec::from_words(v.dim(), v.as_words().to_vec());
        assert_eq!(v, w);
    }
}
