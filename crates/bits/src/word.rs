//! Word-level helpers for packed bit storage.
//!
//! A packed vector stores 64 elements per [`u64`] word in little-endian bit
//! order: element `i` lives in word `i / 64`, bit `i % 64`. The final word of
//! a vector whose dimension is not a multiple of 64 has its unused high bits
//! kept at zero (the *canonical* form); every mutating operation in this
//! crate restores canonical form before returning.

/// Number of elements packed into one storage word.
pub const BITS_PER_WORD: usize = u64::BITS as usize;

/// Number of `u64` words needed to store `dim` packed elements.
///
/// # Examples
///
/// ```
/// use univsa_bits::word::words_for;
/// assert_eq!(words_for(0), 0);
/// assert_eq!(words_for(1), 1);
/// assert_eq!(words_for(64), 1);
/// assert_eq!(words_for(65), 2);
/// ```
#[inline]
pub const fn words_for(dim: usize) -> usize {
    dim.div_ceil(BITS_PER_WORD)
}

/// Mask selecting the valid bits of the final word of a `dim`-element vector.
///
/// Returns `u64::MAX` when `dim` is a multiple of 64 (all bits of the last
/// word are valid), otherwise a mask with the low `dim % 64` bits set.
///
/// # Examples
///
/// ```
/// use univsa_bits::word::tail_mask;
/// assert_eq!(tail_mask(64), u64::MAX);
/// assert_eq!(tail_mask(3), 0b111);
/// ```
#[inline]
pub const fn tail_mask(dim: usize) -> u64 {
    let rem = dim % BITS_PER_WORD;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// Word index and bit offset of element `i`.
#[inline]
pub const fn locate(i: usize) -> (usize, u32) {
    (i / BITS_PER_WORD, (i % BITS_PER_WORD) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(63), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn tail_mask_boundaries() {
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(2), 0b11);
        assert_eq!(tail_mask(63), u64::MAX >> 1);
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(65), 1);
    }

    #[test]
    fn locate_examples() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(130), (2, 2));
    }
}
