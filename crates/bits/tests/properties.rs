//! Property-based tests for the packed bit substrate.

use proptest::prelude::*;
use univsa_bits::{BitMatrix, BitVec, Bundler};

fn arb_bipolar(dim: usize) -> impl Strategy<Value = Vec<i8>> {
    proptest::collection::vec(prop_oneof![Just(-1i8), Just(1i8)], dim)
}

fn arb_pair() -> impl Strategy<Value = (Vec<i8>, Vec<i8>)> {
    (1usize..300).prop_flat_map(|d| (arb_bipolar(d), arb_bipolar(d)))
}

proptest! {
    #[test]
    fn bipolar_roundtrip(vals in (0usize..300).prop_flat_map(arb_bipolar)) {
        let v = BitVec::from_bipolar(&vals).unwrap();
        prop_assert_eq!(v.to_bipolar(), vals);
    }

    #[test]
    fn dot_matches_naive((a, b) in arb_pair()) {
        let va = BitVec::from_bipolar(&a).unwrap();
        let vb = BitVec::from_bipolar(&b).unwrap();
        let naive: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
        prop_assert_eq!(va.dot(&vb).unwrap(), naive);
    }

    #[test]
    fn hamming_symmetry_and_bounds((a, b) in arb_pair()) {
        let va = BitVec::from_bipolar(&a).unwrap();
        let vb = BitVec::from_bipolar(&b).unwrap();
        let h1 = va.hamming(&vb).unwrap();
        let h2 = vb.hamming(&va).unwrap();
        prop_assert_eq!(h1, h2);
        prop_assert!(h1 as usize <= a.len());
    }

    #[test]
    fn xnor_is_elementwise_product((a, b) in arb_pair()) {
        let va = BitVec::from_bipolar(&a).unwrap();
        let vb = BitVec::from_bipolar(&b).unwrap();
        let prod: Vec<i8> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        prop_assert_eq!(va.xnor(&vb).unwrap().to_bipolar(), prod);
    }

    #[test]
    fn xnor_self_is_ones(a in (1usize..300).prop_flat_map(arb_bipolar)) {
        let v = BitVec::from_bipolar(&a).unwrap();
        let s = v.xnor(&v).unwrap();
        prop_assert_eq!(s.count_ones() as usize, a.len());
    }

    #[test]
    fn double_negation_is_identity(a in (1usize..300).prop_flat_map(arb_bipolar)) {
        let v = BitVec::from_bipolar(&a).unwrap();
        prop_assert_eq!(v.not().not(), v);
    }

    #[test]
    fn xor_xnor_complementary((a, b) in arb_pair()) {
        let va = BitVec::from_bipolar(&a).unwrap();
        let vb = BitVec::from_bipolar(&b).unwrap();
        let x1 = va.xor(&vb).unwrap();
        let x2 = va.xnor(&vb).unwrap().not();
        prop_assert_eq!(x1, x2);
    }

    #[test]
    fn bundler_matches_naive_majority(
        rows in (1usize..120, 1usize..9).prop_flat_map(|(d, n)| {
            proptest::collection::vec(arb_bipolar(d), n)
        })
    ) {
        let dim = rows[0].len();
        let mut bundler = Bundler::new(dim);
        for r in &rows {
            bundler.add(&BitVec::from_bipolar(r).unwrap()).unwrap();
        }
        let s = bundler.finish();
        for i in 0..dim {
            let sum: i32 = rows.iter().map(|r| r[i] as i32).sum();
            let expect = sum >= 0; // sgn(0) = +1
            prop_assert_eq!(s.get(i), Some(expect));
        }
    }

    #[test]
    fn nearest_row_dot_is_maximal(
        (rows, q) in (1usize..100, 1usize..8).prop_flat_map(|(d, n)| {
            (proptest::collection::vec(arb_bipolar(d), n), arb_bipolar(d))
        })
    ) {
        let m = BitMatrix::from_rows(
            rows.iter().map(|r| BitVec::from_bipolar(r).unwrap()).collect(),
        ).unwrap();
        let query = BitVec::from_bipolar(&q).unwrap();
        let best = m.nearest(&query).unwrap();
        let dots = m.dots(&query).unwrap();
        for d in &dots {
            prop_assert!(dots[best] >= *d);
        }
    }

    #[test]
    fn display_parse_roundtrip(a in (0usize..200).prop_flat_map(arb_bipolar)) {
        let v = BitVec::from_bipolar(&a).unwrap();
        let parsed: BitVec = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }
}
