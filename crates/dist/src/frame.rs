//! Length-prefixed, CRC32-framed byte transport.
//!
//! Every message crossing a worker pipe travels inside one frame:
//!
//! ```text
//! frame := len: u32 LE | crc: u32 LE | payload (len bytes)
//! ```
//!
//! where `crc` is [`univsa::crc32`] over the payload — the same IEEE
//! polynomial the model-integrity layer uses for weight memories. The
//! codec never panics on wire input: oversized lengths, truncated
//! payloads, and checksum mismatches all surface as
//! [`UniVsaError::Ipc`], and a clean EOF at a frame boundary is
//! distinguished from mid-frame truncation so the supervisor can tell a
//! graceful worker exit from a crash.

use std::io::{Read, Write};

use univsa::UniVsaError;

/// Hard ceiling on a frame payload (16 MiB). A corrupt length prefix
/// must not trigger a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 1 << 24;

/// Bytes of framing overhead per message (length + checksum prefixes).
pub const HEADER_LEN: usize = 8;

/// Outcome of [`read_frame`]: a payload, or a clean end-of-stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete, checksum-verified payload.
    Payload(Vec<u8>),
    /// The stream ended exactly on a frame boundary (peer closed its
    /// pipe after the last complete frame).
    Eof,
}

/// Writes one frame (header + payload) to `w` and flushes.
///
/// # Errors
///
/// [`UniVsaError::Ipc`] if the payload exceeds [`MAX_FRAME`];
/// [`UniVsaError::Io`] if the underlying write fails (typically a
/// closed pipe when the peer died).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), UniVsaError> {
    if payload.len() > MAX_FRAME {
        return Err(UniVsaError::Ipc(format!(
            "outgoing frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
            payload.len()
        )));
    }
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&univsa::crc32(payload).to_le_bytes());
    let io = |e: std::io::Error| UniVsaError::Io(format!("cannot write frame: {e}"));
    w.write_all(&header).map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.flush().map_err(io)
}

/// Writes a frame whose checksum deliberately does not match the
/// payload (one CRC byte flipped). Only the chaos harness calls this —
/// it exercises the receiver's corruption path end-to-end.
pub fn write_corrupt_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), UniVsaError> {
    if payload.len() > MAX_FRAME {
        return Err(UniVsaError::Ipc(format!(
            "outgoing frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
            payload.len()
        )));
    }
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&univsa::crc32(payload).to_le_bytes());
    header[4] ^= 0x01;
    let io = |e: std::io::Error| UniVsaError::Io(format!("cannot write frame: {e}"));
    w.write_all(&header).map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.flush().map_err(io)
}

/// Reads one frame from `r`, verifying length and checksum.
///
/// Returns [`Frame::Eof`] when the stream is already exhausted (clean
/// shutdown).
///
/// # Errors
///
/// [`UniVsaError::Ipc`] on a truncated header or payload, an oversized
/// length prefix, or a CRC mismatch; [`UniVsaError::Io`] if the read
/// itself fails.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, UniVsaError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(Frame::Eof),
        ReadOutcome::Short(got) => {
            return Err(UniVsaError::Ipc(format!(
                "truncated frame header: got {got} of {HEADER_LEN} bytes"
            )))
        }
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4-byte slice")) as usize;
    let want_crc = u32::from_le_bytes(header[4..].try_into().expect("4-byte slice"));
    if len > MAX_FRAME {
        return Err(UniVsaError::Ipc(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        ReadOutcome::Full => {}
        ReadOutcome::Eof | ReadOutcome::Short(_) => {
            return Err(UniVsaError::Ipc(format!(
                "truncated frame payload: expected {len} bytes"
            )))
        }
    }
    let got_crc = univsa::crc32(&payload);
    if got_crc != want_crc {
        return Err(UniVsaError::Ipc(format!(
            "frame checksum mismatch: header says {want_crc:#010x}, payload hashes to {got_crc:#010x}"
        )));
    }
    Ok(Frame::Payload(payload))
}

enum ReadOutcome {
    /// The buffer was filled completely.
    Full,
    /// Zero bytes were available (stream already at EOF).
    Eof,
    /// The stream ended partway through the buffer.
    Short(usize),
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, UniVsaError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Short(filled)
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(UniVsaError::Io(format!("cannot read frame: {e}"))),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(payload: &[u8]) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        read_frame(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        assert_eq!(round_trip(b""), Frame::Payload(Vec::new()));
        assert_eq!(round_trip(b"hello"), Frame::Payload(b"hello".to_vec()));
        let big = vec![0xAB; 100_000];
        assert_eq!(round_trip(&big), Frame::Payload(big.clone()));
    }

    #[test]
    fn multiple_frames_then_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Frame::Payload(b"one".to_vec())
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Frame::Payload(b"two".to_vec())
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), Frame::Eof);
    }

    #[test]
    fn corrupt_crc_is_a_typed_error() {
        let mut buf = Vec::new();
        write_corrupt_frame(&mut buf, b"payload").unwrap();
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, UniVsaError::Ipc(_)), "got {err:?}");
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn flipped_payload_byte_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn truncated_header_and_payload_are_typed_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert!(matches!(err, UniVsaError::Ipc(_)), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "got {err}");
    }

    #[test]
    fn oversized_outgoing_payload_is_rejected() {
        let big = vec![0u8; MAX_FRAME + 1];
        let err = write_frame(&mut Vec::new(), &big).unwrap_err();
        assert!(matches!(err, UniVsaError::Ipc(_)));
    }
}
