//! Job payloads and the handler registry.
//!
//! Closures cannot cross a process boundary, so distributable work is
//! expressed as `(kind, payload bytes) → result bytes` pairs: the
//! supervisor ships opaque payloads, and both sides agree on the named
//! handlers registered here. Handlers must be **pure functions of their
//! payload** — that is the whole determinism argument: any schedule, any
//! worker count, any crash/retry history produces the same result bytes
//! for the same payload.

use std::collections::HashMap;
use std::sync::Mutex;

use univsa::{
    similarity_margin, PackedModel, TrainOptions, UniVsaConfig, UniVsaError, UniVsaTrainer,
};
use univsa_data::DriftSpec;
use univsa_hw::{HwConfig, Pipeline, Protection, SeuCampaign, SeuOutcome};
use univsa_search::{AccuracyHardwareObjective, Genome};

/// Job kind for one genome fitness evaluation (see [`FitnessJob`]).
pub const FITNESS_KIND: &str = "search.fitness";
/// Job kind for a training-free surrogate fitness evaluation: the same
/// [`FitnessJob`] payload scored by [`probe_fitness`]. Exists so fleet
/// determinism can be exercised cheaply (debug-mode tests, the CI chaos
/// matrix) without paying for real training runs.
pub const PROBE_KIND: &str = "search.probe";
/// Job kind for one SEU campaign trial (see [`SeuTrialJob`]).
pub const SEU_TRIAL_KIND: &str = "seu.trial";
/// Job kind for one prediction-quality stream shard (see [`QualityJob`]).
pub const QUALITY_KIND: &str = "quality.eval";
/// Diagnostic job: echoes its payload back.
pub const ECHO_KIND: &str = "dist.echo";
/// Diagnostic job: fails with its payload as the error message.
pub const FAIL_KIND: &str = "dist.fail";

type Handler = Box<dyn Fn(&[u8]) -> Result<Vec<u8>, String> + Send + Sync>;

/// Named byte-level job handlers, shared by worker processes and the
/// in-process fallback path.
#[derive(Default)]
pub struct JobRegistry {
    handlers: HashMap<&'static str, Handler>,
}

impl JobRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a handler under `kind` (replacing any previous one).
    ///
    /// The handler must be a pure function of the payload; anything else
    /// breaks the fleet's bit-identical-results contract.
    pub fn register(
        &mut self,
        kind: &'static str,
        handler: impl Fn(&[u8]) -> Result<Vec<u8>, String> + Send + Sync + 'static,
    ) {
        self.handlers.insert(kind, Box::new(handler));
    }

    /// Runs the handler registered under `kind`.
    ///
    /// # Errors
    ///
    /// The handler's own error, or a synthesized one for an unknown kind
    /// (both travel back as a `TaskErr` and abort the batch).
    pub fn run(&self, kind: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match self.handlers.get(kind) {
            Some(handler) => handler(payload),
            None => Err(format!("no job handler registered for kind \"{kind}\"")),
        }
    }
}

/// The registry every `univsa` process agrees on: real workloads
/// ([`FITNESS_KIND`], [`SEU_TRIAL_KIND`]) plus the cheap diagnostic jobs
/// the fleet tests exercise.
pub fn standard_registry() -> JobRegistry {
    let mut registry = JobRegistry::new();
    registry.register(ECHO_KIND, |payload| Ok(payload.to_vec()));
    registry.register(FAIL_KIND, |payload| {
        Err(String::from_utf8_lossy(payload).into_owned())
    });

    // The objective is rebuilt from (task, seeds, epochs) and cached so a
    // worker regenerates its datasets once, not once per genome.
    let cache: Mutex<HashMap<(String, u64, u64, usize), AccuracyHardwareObjective>> =
        Mutex::new(HashMap::new());
    registry.register(FITNESS_KIND, move |payload| {
        let job = FitnessJob::decode(payload).map_err(|e| e.to_string())?;
        let key = (job.task.clone(), job.data_seed, job.train_seed, job.epochs);
        let objective = {
            let mut cache = cache.lock().expect("fitness cache lock");
            if !cache.contains_key(&key) {
                let task = univsa_data::tasks::by_name(&job.task, job.data_seed)
                    .ok_or_else(|| format!("unknown task \"{}\"", job.task))?;
                let options = TrainOptions {
                    epochs: job.epochs,
                    ..TrainOptions::default()
                };
                cache.insert(
                    key.clone(),
                    AccuracyHardwareObjective::new(task.train, task.test, options, job.train_seed),
                );
            }
            cache[&key].clone()
        };
        Ok(objective.evaluate(&job.genome).to_le_bytes().to_vec())
    });

    registry.register(PROBE_KIND, |payload| {
        let job = FitnessJob::decode(payload).map_err(|e| e.to_string())?;
        Ok(probe_fitness(&job).to_le_bytes().to_vec())
    });

    // The paper-configured model is rebuilt from (task, seed, epochs) and
    // cached so a worker trains once per stream, not once per shard.
    let quality_cache: Mutex<HashMap<(String, u64, usize), PackedModel>> =
        Mutex::new(HashMap::new());
    registry.register(QUALITY_KIND, move |payload| {
        let job = QualityJob::decode(payload).map_err(|e| e.to_string())?;
        if job.start + job.len > job.total {
            return Err(format!(
                "quality shard [{}, {}) exceeds stream length {}",
                job.start,
                job.start + job.len,
                job.total
            ));
        }
        let key = (job.task.clone(), job.seed, job.epochs);
        let packed = {
            let mut cache = quality_cache.lock().expect("quality cache lock");
            if !cache.contains_key(&key) {
                let task = univsa_data::tasks::by_name(&job.task, job.seed)
                    .ok_or_else(|| format!("unknown task \"{}\"", job.task))?;
                let (d_h, d_l, d_k, o, theta) =
                    univsa_data::tasks::paper_config_tuple(&task.spec.name)
                        .ok_or_else(|| format!("no paper configuration for \"{}\"", job.task))?;
                let cfg = UniVsaConfig::for_task(&task.spec)
                    .d_h(d_h)
                    .d_l(d_l)
                    .d_k(d_k)
                    .out_channels(o)
                    .voters(theta)
                    .build()
                    .map_err(|e| e.to_string())?;
                let options = TrainOptions {
                    epochs: job.epochs,
                    ..TrainOptions::default()
                };
                let outcome = UniVsaTrainer::new(cfg, options)
                    .fit(&task.train, job.seed)
                    .map_err(|e| e.to_string())?;
                cache.insert(key.clone(), PackedModel::compile(&outcome.model));
            }
            cache[&key].clone()
        };
        let stream = univsa_data::tasks::drift_stream(&job.task, job.seed, job.total, job.drift)
            .ok_or_else(|| format!("unknown task \"{}\"", job.task))?;
        let mut rows = Vec::with_capacity(job.len);
        for sample in &stream[job.start..job.start + job.len] {
            let detail = packed.infer_detailed(&sample.values).map_err(|e| e.to_string())?;
            rows.push((
                sample.label as u32,
                detail.label as u32,
                similarity_margin(&detail.totals),
            ));
        }
        Ok(encode_quality_results(&rows))
    });

    registry.register(SEU_TRIAL_KIND, |payload| {
        let job = SeuTrialJob::decode(payload).map_err(|e| e.to_string())?;
        let config = job.genome.to_config(&job.spec).map_err(|e| e.to_string())?;
        let pipeline = Pipeline::new(HwConfig::new(&config).with_protection(job.protection));
        let outcome = SeuCampaign::new(job.rate, job.seed).run(&pipeline, job.samples);
        Ok(encode_seu_outcome(&outcome))
    });

    registry
}

/// One genome evaluation of the paper's `Acc − L_HW` search objective.
/// The worker regenerates the task's synthetic splits from
/// `(task, data_seed)`, so the payload stays a few dozen bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitnessJob {
    /// Task name resolvable by `univsa_data::tasks::by_name`.
    pub task: String,
    /// Seed the task's synthetic splits are generated from.
    pub data_seed: u64,
    /// Seed for the candidate's training run.
    pub train_seed: u64,
    /// Training epochs per evaluation.
    pub epochs: usize,
    /// The candidate configuration.
    pub genome: Genome,
}

impl FitnessJob {
    /// Serializes the job into a payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.task);
        out.extend_from_slice(&self.data_seed.to_le_bytes());
        out.extend_from_slice(&self.train_seed.to_le_bytes());
        out.extend_from_slice(&(self.epochs as u32).to_le_bytes());
        put_genome(&mut out, &self.genome);
        out
    }

    /// Inverse of [`FitnessJob::encode`].
    ///
    /// # Errors
    ///
    /// [`UniVsaError::Ipc`] on truncated or malformed payloads.
    pub fn decode(bytes: &[u8]) -> Result<Self, UniVsaError> {
        let mut r = Cursor::new(bytes);
        let job = Self {
            task: r.string("task name")?,
            data_seed: r.u64()?,
            train_seed: r.u64()?,
            epochs: r.u32()? as usize,
            genome: r.genome()?,
        };
        r.finish()?;
        Ok(job)
    }
}

/// One shard of a prediction-quality stream evaluation. The worker
/// retrains the task's paper-configured model from `(task, seed, epochs)`
/// and regenerates the full drift stream, then evaluates only its
/// `[start, start + len)` slice — so shards from any worker mix
/// concatenate into exactly the sequential evaluation of the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityJob {
    /// Task name resolvable by `univsa_data::tasks::by_name`.
    pub task: String,
    /// Seed for the task's data, the training run, and the stream.
    pub seed: u64,
    /// Training epochs for the evaluated model.
    pub epochs: usize,
    /// Total stream length (every shard must agree on it).
    pub total: usize,
    /// Optional drift injection applied to the stream tail.
    pub drift: Option<DriftSpec>,
    /// First stream index this shard evaluates.
    pub start: usize,
    /// Number of samples this shard evaluates.
    pub len: usize,
}

impl QualityJob {
    /// Serializes the job into a payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.task);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.epochs as u32).to_le_bytes());
        out.extend_from_slice(&(self.total as u32).to_le_bytes());
        match self.drift {
            Some(d) => {
                out.push(1);
                out.extend_from_slice(&(d.at as u32).to_le_bytes());
                out.extend_from_slice(&d.strength.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.start as u32).to_le_bytes());
        out.extend_from_slice(&(self.len as u32).to_le_bytes());
        out
    }

    /// Inverse of [`QualityJob::encode`].
    ///
    /// # Errors
    ///
    /// [`UniVsaError::Ipc`] on truncated or malformed payloads.
    pub fn decode(bytes: &[u8]) -> Result<Self, UniVsaError> {
        let mut r = Cursor::new(bytes);
        let task = r.string("task name")?;
        let seed = r.u64()?;
        let epochs = r.u32()? as usize;
        let total = r.u32()? as usize;
        let drift = match r.u8()? {
            0 => None,
            1 => Some(DriftSpec {
                at: r.u32()? as usize,
                strength: f32::from_le_bytes(r.array()?),
            }),
            flag => {
                return Err(UniVsaError::Ipc(format!("invalid drift flag {flag}")));
            }
        };
        let job = Self {
            task,
            seed,
            epochs,
            total,
            drift,
            start: r.u32()? as usize,
            len: r.u32()? as usize,
        };
        r.finish()?;
        Ok(job)
    }
}

/// Serializes [`QUALITY_KIND`] result rows: per evaluated sample, the
/// `(truth, predicted, margin)` triple as fixed-width little-endian
/// `(u32, u32, u64)`.
pub fn encode_quality_results(rows: &[(u32, u32, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(rows.len() * 16);
    for (truth, predicted, margin) in rows {
        out.extend_from_slice(&truth.to_le_bytes());
        out.extend_from_slice(&predicted.to_le_bytes());
        out.extend_from_slice(&margin.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_quality_results`].
///
/// # Errors
///
/// [`UniVsaError::Ipc`] unless the payload is a whole number of 16-byte
/// rows.
pub fn decode_quality_results(bytes: &[u8]) -> Result<Vec<(u32, u32, u64)>, UniVsaError> {
    if bytes.len() % 16 != 0 {
        return Err(UniVsaError::Ipc(format!(
            "quality result has {} bytes, expected a multiple of 16",
            bytes.len()
        )));
    }
    let mut r = Cursor::new(bytes);
    let mut rows = Vec::with_capacity(bytes.len() / 16);
    for _ in 0..bytes.len() / 16 {
        rows.push((r.u32()?, r.u32()?, r.u64()?));
    }
    Ok(rows)
}

/// One trial of a seeded SEU campaign over a configuration's pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SeuTrialJob {
    /// Geometry the configuration is built for.
    pub spec: univsa_data::TaskSpec,
    /// The configuration under irradiation.
    pub genome: Genome,
    /// Memory protection scheme.
    pub protection: Protection,
    /// Upset probability per stored bit per cycle.
    pub rate: f64,
    /// This trial's campaign seed (the sweep uses `base + trial`).
    pub seed: u64,
    /// Streamed batch size defining the exposure window.
    pub samples: usize,
}

impl SeuTrialJob {
    /// Serializes the job into a payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.spec.name);
        for dim in [
            self.spec.width,
            self.spec.length,
            self.spec.classes,
            self.spec.levels,
        ] {
            out.extend_from_slice(&(dim as u32).to_le_bytes());
        }
        put_genome(&mut out, &self.genome);
        out.push(self.protection.tag());
        out.extend_from_slice(&self.rate.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.samples as u32).to_le_bytes());
        out
    }

    /// Inverse of [`SeuTrialJob::encode`].
    ///
    /// # Errors
    ///
    /// [`UniVsaError::Ipc`] on truncated or malformed payloads.
    pub fn decode(bytes: &[u8]) -> Result<Self, UniVsaError> {
        let mut r = Cursor::new(bytes);
        let name = r.string("task name")?;
        let spec = univsa_data::TaskSpec {
            name,
            width: r.u32()? as usize,
            length: r.u32()? as usize,
            classes: r.u32()? as usize,
            levels: r.u32()? as usize,
        };
        let genome = r.genome()?;
        let tag = r.u8()?;
        let protection = Protection::from_tag(tag)
            .ok_or_else(|| UniVsaError::Ipc(format!("unknown protection tag {tag}")))?;
        let job = Self {
            spec,
            genome,
            protection,
            rate: f64::from_le_bytes(r.array()?),
            seed: r.u64()?,
            samples: r.u32()? as usize,
        };
        r.finish()?;
        Ok(job)
    }
}

/// The [`PROBE_KIND`] surrogate objective: a pure hash of the job's
/// fields mapped into `[0, 1)`. Worthless as a search signal, but it has
/// exactly the property the fleet's determinism gate needs — the same
/// payload always scores the same, on any process, at zero cost.
pub fn probe_fitness(job: &FitnessJob) -> f64 {
    let mut h = univsa::crc32(job.task.as_bytes()) as u64;
    h ^= job.data_seed.rotate_left(17) ^ job.train_seed.rotate_left(31);
    h ^= (job.epochs as u64).rotate_left(47);
    for v in [
        job.genome.d_h,
        job.genome.d_l,
        job.genome.d_k,
        job.genome.out_channels,
        job.genome.voters,
    ] {
        h = splitmix(h ^ v as u64);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Decodes a [`FITNESS_KIND`] result payload (little-endian `f64` bits,
/// so NaN payloads and `−∞` survive the round trip exactly).
///
/// # Errors
///
/// [`UniVsaError::Ipc`] unless the payload is exactly 8 bytes.
pub fn decode_fitness(bytes: &[u8]) -> Result<f64, UniVsaError> {
    let arr: [u8; 8] = bytes.try_into().map_err(|_| {
        UniVsaError::Ipc(format!(
            "fitness result has {} bytes, expected 8",
            bytes.len()
        ))
    })?;
    Ok(f64::from_le_bytes(arr))
}

/// Serializes a [`SeuOutcome`] as a [`SEU_TRIAL_KIND`] result payload.
pub fn encode_seu_outcome(outcome: &SeuOutcome) -> Vec<u8> {
    let mut out = vec![outcome.protection.tag()];
    for v in [
        outcome.cycles,
        outcome.stored_bits,
        outcome.upsets,
        outcome.detected,
        outcome.corrected,
        outcome.silent,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_seu_outcome`].
///
/// # Errors
///
/// [`UniVsaError::Ipc`] on truncated payloads or unknown protection tags.
pub fn decode_seu_outcome(bytes: &[u8]) -> Result<SeuOutcome, UniVsaError> {
    let mut r = Cursor::new(bytes);
    let tag = r.u8()?;
    let protection = Protection::from_tag(tag)
        .ok_or_else(|| UniVsaError::Ipc(format!("unknown protection tag {tag}")))?;
    let outcome = SeuOutcome {
        protection,
        cycles: r.u64()?,
        stored_bits: r.u64()?,
        upsets: r.u64()?,
        detected: r.u64()?,
        corrected: r.u64()?,
        silent: r.u64()?,
    };
    r.finish()?;
    Ok(outcome)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_genome(out: &mut Vec<u8>, g: &Genome) {
    for dim in [g.d_h, g.d_l, g.d_k, g.out_channels, g.voters] {
        out.extend_from_slice(&(dim as u32).to_le_bytes());
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], UniVsaError> {
        if self.bytes.len() - self.pos < n {
            return Err(UniVsaError::Ipc(format!(
                "job payload truncated: needed {n} bytes at offset {}",
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], UniVsaError> {
        Ok(self.take(N)?.try_into().expect("sized take"))
    }

    fn u8(&mut self) -> Result<u8, UniVsaError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, UniVsaError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, UniVsaError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn string(&mut self, what: &str) -> Result<String, UniVsaError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| UniVsaError::Ipc(format!("{what} field is not valid UTF-8")))
    }

    fn genome(&mut self) -> Result<Genome, UniVsaError> {
        Ok(Genome {
            d_h: self.u32()? as usize,
            d_l: self.u32()? as usize,
            d_k: self.u32()? as usize,
            out_channels: self.u32()? as usize,
            voters: self.u32()? as usize,
        })
    }

    fn finish(&self) -> Result<(), UniVsaError> {
        if self.pos != self.bytes.len() {
            return Err(UniVsaError::Ipc(format!(
                "{} trailing bytes after job payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome() -> Genome {
        Genome {
            d_h: 8,
            d_l: 2,
            d_k: 3,
            out_channels: 16,
            voters: 3,
        }
    }

    #[test]
    fn fitness_job_round_trips() {
        let job = FitnessJob {
            task: "BCI3V".into(),
            data_seed: 7,
            train_seed: 42,
            epochs: 3,
            genome: genome(),
        };
        assert_eq!(FitnessJob::decode(&job.encode()).unwrap(), job);
    }

    #[test]
    fn seu_trial_job_round_trips() {
        for protection in Protection::ALL {
            let job = SeuTrialJob {
                spec: univsa_data::TaskSpec {
                    name: "BCI3V".into(),
                    width: 16,
                    length: 6,
                    classes: 3,
                    levels: 256,
                },
                genome: genome(),
                protection,
                rate: 1e-9,
                seed: 11,
                samples: 32,
            };
            assert_eq!(SeuTrialJob::decode(&job.encode()).unwrap(), job);
        }
    }

    #[test]
    fn truncated_job_payloads_are_typed_errors() {
        let full = FitnessJob {
            task: "BCI3V".into(),
            data_seed: 1,
            train_seed: 2,
            epochs: 3,
            genome: genome(),
        }
        .encode();
        for cut in 0..full.len() {
            assert!(matches!(
                FitnessJob::decode(&full[..cut]).unwrap_err(),
                UniVsaError::Ipc(_)
            ));
        }
        let mut extended = full;
        extended.push(0);
        assert!(FitnessJob::decode(&extended).is_err());
    }

    #[test]
    fn fitness_result_preserves_every_f64_bit_pattern() {
        for value in [0.0, -0.75, f64::NEG_INFINITY, f64::MAX, f64::NAN] {
            let decoded = decode_fitness(&value.to_le_bytes()).unwrap();
            assert_eq!(decoded.to_bits(), value.to_bits());
        }
        assert!(decode_fitness(&[0; 7]).is_err());
    }

    #[test]
    fn seu_outcome_round_trips() {
        let outcome = SeuOutcome {
            protection: Protection::Tmr,
            cycles: 123_456,
            stored_bits: 98_304,
            upsets: 17,
            detected: 0,
            corrected: 15,
            silent: 2,
        };
        assert_eq!(
            decode_seu_outcome(&encode_seu_outcome(&outcome)).unwrap(),
            outcome
        );
        assert!(decode_seu_outcome(&[9]).is_err());
    }

    #[test]
    fn registry_runs_diagnostic_jobs() {
        let registry = standard_registry();
        assert_eq!(registry.run(ECHO_KIND, b"abc").unwrap(), b"abc");
        assert_eq!(
            registry.run(FAIL_KIND, b"boom").unwrap_err(),
            "boom".to_string()
        );
        let err = registry.run("no.such.kind", b"").unwrap_err();
        assert!(err.contains("no job handler"));
    }

    #[test]
    fn registry_evaluates_seu_trial() {
        let registry = standard_registry();
        let job = SeuTrialJob {
            spec: univsa_data::TaskSpec {
                name: "BCI3V".into(),
                width: 16,
                length: 6,
                classes: 3,
                levels: 256,
            },
            genome: genome(),
            protection: Protection::ParityDetect,
            rate: 1e-9,
            seed: 11,
            samples: 8,
        };
        let bytes = registry.run(SEU_TRIAL_KIND, &job.encode()).unwrap();
        let outcome = decode_seu_outcome(&bytes).unwrap();
        assert_eq!(outcome.protection, Protection::ParityDetect);
        assert_eq!(
            outcome.detected + outcome.corrected + outcome.silent,
            outcome.upsets
        );
    }

    #[test]
    fn probe_fitness_is_deterministic_and_sensitive() {
        let registry = standard_registry();
        let job = FitnessJob {
            task: "BCI3V".into(),
            data_seed: 1,
            train_seed: 2,
            epochs: 3,
            genome: genome(),
        };
        let a = registry.run(PROBE_KIND, &job.encode()).unwrap();
        assert_eq!(a, registry.run(PROBE_KIND, &job.encode()).unwrap());
        let score = decode_fitness(&a).unwrap();
        assert!((0.0..1.0).contains(&score));
        let mut other = job.clone();
        other.genome.d_h = 16;
        assert_ne!(registry.run(PROBE_KIND, &other.encode()).unwrap(), a);
    }

    #[test]
    fn registry_rejects_malformed_payloads_without_panicking() {
        let registry = standard_registry();
        for kind in [FITNESS_KIND, SEU_TRIAL_KIND, QUALITY_KIND] {
            assert!(registry.run(kind, b"junk").is_err());
        }
    }

    #[test]
    fn quality_job_round_trips_with_and_without_drift() {
        let mut job = QualityJob {
            task: "BCI3V".into(),
            seed: 7,
            epochs: 2,
            total: 256,
            drift: None,
            start: 64,
            len: 64,
        };
        assert_eq!(QualityJob::decode(&job.encode()).unwrap(), job);
        job.drift = Some(DriftSpec {
            at: 128,
            strength: 0.35,
        });
        assert_eq!(QualityJob::decode(&job.encode()).unwrap(), job);

        let full = job.encode();
        for cut in 0..full.len() {
            assert!(matches!(
                QualityJob::decode(&full[..cut]).unwrap_err(),
                UniVsaError::Ipc(_)
            ));
        }
        let mut bad_flag = job.encode();
        let flag_pos = 4 + 5 + 8 + 4 + 4;
        assert_eq!(bad_flag[flag_pos], 1);
        bad_flag[flag_pos] = 9;
        assert!(matches!(
            QualityJob::decode(&bad_flag).unwrap_err(),
            UniVsaError::Ipc(m) if m.contains("drift flag")
        ));
    }

    #[test]
    fn quality_results_round_trip_and_reject_ragged_payloads() {
        let rows = vec![(0, 1, 42u64), (2, 2, 0), (1, 0, u64::MAX)];
        let bytes = encode_quality_results(&rows);
        assert_eq!(decode_quality_results(&bytes).unwrap(), rows);
        assert!(decode_quality_results(&bytes[..17]).is_err());
        assert_eq!(decode_quality_results(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn quality_handler_rejects_out_of_range_shards() {
        let registry = standard_registry();
        let job = QualityJob {
            task: "BCI3V".into(),
            seed: 1,
            epochs: 1,
            total: 16,
            drift: None,
            start: 8,
            len: 9,
        };
        let err = registry.run(QUALITY_KIND, &job.encode()).unwrap_err();
        assert!(err.contains("exceeds stream length"), "{err}");
    }
}
