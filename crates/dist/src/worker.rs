//! The worker side of the fleet: a frame-pump over stdin/stdout.
//!
//! A worker is the same `univsa` binary re-executed with
//! [`WORKER_ENV_VAR`] set; the CLI checks that before argument parsing
//! and hands control to [`worker_main`]. The loop reads framed
//! [`Message`]s from stdin, runs [`Message::Task`]s through the shared
//! [`JobRegistry`](crate::JobRegistry), and writes the replies to
//! stdout. Anything nondeterministic (logging, panics) goes to stderr —
//! stdout carries only frames.
//!
//! Fault injection lives here too: when [`univsa::CHAOS_ENV_VAR`] is
//! set, the worker consults the parsed [`ChaosSpec`] before and after
//! each task and may crash, hang, corrupt its reply frame, or delay its
//! startup handshake. The decisions are pure functions of
//! `(seed, task, attempt)`, so a chaos run is exactly reproducible.

use std::io::{Read, Write};
use std::time::Duration;

use univsa::{ChaosSpec, UniVsaError};

use crate::frame::{read_frame, write_corrupt_frame, write_frame, Frame};
use crate::proto::Message;
use crate::JobRegistry;

/// Set (to any value) in a spawned worker's environment; the CLI enters
/// [`worker_main`] instead of parsing arguments when it sees this.
pub const WORKER_ENV_VAR: &str = "UNIVSA_WORKER_JOBS";
/// The worker's slot index in the fleet (feeds slow-start decisions).
pub const SLOT_ENV_VAR: &str = "UNIVSA_WORKER_SLOT";
/// The slot's respawn generation (0 for the first process in a slot).
pub const GEN_ENV_VAR: &str = "UNIVSA_WORKER_GEN";

/// Process exit code for a chaos-injected crash (distinct from the
/// panic runtime's 101 so logs can tell them apart).
pub const CHAOS_CRASH_EXIT: i32 = 86;

/// Whether this process was spawned as a fleet worker.
pub fn worker_env_requested() -> bool {
    std::env::var_os(WORKER_ENV_VAR).is_some()
}

/// Runs the worker loop over this process's stdin/stdout until the
/// supervisor sends [`Message::Shutdown`] or closes the pipe.
///
/// # Errors
///
/// [`UniVsaError::Ipc`] on a malformed inbound frame or an unexpected
/// message, [`UniVsaError::Io`] when a pipe breaks mid-write, and
/// [`UniVsaError::Config`] for an unparsable [`univsa::CHAOS_ENV_VAR`].
/// Handler-level failures are **not** errors here — they travel back as
/// [`Message::TaskErr`] and the loop keeps serving.
pub fn worker_main(registry: &JobRegistry) -> Result<(), UniVsaError> {
    let chaos = match std::env::var(univsa::CHAOS_ENV_VAR) {
        Ok(spec) => ChaosSpec::parse(&spec)?,
        Err(_) => ChaosSpec::default(),
    };
    let slot = env_u64(SLOT_ENV_VAR);
    let generation = env_u64(GEN_ENV_VAR);
    if let Some(delay) = chaos.slow_start_delay(slot, generation) {
        std::thread::sleep(delay);
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve(&mut stdin.lock(), &mut stdout.lock(), registry, &chaos)
}

/// The transport-agnostic worker loop ([`worker_main`] binds it to the
/// process's stdio; tests drive it over in-memory pipes).
pub fn serve(
    input: &mut impl Read,
    output: &mut impl Write,
    registry: &JobRegistry,
    chaos: &ChaosSpec,
) -> Result<(), UniVsaError> {
    loop {
        let payload = match read_frame(input)? {
            Frame::Eof => return Ok(()),
            Frame::Payload(payload) => payload,
        };
        match Message::decode(&payload)? {
            Message::Ping { nonce } => {
                write_frame(output, &Message::Pong { nonce }.encode())?;
            }
            Message::Shutdown => return Ok(()),
            Message::Task {
                id,
                attempt,
                kind,
                payload,
            } => {
                if chaos.crash_task(id, u64::from(attempt)) {
                    std::process::exit(CHAOS_CRASH_EXIT);
                }
                if chaos.hang_task(id, u64::from(attempt)) {
                    // simulate a wedged worker: never reply, never exit —
                    // the supervisor's deadline has to reap this process
                    loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                }
                let reply = match registry.run(&kind, &payload) {
                    Ok(result) => Message::TaskOk {
                        id,
                        payload: result,
                    },
                    Err(message) => Message::TaskErr { id, message },
                };
                if chaos.corrupt_result(id, u64::from(attempt)) {
                    write_corrupt_frame(output, &reply.encode())?;
                } else {
                    write_frame(output, &reply.encode())?;
                }
            }
            unexpected @ (Message::Pong { .. }
            | Message::TaskOk { .. }
            | Message::TaskErr { .. }) => {
                return Err(UniVsaError::Ipc(format!(
                    "worker received a worker-to-supervisor message: {unexpected:?}"
                )));
            }
        }
    }
}

fn env_u64(var: &str) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{standard_registry, ECHO_KIND, FAIL_KIND};
    use std::io::Cursor;

    fn frames(messages: &[Message]) -> Vec<u8> {
        let mut buf = Vec::new();
        for m in messages {
            write_frame(&mut buf, &m.encode()).unwrap();
        }
        buf
    }

    fn replies(output: &[u8]) -> Vec<Message> {
        let mut cursor = Cursor::new(output);
        let mut out = Vec::new();
        loop {
            match read_frame(&mut cursor).unwrap() {
                Frame::Eof => return out,
                Frame::Payload(p) => out.push(Message::decode(&p).unwrap()),
            }
        }
    }

    #[test]
    fn serves_ping_task_and_shutdown() {
        let registry = standard_registry();
        let input = frames(&[
            Message::Ping { nonce: 5 },
            Message::Task {
                id: 0,
                attempt: 0,
                kind: ECHO_KIND.into(),
                payload: b"payload".to_vec(),
            },
            Message::Task {
                id: 1,
                attempt: 0,
                kind: FAIL_KIND.into(),
                payload: b"cause".to_vec(),
            },
            Message::Shutdown,
        ]);
        let mut output = Vec::new();
        serve(
            &mut Cursor::new(input),
            &mut output,
            &registry,
            &ChaosSpec::default(),
        )
        .unwrap();
        assert_eq!(
            replies(&output),
            vec![
                Message::Pong { nonce: 5 },
                Message::TaskOk {
                    id: 0,
                    payload: b"payload".to_vec()
                },
                Message::TaskErr {
                    id: 1,
                    message: "cause".into()
                },
            ]
        );
    }

    #[test]
    fn clean_eof_ends_the_loop() {
        let registry = standard_registry();
        let mut output = Vec::new();
        serve(
            &mut Cursor::new(Vec::new()),
            &mut output,
            &registry,
            &ChaosSpec::default(),
        )
        .unwrap();
        assert!(output.is_empty());
    }

    #[test]
    fn corrupt_inbound_frame_is_a_typed_error() {
        let registry = standard_registry();
        let mut input = Vec::new();
        write_corrupt_frame(&mut input, &Message::Shutdown.encode()).unwrap();
        let err = serve(
            &mut Cursor::new(input),
            &mut Vec::new(),
            &registry,
            &ChaosSpec::default(),
        )
        .unwrap_err();
        assert!(matches!(err, UniVsaError::Ipc(_)));
    }

    #[test]
    fn supervisor_bound_messages_are_rejected() {
        let registry = standard_registry();
        let input = frames(&[Message::Pong { nonce: 1 }]);
        let err = serve(
            &mut Cursor::new(input),
            &mut Vec::new(),
            &registry,
            &ChaosSpec::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("worker-to-supervisor"));
    }

    #[test]
    fn corrupt_result_chaos_writes_a_bad_frame() {
        let registry = standard_registry();
        let chaos = ChaosSpec {
            corrupt: 1.0,
            ..ChaosSpec::default()
        };
        let input = frames(&[
            Message::Task {
                id: 0,
                attempt: 0,
                kind: ECHO_KIND.into(),
                payload: b"x".to_vec(),
            },
            Message::Shutdown,
        ]);
        let mut output = Vec::new();
        serve(&mut Cursor::new(input), &mut output, &registry, &chaos).unwrap();
        let err = read_frame(&mut Cursor::new(output)).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
    }
}
