//! The worker side of the fleet: a frame-pump over stdin/stdout.
//!
//! A worker is the same `univsa` binary re-executed with
//! [`WORKER_ENV_VAR`] set; the CLI checks that before argument parsing
//! and hands control to [`worker_main`]. The loop reads framed
//! [`Message`]s from stdin, runs [`Message::Task`]s through the shared
//! [`JobRegistry`](crate::JobRegistry), and writes the replies to
//! stdout. Anything nondeterministic (logging, panics) goes to stderr —
//! stdout carries only frames.
//!
//! Fault injection lives here too: when [`univsa::CHAOS_ENV_VAR`] is
//! set, the worker consults the parsed [`ChaosSpec`] before and after
//! each task and may crash, hang, corrupt its reply frame, or delay its
//! startup handshake. The decisions are pure functions of
//! `(seed, task, attempt)`, so a chaos run is exactly reproducible.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use univsa::{ChaosSpec, UniVsaError};
use univsa_telemetry::{MemStats, DEFAULT_TRACE_CAPACITY};

use crate::frame::{read_frame, write_corrupt_frame, write_frame, Frame};
use crate::proto::Message;
use crate::JobRegistry;

/// Set (to any value) in a spawned worker's environment; the CLI enters
/// [`worker_main`] instead of parsing arguments when it sees this.
pub const WORKER_ENV_VAR: &str = "UNIVSA_WORKER_JOBS";
/// The worker's slot index in the fleet (feeds slow-start decisions).
pub const SLOT_ENV_VAR: &str = "UNIVSA_WORKER_SLOT";
/// The slot's respawn generation (0 for the first process in a slot).
pub const GEN_ENV_VAR: &str = "UNIVSA_WORKER_GEN";
/// Set by the supervisor (only when its own telemetry is enabled) to
/// make the worker capture spans/counters/allocation stats locally and
/// forward them as [`Message::Telemetry`] batches. Absent ⇒ the worker
/// records nothing and no telemetry frames cross the pipe.
pub const TELEMETRY_ENV_VAR: &str = "UNIVSA_WORKER_TELEMETRY";

/// Process exit code for a chaos-injected crash (distinct from the
/// panic runtime's 101 so logs can tell them apart).
pub const CHAOS_CRASH_EXIT: i32 = 86;

/// Whether this process was spawned as a fleet worker.
pub fn worker_env_requested() -> bool {
    std::env::var_os(WORKER_ENV_VAR).is_some()
}

/// Runs the worker loop over this process's stdin/stdout until the
/// supervisor sends [`Message::Shutdown`] or closes the pipe.
///
/// # Errors
///
/// [`UniVsaError::Ipc`] on a malformed inbound frame or an unexpected
/// message, [`UniVsaError::Io`] when a pipe breaks mid-write, and
/// [`UniVsaError::Config`] for an unparsable [`univsa::CHAOS_ENV_VAR`].
/// Handler-level failures are **not** errors here — they travel back as
/// [`Message::TaskErr`] and the loop keeps serving.
pub fn worker_main(registry: &JobRegistry) -> Result<(), UniVsaError> {
    let chaos = match std::env::var(univsa::CHAOS_ENV_VAR) {
        Ok(spec) => ChaosSpec::parse(&spec)?,
        Err(_) => ChaosSpec::default(),
    };
    let slot = env_u64(SLOT_ENV_VAR);
    let generation = env_u64(GEN_ENV_VAR);
    if let Some(delay) = chaos.slow_start_delay(slot, generation) {
        std::thread::sleep(delay);
    }
    let forward = std::env::var_os(TELEMETRY_ENV_VAR).is_some();
    if forward {
        // the worker's own registry is mode-off (the supervisor strips
        // UNIVSA_TELEMETRY so stderr stays clean); the flight recorder
        // alone collects spans and counters for forwarding
        univsa_telemetry::enable_tracing(DEFAULT_TRACE_CAPACITY);
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_worker(
        &mut stdin.lock(),
        &mut stdout.lock(),
        registry,
        &chaos,
        slot as u32,
        forward,
    )
}

/// The transport-agnostic worker loop without telemetry forwarding
/// ([`serve_worker`] with forwarding off; tests drive it over in-memory
/// pipes).
pub fn serve(
    input: &mut impl Read,
    output: &mut impl Write,
    registry: &JobRegistry,
    chaos: &ChaosSpec,
) -> Result<(), UniVsaError> {
    serve_worker(input, output, registry, chaos, 0, false)
}

/// The transport-agnostic worker loop. With `forward` set, each task
/// runs inside a `worker.task` span, `jobs`/`busy_ns` counters
/// accumulate, and everything captured since the previous flush ships
/// as a [`Message::Telemetry`] frame **before** the task's reply frame
/// (so the supervisor absorbs it while the dispatching task region is
/// still open) and once more at shutdown.
pub fn serve_worker(
    input: &mut impl Read,
    output: &mut impl Write,
    registry: &JobRegistry,
    chaos: &ChaosSpec,
    slot: u32,
    forward: bool,
) -> Result<(), UniVsaError> {
    let mut flusher = forward.then(TelemetryFlusher::new);
    loop {
        let payload = match read_frame(input)? {
            Frame::Eof => return Ok(()),
            Frame::Payload(payload) => payload,
        };
        match Message::decode(&payload)? {
            Message::Ping { nonce } => {
                let pong = Message::Pong {
                    nonce,
                    clock_ns: univsa_telemetry::clock_ns(),
                };
                write_frame(output, &pong.encode())?;
            }
            Message::Shutdown => {
                // last chance to ship whatever accumulated since the
                // final task; best-effort — the supervisor may already
                // have dropped the pipe
                if let Some(f) = flusher.as_mut() {
                    let _ = f.flush(output, slot, false);
                }
                return Ok(());
            }
            Message::Task {
                id,
                attempt,
                kind,
                payload,
            } => {
                if chaos.crash_task(id, u64::from(attempt)) {
                    std::process::exit(CHAOS_CRASH_EXIT);
                }
                if chaos.hang_task(id, u64::from(attempt)) {
                    // simulate a wedged worker: never reply, never exit —
                    // the supervisor's deadline has to reap this process
                    loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                }
                let started = Instant::now();
                let reply = {
                    let _task_span = forward.then(|| {
                        univsa_telemetry::span("worker", "task")
                            .field("job", id)
                            .field("attempt", u64::from(attempt))
                    });
                    match registry.run(&kind, &payload) {
                        Ok(result) => Message::TaskOk {
                            id,
                            payload: result,
                        },
                        Err(message) => Message::TaskErr { id, message },
                    }
                };
                if forward {
                    univsa_telemetry::counter("jobs", 1);
                    univsa_telemetry::counter(
                        "busy_ns",
                        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
                // telemetry first: the supervisor's dispatching task
                // region is open until the *reply* frame arrives, so the
                // batch lands under the correct causal parent
                if let Some(f) = flusher.as_mut() {
                    f.flush(
                        output,
                        slot,
                        chaos.corrupt_telemetry_batch(id, u64::from(attempt)),
                    )?;
                }
                if chaos.corrupt_result(id, u64::from(attempt)) {
                    write_corrupt_frame(output, &reply.encode())?;
                } else {
                    write_frame(output, &reply.encode())?;
                }
            }
            unexpected @ (Message::Pong { .. }
            | Message::TaskOk { .. }
            | Message::TaskErr { .. }
            | Message::Telemetry { .. }) => {
                return Err(UniVsaError::Ipc(format!(
                    "worker received a worker-to-supervisor message: {unexpected:?}"
                )));
            }
        }
    }
}

/// Drains the worker's registry into telemetry frames, tracking
/// allocator-ledger deltas between flushes so each batch reports only
/// its own window's allocations (peak stays absolute).
struct TelemetryFlusher {
    prev: MemStats,
}

impl TelemetryFlusher {
    fn new() -> Self {
        Self {
            prev: univsa_telemetry::mem_stats(),
        }
    }

    fn flush(
        &mut self,
        output: &mut impl Write,
        slot: u32,
        scramble: bool,
    ) -> Result<(), UniVsaError> {
        let mut batch = univsa_telemetry::take_worker_batch();
        let cur = univsa_telemetry::mem_stats();
        batch.net_bytes = cur.live_bytes as i64 - self.prev.live_bytes as i64;
        batch.alloc_count = cur.alloc_count.saturating_sub(self.prev.alloc_count);
        batch.peak_bytes = cur.peak_bytes;
        self.prev = cur;
        if batch.is_empty() {
            return Ok(());
        }
        let mut bytes = batch.encode();
        if scramble {
            // chaos: break the batch codec (the version byte), not the
            // frame CRC — the supervisor must drop and count this batch
            // without treating the pipe as broken
            bytes[0] ^= 0xFF;
        }
        let message = Message::Telemetry { slot, batch: bytes };
        write_frame(output, &message.encode())
    }
}

fn env_u64(var: &str) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{standard_registry, ECHO_KIND, FAIL_KIND};
    use std::io::Cursor;

    fn frames(messages: &[Message]) -> Vec<u8> {
        let mut buf = Vec::new();
        for m in messages {
            write_frame(&mut buf, &m.encode()).unwrap();
        }
        buf
    }

    fn replies(output: &[u8]) -> Vec<Message> {
        let mut cursor = Cursor::new(output);
        let mut out = Vec::new();
        loop {
            match read_frame(&mut cursor).unwrap() {
                Frame::Eof => return out,
                Frame::Payload(p) => out.push(Message::decode(&p).unwrap()),
            }
        }
    }

    #[test]
    fn serves_ping_task_and_shutdown() {
        let registry = standard_registry();
        let input = frames(&[
            Message::Ping { nonce: 5 },
            Message::Task {
                id: 0,
                attempt: 0,
                kind: ECHO_KIND.into(),
                payload: b"payload".to_vec(),
            },
            Message::Task {
                id: 1,
                attempt: 0,
                kind: FAIL_KIND.into(),
                payload: b"cause".to_vec(),
            },
            Message::Shutdown,
        ]);
        let mut output = Vec::new();
        serve(
            &mut Cursor::new(input),
            &mut output,
            &registry,
            &ChaosSpec::default(),
        )
        .unwrap();
        let replies = replies(&output);
        assert!(
            matches!(replies[0], Message::Pong { nonce: 5, .. }),
            "{replies:?}"
        );
        assert_eq!(
            replies[1..],
            vec![
                Message::TaskOk {
                    id: 0,
                    payload: b"payload".to_vec()
                },
                Message::TaskErr {
                    id: 1,
                    message: "cause".into()
                },
            ]
        );
    }

    #[test]
    fn clean_eof_ends_the_loop() {
        let registry = standard_registry();
        let mut output = Vec::new();
        serve(
            &mut Cursor::new(Vec::new()),
            &mut output,
            &registry,
            &ChaosSpec::default(),
        )
        .unwrap();
        assert!(output.is_empty());
    }

    #[test]
    fn corrupt_inbound_frame_is_a_typed_error() {
        let registry = standard_registry();
        let mut input = Vec::new();
        write_corrupt_frame(&mut input, &Message::Shutdown.encode()).unwrap();
        let err = serve(
            &mut Cursor::new(input),
            &mut Vec::new(),
            &registry,
            &ChaosSpec::default(),
        )
        .unwrap_err();
        assert!(matches!(err, UniVsaError::Ipc(_)));
    }

    #[test]
    fn supervisor_bound_messages_are_rejected() {
        let registry = standard_registry();
        let input = frames(&[Message::Pong {
            nonce: 1,
            clock_ns: 0,
        }]);
        let err = serve(
            &mut Cursor::new(input),
            &mut Vec::new(),
            &registry,
            &ChaosSpec::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("worker-to-supervisor"));
    }

    #[test]
    fn forwarding_emits_telemetry_frames_and_chaos_scrambles_them() {
        let registry = standard_registry();
        // one-way process-global switch; other tests in this binary only
        // run with forwarding off, so they never see telemetry frames
        univsa_telemetry::enable_tracing(DEFAULT_TRACE_CAPACITY);
        let chaos = ChaosSpec {
            corrupt_telemetry: 1.0,
            ..ChaosSpec::default()
        };
        let input = frames(&[
            Message::Task {
                id: 0,
                attempt: 0,
                kind: ECHO_KIND.into(),
                payload: b"x".to_vec(),
            },
            Message::Shutdown,
        ]);
        let mut output = Vec::new();
        serve_worker(
            &mut Cursor::new(input),
            &mut output,
            &registry,
            &chaos,
            3,
            true,
        )
        .unwrap();
        let replies = replies(&output);
        let batches: Vec<&Vec<u8>> = replies
            .iter()
            .filter_map(|m| match m {
                Message::Telemetry { slot: 3, batch } => Some(batch),
                _ => None,
            })
            .collect();
        assert!(!batches.is_empty(), "{replies:?}");
        // the scramble breaks the batch codec, not the message codec
        assert!(univsa_telemetry::WorkerBatch::decode(batches[0]).is_err());
        // and the task reply itself is untouched
        assert!(replies
            .iter()
            .any(|m| matches!(m, Message::TaskOk { id: 0, .. })));
    }

    #[test]
    fn corrupt_result_chaos_writes_a_bad_frame() {
        let registry = standard_registry();
        let chaos = ChaosSpec {
            corrupt: 1.0,
            ..ChaosSpec::default()
        };
        let input = frames(&[
            Message::Task {
                id: 0,
                attempt: 0,
                kind: ECHO_KIND.into(),
                payload: b"x".to_vec(),
            },
            Message::Shutdown,
        ]);
        let mut output = Vec::new();
        serve(&mut Cursor::new(input), &mut output, &registry, &chaos).unwrap();
        let err = read_frame(&mut Cursor::new(output)).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
    }
}
