//! The supervisor: spawns and babysits the worker fleet.
//!
//! One manager thread per worker slot pulls tasks from a shared queue
//! (work stealing), ships each over the slot's framed stdin pipe, and
//! waits on a per-task deadline. A worker that crashes, hangs past the
//! deadline, or corrupts a reply frame is killed, reaped, and respawned,
//! and the in-flight task is retried with exponential backoff — bounded
//! by [`SupervisorOptions::max_attempts`], after which the batch aborts
//! with the last cause. A worker that *answers* with a task error aborts
//! the batch immediately, propagating the first such message verbatim.
//!
//! ## Determinism
//!
//! Results are keyed by job index, never by completion order, and every
//! handler is a pure function of its payload (see [`crate::jobs`]). So
//! the result vector is bit-identical for any worker count, any
//! interleaving, and any crash/retry history — the chaos tests assert
//! exactly this. Jobs that cannot be placed on a worker (spawn failure,
//! every slot dead) degrade to the in-process [`univsa_par`] pool, which
//! runs the same handlers on the same payloads.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use univsa::{ChaosSpec, UniVsaError, CHAOS_ENV_VAR};

use crate::frame::{read_frame, write_frame, Frame};
use crate::proto::Message;
use crate::worker::{GEN_ENV_VAR, SLOT_ENV_VAR, TELEMETRY_ENV_VAR, WORKER_ENV_VAR};
use crate::JobRegistry;

/// Environment variable the CLI reads for a default fleet size
/// (`--workers` wins over it; absent/unparsable means in-process).
pub const WORKERS_ENV_VAR: &str = "UNIVSA_WORKERS";

/// The fleet size requested via [`WORKERS_ENV_VAR`], if any.
pub fn workers_from_env() -> Option<usize> {
    parse_workers(&std::env::var(WORKERS_ENV_VAR).ok()?)
}

/// Parses a fleet-size spelling (a non-negative integer).
pub fn parse_workers(s: &str) -> Option<usize> {
    s.trim().parse().ok()
}

/// One unit of distributable work: a registered handler name plus its
/// opaque payload (see [`crate::jobs`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Handler name, e.g. [`crate::jobs::FITNESS_KIND`].
    pub kind: String,
    /// Handler input bytes.
    pub payload: Vec<u8>,
}

impl Job {
    /// Convenience constructor.
    pub fn new(kind: &str, payload: Vec<u8>) -> Self {
        Self {
            kind: kind.to_string(),
            payload,
        }
    }
}

/// Fleet configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorOptions {
    /// Worker processes to run (`0` = stay in-process on `univsa-par`).
    pub workers: usize,
    /// Worker binary; `None` re-executes the current executable.
    pub worker_exe: Option<PathBuf>,
    /// Per-attempt deadline: a worker silent for this long is presumed
    /// hung, killed, and its task retried.
    pub task_deadline: Duration,
    /// Deadline for a fresh worker's liveness handshake (ping → pong).
    pub spawn_deadline: Duration,
    /// Maximum delivery attempts per task before the batch aborts.
    pub max_attempts: u32,
    /// First-retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Fault injection forwarded to workers via [`CHAOS_ENV_VAR`]
    /// (no-op specs are stripped from the worker environment).
    pub chaos: ChaosSpec,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        Self {
            workers: 0,
            worker_exe: None,
            task_deadline: Duration::from_secs(120),
            spawn_deadline: Duration::from_secs(20),
            max_attempts: 4,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            seed: 0,
            chaos: ChaosSpec::default(),
        }
    }
}

/// What the fleet went through while running a batch (nondeterministic
/// under chaos — never mix this into deterministic output).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetReport {
    /// Worker slots the batch ran with (`0` = pure in-process).
    pub workers: usize,
    /// Processes spawned, including respawns after failures.
    pub spawned: u64,
    /// Task attempts redelivered after a failure.
    pub retries: u64,
    /// Attempts abandoned because the task deadline passed.
    pub timeouts: u64,
    /// Worker processes that died (or broke their pipe) mid-task.
    pub crashes: u64,
    /// Reply frames rejected for framing/checksum/protocol errors.
    pub corrupt_frames: u64,
    /// Jobs that degraded to the in-process pool.
    pub fallback_jobs: u64,
    /// Forwarded telemetry batches that failed to decode and were
    /// dropped (chaos-scrambled or truncated; never fails the job).
    pub telemetry_dropped: u64,
    /// Per-slot tallies, indexed by slot. These are the supervisor's own
    /// observations, so they are populated even when telemetry (and
    /// therefore worker-side forwarding) is off.
    pub slots: Vec<SlotStats>,
}

/// Supervisor-side tallies for one worker slot over a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Processes spawned into this slot, including respawns.
    pub spawned: u64,
    /// Tasks this slot completed successfully.
    pub jobs: u64,
    /// Task attempts this slot's workers failed and had redelivered.
    pub retries: u64,
    /// Forwarded telemetry batches from this slot dropped as undecodable.
    pub telemetry_dropped: u64,
}

/// Owns the fleet configuration and the job handlers; see
/// [`Supervisor::run_jobs`].
pub struct Supervisor {
    options: SupervisorOptions,
    registry: JobRegistry,
}

impl Supervisor {
    /// Creates a supervisor over a handler registry.
    pub fn new(options: SupervisorOptions, registry: JobRegistry) -> Self {
        Self { options, registry }
    }

    /// The configured options.
    pub fn options(&self) -> &SupervisorOptions {
        &self.options
    }

    /// Runs a batch of jobs to completion and returns one result per
    /// job, **in job order**, plus the fleet's incident report.
    ///
    /// # Errors
    ///
    /// [`UniVsaError::Worker`] carrying the first definitive failure:
    /// either a handler error (propagated verbatim) or a task that
    /// exhausted [`SupervisorOptions::max_attempts`].
    pub fn run_jobs(&self, jobs: &[Job]) -> Result<(Vec<Vec<u8>>, FleetReport), UniVsaError> {
        let _span = univsa_telemetry::span("dist", "run_jobs").field("jobs", jobs.len() as u64);
        let mut report = FleetReport::default();
        if jobs.is_empty() {
            return Ok((Vec::new(), report));
        }
        let fleet = self.options.workers.min(jobs.len());
        let mut results: Vec<Option<Vec<u8>>> = vec![None; jobs.len()];

        if fleet > 0 {
            let exe = match &self.options.worker_exe {
                Some(path) => path.clone(),
                None => std::env::current_exe().map_err(|e| {
                    UniVsaError::Io(format!("cannot locate the worker executable: {e}"))
                })?,
            };
            let state = FleetState {
                options: &self.options,
                jobs,
                exe,
                queue: Mutex::new(
                    (0..jobs.len())
                        .map(|job| Attempt { job, attempt: 0 })
                        .collect(),
                ),
                results: Mutex::new(std::mem::take(&mut results)),
                first_error: Mutex::new(None),
                abort: AtomicBool::new(false),
                counters: Counters::with_slots(fleet),
            };
            let tracing = univsa_telemetry::trace_enabled();
            let ctx = univsa_telemetry::current_context();
            std::thread::scope(|scope| {
                for slot in 0..fleet {
                    let state = &state;
                    scope.spawn(move || {
                        let _lane =
                            tracing.then(|| univsa_telemetry::enter_lane(format!("fleet-{slot}")));
                        let _ctx = tracing.then(|| univsa_telemetry::enter_context(ctx));
                        state.manager(slot);
                    });
                }
            });
            report.workers = fleet;
            // Relaxed everywhere on the incident counters: they are
            // monotonic statistics, never control flow, and the scope
            // join above already orders these loads after every manager
            // thread's stores (only `abort` gates behaviour and keeps
            // SeqCst).
            report.spawned = state.counters.spawned.load(Ordering::Relaxed);
            report.retries = state.counters.retries.load(Ordering::Relaxed);
            report.timeouts = state.counters.timeouts.load(Ordering::Relaxed);
            report.crashes = state.counters.crashes.load(Ordering::Relaxed);
            report.corrupt_frames = state.counters.corrupt_frames.load(Ordering::Relaxed);
            report.telemetry_dropped = state.counters.telemetry_dropped.load(Ordering::Relaxed);
            report.slots = state
                .counters
                .slots
                .iter()
                .map(|slot| SlotStats {
                    spawned: slot.spawned.load(Ordering::Relaxed),
                    jobs: slot.jobs.load(Ordering::Relaxed),
                    retries: slot.retries.load(Ordering::Relaxed),
                    telemetry_dropped: slot.telemetry_dropped.load(Ordering::Relaxed),
                })
                .collect();
            if let Some(message) = state.first_error.into_inner().expect("error lock") {
                return Err(UniVsaError::Worker(message));
            }
            results = state.results.into_inner().expect("results lock");
        }

        // Degradation path: jobs no worker slot could serve (spawn
        // failure, all slots dead) — and the whole batch when
        // `workers == 0` — run in-process through the same handlers.
        let missing: Vec<usize> = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect();
        if !missing.is_empty() {
            if fleet > 0 {
                report.fallback_jobs = missing.len() as u64;
                univsa_telemetry::counter("dist.fallback_jobs", missing.len() as u64);
            }
            let computed = univsa_par::map_indexed("dist.jobs", missing.len(), |i| {
                let job = &jobs[missing[i]];
                self.registry.run(&job.kind, &job.payload)
            });
            for (&index, outcome) in missing.iter().zip(computed) {
                match outcome {
                    Ok(bytes) => results[index] = Some(bytes),
                    Err(message) => return Err(UniVsaError::Worker(message)),
                }
            }
        }

        let resolved = results
            .into_iter()
            .map(|r| r.expect("every job resolved or errored"))
            .collect();
        Ok((resolved, report))
    }
}

/// Backoff before delivery `attempt` (0-based; attempt 0 is free): the
/// exponential `base · 2^(attempt−1)` capped at `cap`, then jittered
/// deterministically into `[exp/2, exp]` by `(seed, job, attempt)` so
/// identical runs sleep identically but sibling retries desynchronize.
pub fn backoff_delay(base: Duration, cap: Duration, seed: u64, job: u64, attempt: u32) -> Duration {
    if attempt == 0 {
        return Duration::ZERO;
    }
    let shift = (attempt - 1).min(20);
    let exp = base
        .as_nanos()
        .saturating_mul(1u128 << shift)
        .min(cap.as_nanos());
    let half = exp / 2;
    let jitter = if half == 0 {
        0
    } else {
        u128::from(mix(seed ^ job.rotate_left(32) ^ u64::from(attempt))) % (half + 1)
    };
    Duration::from_nanos((half + jitter) as u64)
}

/// splitmix64 finalizer (same construction the chaos spec uses).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A task delivery: which job, and how many failures preceded it.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    job: usize,
    attempt: u32,
}

struct Counters {
    spawned: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    crashes: AtomicU64,
    corrupt_frames: AtomicU64,
    telemetry_dropped: AtomicU64,
    /// One tally block per worker slot (each manager thread writes only
    /// its own, but atomics keep the whole struct shareable by `&`).
    slots: Vec<SlotCounters>,
}

#[derive(Default)]
struct SlotCounters {
    spawned: AtomicU64,
    jobs: AtomicU64,
    retries: AtomicU64,
    telemetry_dropped: AtomicU64,
}

impl Counters {
    fn with_slots(fleet: usize) -> Self {
        Self {
            spawned: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            corrupt_frames: AtomicU64::new(0),
            telemetry_dropped: AtomicU64::new(0),
            slots: (0..fleet).map(|_| SlotCounters::default()).collect(),
        }
    }
}

/// Shared state the manager threads operate on.
struct FleetState<'a> {
    options: &'a SupervisorOptions,
    jobs: &'a [Job],
    exe: PathBuf,
    queue: Mutex<VecDeque<Attempt>>,
    results: Mutex<Vec<Option<Vec<u8>>>>,
    first_error: Mutex<Option<String>>,
    abort: AtomicBool,
    counters: Counters,
}

/// How one task delivery ended.
enum Delivery {
    /// The worker answered with a result.
    Done(Vec<u8>),
    /// The worker answered with a definitive error — abort the batch.
    Fatal(String),
    /// The worker crashed/hung/corrupted; kill it and retry the task.
    Retry(String),
}

impl FleetState<'_> {
    /// Records the batch's first definitive error and tells every
    /// manager to stand down.
    fn fail(&self, message: String) {
        let mut slot = self.first_error.lock().expect("error lock");
        if slot.is_none() {
            *slot = Some(message);
        }
        drop(slot);
        self.abort.store(true, Ordering::SeqCst);
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// The manager loop for one worker slot: steal a task, deliver it
    /// (respawning and retrying as needed), repeat until the queue
    /// drains, the batch aborts, or this slot can no longer spawn.
    fn manager(&self, slot: usize) {
        let tracing = univsa_telemetry::trace_enabled();
        let mut worker: Option<WorkerHandle> = None;
        let mut generation: u64 = 0;
        'steal: while !self.aborted() {
            let Some(mut attempt) = self.queue.lock().expect("queue lock").pop_front() else {
                break;
            };
            'deliver: loop {
                if self.aborted() {
                    break 'steal;
                }
                if attempt.attempt > 0 {
                    std::thread::sleep(backoff_delay(
                        self.options.backoff_base,
                        self.options.backoff_cap,
                        self.options.seed,
                        attempt.job as u64,
                        attempt.attempt,
                    ));
                }
                if worker.is_none() {
                    let _spawn_region =
                        tracing.then(|| univsa_telemetry::trace_region("dist", "spawn"));
                    match self.spawn_worker(slot, generation) {
                        Ok(handle) => {
                            generation += 1;
                            // Relaxed: monotonic statistic, see run_jobs
                            self.counters.spawned.fetch_add(1, Ordering::Relaxed);
                            self.counters.slots[slot]
                                .spawned
                                .fetch_add(1, Ordering::Relaxed);
                            univsa_telemetry::counter("dist.spawns", 1);
                            worker = Some(handle);
                        }
                        Err(_) => {
                            // this slot is unusable: hand the task back for
                            // surviving slots or the in-process fallback
                            self.queue.lock().expect("queue lock").push_front(attempt);
                            break 'steal;
                        }
                    }
                }
                let handle = worker.as_mut().expect("spawned above");
                let job = &self.jobs[attempt.job];
                let task_region = tracing.then(|| {
                    univsa_telemetry::trace_region("dist", "task")
                        .field("job", attempt.job as u64)
                        .field("attempt", u64::from(attempt.attempt))
                });
                // forwarded worker spans re-parent under this open
                // dispatch region in the merged timeline
                let parent = task_region.as_ref().and_then(|r| r.trace_id());
                let delivery = self.deliver(slot, handle, attempt, job, parent);
                drop(task_region);
                match delivery {
                    Delivery::Done(bytes) => {
                        self.results.lock().expect("results lock")[attempt.job] = Some(bytes);
                        self.counters.slots[slot]
                            .jobs
                            .fetch_add(1, Ordering::Relaxed);
                        break 'deliver;
                    }
                    Delivery::Fatal(message) => {
                        self.fail(message);
                        break 'steal;
                    }
                    Delivery::Retry(cause) => {
                        kill_and_reap(worker.take().expect("worker present"));
                        if attempt.attempt + 1 >= self.options.max_attempts {
                            self.fail(format!(
                                "task {} ({}) failed after {} attempts: {cause}",
                                attempt.job,
                                job.kind,
                                attempt.attempt + 1
                            ));
                            break 'steal;
                        }
                        // Relaxed: monotonic statistic, see run_jobs
                        self.counters.retries.fetch_add(1, Ordering::Relaxed);
                        self.counters.slots[slot]
                            .retries
                            .fetch_add(1, Ordering::Relaxed);
                        univsa_telemetry::counter("dist.retries", 1);
                        // retries are a supervisor-side observation (the
                        // worker that caused one may be dead), so the
                        // per-slot lane is charged here rather than in
                        // the worker's own forwarded batch
                        univsa_telemetry::counter(&format!("worker.{slot}.retries"), 1);
                        attempt.attempt += 1;
                    }
                }
            }
        }
        if let Some(handle) = worker.take() {
            if self.aborted() {
                kill_and_reap(handle);
            } else {
                self.shutdown_worker(slot, handle);
            }
        }
    }

    /// Ships one task to a live worker and waits for its fate,
    /// absorbing any [`Message::Telemetry`] batches the worker flushes
    /// ahead of its reply (they re-parent under `parent`, the open
    /// `dist.task` region).
    fn deliver(
        &self,
        slot: usize,
        handle: &mut WorkerHandle,
        attempt: Attempt,
        job: &Job,
        parent: Option<u64>,
    ) -> Delivery {
        let message = Message::Task {
            id: attempt.job as u64,
            attempt: attempt.attempt,
            kind: job.kind.clone(),
            payload: job.payload.clone(),
        };
        if write_frame(&mut handle.stdin, &message.encode()).is_err() {
            // Relaxed (here and below): monotonic statistics, see run_jobs
            self.counters.crashes.fetch_add(1, Ordering::Relaxed);
            univsa_telemetry::counter("dist.crashes", 1);
            return Delivery::Retry("worker pipe closed before dispatch".into());
        }
        let deadline = Instant::now() + self.options.task_deadline;
        loop {
            let wait = deadline.saturating_duration_since(Instant::now());
            return match handle.replies.recv_timeout(wait) {
                Ok(Ok(Message::Telemetry { batch, .. })) => {
                    // telemetry never consumes the task deadline budget
                    // beyond the time it took to arrive
                    self.absorb_telemetry(slot, &batch, handle.clock_offset_ns, parent);
                    continue;
                }
                Ok(Ok(Message::TaskOk { id, payload })) if id == attempt.job as u64 => {
                    Delivery::Done(payload)
                }
                Ok(Ok(Message::TaskErr { message, .. })) => Delivery::Fatal(message),
                Ok(Ok(unexpected)) => {
                    self.counters.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    univsa_telemetry::counter("dist.corrupt_frames", 1);
                    Delivery::Retry(format!("protocol violation: unexpected {unexpected:?}"))
                }
                Ok(Err(frame_error)) => {
                    self.counters.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    univsa_telemetry::counter("dist.corrupt_frames", 1);
                    Delivery::Retry(frame_error.to_string())
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    univsa_telemetry::counter("dist.timeouts", 1);
                    Delivery::Retry(format!(
                        "no reply within the {:?} task deadline",
                        self.options.task_deadline
                    ))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.counters.crashes.fetch_add(1, Ordering::Relaxed);
                    univsa_telemetry::counter("dist.crashes", 1);
                    Delivery::Retry("worker exited before replying".into())
                }
            };
        }
    }

    /// Decodes and merges one forwarded telemetry batch; a batch that
    /// fails its codec is dropped and counted, never an error — the
    /// job's fate is decided solely by its reply frame.
    fn absorb_telemetry(
        &self,
        slot: usize,
        batch_bytes: &[u8],
        clock_offset_ns: i64,
        parent: Option<u64>,
    ) {
        match univsa_telemetry::WorkerBatch::decode(batch_bytes) {
            Ok(batch) => {
                univsa_telemetry::absorb_worker_batch(slot as u32, &batch, clock_offset_ns, parent);
            }
            Err(_) => {
                // Relaxed: monotonic statistic, see run_jobs
                self.counters
                    .telemetry_dropped
                    .fetch_add(1, Ordering::Relaxed);
                self.counters.slots[slot]
                    .telemetry_dropped
                    .fetch_add(1, Ordering::Relaxed);
                univsa_telemetry::counter("dist.telemetry_dropped", 1);
            }
        }
    }

    /// Asks a worker to exit, absorbing the final telemetry batch it
    /// flushes on shutdown, then reaps it (escalating to a kill if it
    /// lingers past a short grace period).
    fn shutdown_worker(&self, slot: usize, handle: WorkerHandle) {
        let WorkerHandle {
            mut child,
            mut stdin,
            replies,
            reader,
            clock_offset_ns,
        } = handle;
        let _ = write_frame(&mut stdin, &Message::Shutdown.encode());
        drop(stdin);
        // drain until the worker closes its pipe (bounded by the reaper
        // below): the shutdown-flush telemetry batch arrives here
        while let Ok(Ok(message)) = replies.recv_timeout(Duration::from_secs(2)) {
            if let Message::Telemetry { batch, .. } = message {
                self.absorb_telemetry(slot, &batch, clock_offset_ns, None);
            }
        }
        drop(replies);
        let grace_until = Instant::now() + Duration::from_secs(2);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < grace_until => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
        let _ = reader.join();
    }

    /// Spawns a worker for `slot`, wires up its reader thread, and
    /// confirms liveness with a ping/pong handshake.
    fn spawn_worker(&self, slot: usize, generation: u64) -> Result<WorkerHandle, UniVsaError> {
        let mut command = Command::new(&self.exe);
        command
            .env(WORKER_ENV_VAR, "1")
            .env(SLOT_ENV_VAR, slot.to_string())
            .env(GEN_ENV_VAR, generation.to_string())
            // one thread per worker process: the fleet is the parallelism
            .env(univsa_par::ENV_VAR, "1")
            // keep worker stderr free of telemetry flushes
            .env_remove(univsa_telemetry::ENV_VAR)
            // and never let a worker try to bind the parent's metrics
            // port — the supervisor is the only exporter in the fleet
            .env_remove(univsa_telemetry::METRICS_ENV_VAR)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if univsa_telemetry::enabled() {
            // our telemetry is on: have the worker capture and forward
            command.env(TELEMETRY_ENV_VAR, "1");
        } else {
            // zero-overhead-off: no capture, no telemetry frames at all
            command.env_remove(TELEMETRY_ENV_VAR);
        }
        if self.options.chaos.is_noop() {
            command.env_remove(CHAOS_ENV_VAR);
        } else {
            command.env(CHAOS_ENV_VAR, self.options.chaos.render());
        }
        let mut child = command.spawn().map_err(|e| {
            UniVsaError::Io(format!("cannot spawn worker {}: {e}", self.exe.display()))
        })?;
        let stdin = child.stdin.take().expect("stdin piped");
        let mut stdout = child.stdout.take().expect("stdout piped");
        let (sender, replies) = mpsc::channel();
        let reader = std::thread::spawn(move || loop {
            match read_frame(&mut stdout) {
                Ok(Frame::Eof) => break,
                Ok(Frame::Payload(payload)) => match Message::decode(&payload) {
                    Ok(message) => {
                        if sender.send(Ok(message)).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = sender.send(Err(e));
                        break;
                    }
                },
                Err(e) => {
                    let _ = sender.send(Err(e));
                    break;
                }
            }
        });
        let mut handle = WorkerHandle {
            child,
            stdin,
            replies,
            reader,
            clock_offset_ns: 0,
        };
        let nonce = mix(generation ^ (slot as u64).rotate_left(48));
        // the ping doubles as a clock-alignment probe: assume the pong's
        // worker timestamp was taken at the midpoint of our round trip,
        // so offset = our midpoint − worker clock (add it to a worker
        // timestamp to land on the supervisor timeline)
        let t0 = univsa_telemetry::clock_ns();
        let handshake = write_frame(&mut handle.stdin, &Message::Ping { nonce }.encode()).is_ok()
            && match handle.replies.recv_timeout(self.options.spawn_deadline) {
                Ok(Ok(Message::Pong {
                    nonce: echoed,
                    clock_ns,
                })) if echoed == nonce => {
                    let t1 = univsa_telemetry::clock_ns();
                    let midpoint = t0 + (t1 - t0) / 2;
                    handle.clock_offset_ns = midpoint as i64 - clock_ns as i64;
                    true
                }
                _ => false,
            };
        if !handshake {
            kill_and_reap(handle);
            return Err(UniVsaError::Io(format!(
                "worker slot {slot} failed its liveness handshake within {:?}",
                self.options.spawn_deadline
            )));
        }
        Ok(handle)
    }
}

/// A live worker process and its plumbing.
struct WorkerHandle {
    child: Child,
    stdin: ChildStdin,
    replies: Receiver<Result<Message, UniVsaError>>,
    reader: std::thread::JoinHandle<()>,
    /// Supervisor-clock minus worker-clock estimate from the handshake;
    /// added to forwarded span timestamps to merge the timelines.
    clock_offset_ns: i64,
}

/// Hard-stops a worker and collects every resource: pipe, process
/// table entry (no zombies), and reader thread.
fn kill_and_reap(handle: WorkerHandle) {
    let WorkerHandle {
        mut child,
        stdin,
        replies,
        reader,
        ..
    } = handle;
    drop(stdin);
    drop(replies);
    let _ = child.kill();
    let _ = child.wait();
    let _ = reader.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{standard_registry, ECHO_KIND, FAIL_KIND};

    fn echo_jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| Job::new(ECHO_KIND, vec![i as u8; i + 1]))
            .collect()
    }

    #[test]
    fn in_process_results_are_in_job_order() {
        let supervisor = Supervisor::new(SupervisorOptions::default(), standard_registry());
        let jobs = echo_jobs(5);
        let (results, report) = supervisor.run_jobs(&jobs).unwrap();
        let expected: Vec<Vec<u8>> = jobs.iter().map(|j| j.payload.clone()).collect();
        assert_eq!(results, expected);
        assert_eq!(report, FleetReport::default());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let supervisor = Supervisor::new(SupervisorOptions::default(), standard_registry());
        let (results, report) = supervisor.run_jobs(&[]).unwrap();
        assert!(results.is_empty());
        assert_eq!(report.spawned, 0);
    }

    #[test]
    fn in_process_error_is_first_by_job_order() {
        let supervisor = Supervisor::new(SupervisorOptions::default(), standard_registry());
        let jobs = vec![
            Job::new(ECHO_KIND, b"ok".to_vec()),
            Job::new(FAIL_KIND, b"first cause".to_vec()),
            Job::new(FAIL_KIND, b"second cause".to_vec()),
        ];
        let err = supervisor.run_jobs(&jobs).unwrap_err();
        assert!(matches!(err, UniVsaError::Worker(_)));
        assert_eq!(err.to_string(), "worker failed: first cause");
    }

    #[test]
    fn spawn_failure_degrades_to_in_process() {
        let options = SupervisorOptions {
            workers: 2,
            worker_exe: Some(PathBuf::from("/nonexistent/univsa-worker-binary")),
            ..SupervisorOptions::default()
        };
        let supervisor = Supervisor::new(options, standard_registry());
        let jobs = echo_jobs(3);
        let (results, report) = supervisor.run_jobs(&jobs).unwrap();
        let expected: Vec<Vec<u8>> = jobs.iter().map(|j| j.payload.clone()).collect();
        assert_eq!(
            results, expected,
            "degraded results must stay bit-identical"
        );
        assert_eq!(report.workers, 2);
        assert_eq!(report.spawned, 0);
        assert_eq!(report.fallback_jobs, 3);
        // per-slot rows exist for every slot even when nothing spawned
        assert_eq!(report.slots.len(), 2);
        assert!(report.slots.iter().all(|s| *s == SlotStats::default()));
    }

    #[test]
    fn in_process_report_has_no_slot_rows() {
        let supervisor = Supervisor::new(SupervisorOptions::default(), standard_registry());
        let (_, report) = supervisor.run_jobs(&echo_jobs(2)).unwrap();
        assert!(report.slots.is_empty());
    }

    #[test]
    fn backoff_is_zero_for_the_first_attempt() {
        let base = Duration::from_millis(25);
        let cap = Duration::from_secs(1);
        assert_eq!(backoff_delay(base, cap, 0, 0, 0), Duration::ZERO);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(1);
        for attempt in 1..10 {
            let exp = Duration::from_millis(100 * (1 << (attempt - 1))).min(cap);
            let d = backoff_delay(base, cap, 7, 3, attempt as u32);
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} below {:?}", exp / 2);
            assert!(d <= exp, "attempt {attempt}: {d:?} above {exp:?}");
        }
        assert!(backoff_delay(base, cap, 7, 3, 30) <= cap);
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_spread() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(10);
        let a = backoff_delay(base, cap, 42, 5, 3);
        let b = backoff_delay(base, cap, 42, 5, 3);
        assert_eq!(a, b);
        // different jobs (and seeds) land on different points in the window
        let spread: std::collections::HashSet<Duration> = (0..16)
            .map(|job| backoff_delay(base, cap, 42, job, 3))
            .collect();
        assert!(spread.len() > 8, "jitter collapsed: {spread:?}");
    }

    #[test]
    fn parse_workers_accepts_integers_only() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 0 "), Some(0));
        assert_eq!(parse_workers("many"), None);
        assert_eq!(parse_workers("-1"), None);
        assert_eq!(parse_workers(""), None);
    }
}
