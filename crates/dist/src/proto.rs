//! The supervisor ↔ worker message vocabulary.
//!
//! Each message is encoded into one [frame](crate::frame) payload: a
//! single tag byte followed by fixed-width little-endian fields and
//! length-prefixed byte strings. Decoding is total — every malformed
//! input maps to [`UniVsaError::Ipc`], never a panic — because worker
//! stdout is an untrusted channel once the chaos harness starts
//! flipping bytes on it.

use univsa::UniVsaError;

/// One IPC message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Liveness probe (supervisor → worker).
    Ping {
        /// Echo token: the matching [`Message::Pong`] must return it.
        nonce: u64,
    },
    /// Liveness reply (worker → supervisor).
    Pong {
        /// The nonce from the [`Message::Ping`] being answered.
        nonce: u64,
        /// Nanoseconds on the worker's telemetry clock when the pong was
        /// written — the supervisor pairs it with its own send/receive
        /// instants to estimate the clock offset that aligns forwarded
        /// worker spans onto its timeline.
        clock_ns: u64,
    },
    /// A job dispatch (supervisor → worker).
    Task {
        /// Stable job index; results are keyed by it.
        id: u64,
        /// Zero-based delivery attempt (drives chaos decisions, so a
        /// retry of a crashed task rolls fresh fault dice).
        attempt: u32,
        /// Registered handler name, e.g. `"search.fitness"`.
        kind: String,
        /// Handler-specific input bytes.
        payload: Vec<u8>,
    },
    /// A successful job result (worker → supervisor).
    TaskOk {
        /// The id of the completed [`Message::Task`].
        id: u64,
        /// Handler-specific output bytes.
        payload: Vec<u8>,
    },
    /// A definitive job failure (worker → supervisor). The worker stays
    /// alive; the supervisor aborts the batch with this message.
    TaskErr {
        /// The id of the failed [`Message::Task`].
        id: u64,
        /// Human-readable cause, propagated verbatim to the caller.
        message: String,
    },
    /// Orderly shutdown request (supervisor → worker); the worker exits
    /// 0 after reading it.
    Shutdown,
    /// A worker-side telemetry batch (worker → supervisor), flushed
    /// ahead of each task reply and before shutdown. The payload is a
    /// [`univsa_telemetry::WorkerBatch`] encoding, kept opaque here so
    /// the message codec stays independent of the batch codec — a batch
    /// that fails *its* decode is dropped and counted by the supervisor,
    /// never an IPC error.
    Telemetry {
        /// The sending worker's fleet slot.
        slot: u32,
        /// Encoded [`univsa_telemetry::WorkerBatch`] bytes.
        batch: Vec<u8>,
    },
}

const TAG_PING: u8 = 1;
const TAG_PONG: u8 = 2;
const TAG_TASK: u8 = 3;
const TAG_TASK_OK: u8 = 4;
const TAG_TASK_ERR: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_TELEMETRY: u8 = 7;

impl Message {
    /// Serializes the message into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Ping { nonce } => {
                out.push(TAG_PING);
                out.extend_from_slice(&nonce.to_le_bytes());
            }
            Message::Pong { nonce, clock_ns } => {
                out.push(TAG_PONG);
                out.extend_from_slice(&nonce.to_le_bytes());
                out.extend_from_slice(&clock_ns.to_le_bytes());
            }
            Message::Task {
                id,
                attempt,
                kind,
                payload,
            } => {
                out.push(TAG_TASK);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                put_bytes(&mut out, kind.as_bytes());
                put_bytes(&mut out, payload);
            }
            Message::TaskOk { id, payload } => {
                out.push(TAG_TASK_OK);
                out.extend_from_slice(&id.to_le_bytes());
                put_bytes(&mut out, payload);
            }
            Message::TaskErr { id, message } => {
                out.push(TAG_TASK_ERR);
                out.extend_from_slice(&id.to_le_bytes());
                put_bytes(&mut out, message.as_bytes());
            }
            Message::Shutdown => out.push(TAG_SHUTDOWN),
            Message::Telemetry { slot, batch } => {
                out.push(TAG_TELEMETRY);
                out.extend_from_slice(&slot.to_le_bytes());
                put_bytes(&mut out, batch);
            }
        }
        out
    }

    /// Deserializes a frame payload.
    ///
    /// # Errors
    ///
    /// [`UniVsaError::Ipc`] on an empty payload, unknown tag, truncated
    /// field, invalid UTF-8 in a string field, or trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Message, UniVsaError> {
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.u8()?;
        let message = match tag {
            TAG_PING => Message::Ping { nonce: r.u64()? },
            TAG_PONG => Message::Pong {
                nonce: r.u64()?,
                clock_ns: r.u64()?,
            },
            TAG_TASK => {
                let id = r.u64()?;
                let attempt = r.u32()?;
                let kind = r.string("task kind")?;
                let payload = r.bytes_field()?;
                Message::Task {
                    id,
                    attempt,
                    kind,
                    payload,
                }
            }
            TAG_TASK_OK => Message::TaskOk {
                id: r.u64()?,
                payload: r.bytes_field()?,
            },
            TAG_TASK_ERR => {
                let id = r.u64()?;
                let message = r.string("error message")?;
                Message::TaskErr { id, message }
            }
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_TELEMETRY => Message::Telemetry {
                slot: r.u32()?,
                batch: r.bytes_field()?,
            },
            other => {
                return Err(UniVsaError::Ipc(format!("unknown message tag {other}")));
            }
        };
        if r.pos != r.bytes.len() {
            return Err(UniVsaError::Ipc(format!(
                "{} trailing bytes after message",
                r.bytes.len() - r.pos
            )));
        }
        Ok(message)
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], UniVsaError> {
        if self.bytes.len() - self.pos < n {
            return Err(UniVsaError::Ipc(format!(
                "message truncated: needed {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, UniVsaError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, UniVsaError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, UniVsaError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bytes_field(&mut self) -> Result<Vec<u8>, UniVsaError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self, what: &str) -> Result<String, UniVsaError> {
        let raw = self.bytes_field()?;
        String::from_utf8(raw)
            .map_err(|_| UniVsaError::Ipc(format!("{what} field is not valid UTF-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<Message> {
        vec![
            Message::Ping { nonce: 7 },
            Message::Pong {
                nonce: u64::MAX,
                clock_ns: 1_234_567,
            },
            Message::Task {
                id: 3,
                attempt: 2,
                kind: "search.fitness".into(),
                payload: vec![1, 2, 3, 0, 255],
            },
            Message::Task {
                id: 0,
                attempt: 0,
                kind: String::new(),
                payload: Vec::new(),
            },
            Message::TaskOk {
                id: 9,
                payload: vec![0; 64],
            },
            Message::TaskErr {
                id: 4,
                message: "invalid configuration: D_H too small".into(),
            },
            Message::Shutdown,
            Message::Telemetry {
                slot: 3,
                batch: vec![1, 0, 255, 42],
            },
            Message::Telemetry {
                slot: 0,
                batch: Vec::new(),
            },
        ]
    }

    #[test]
    fn messages_round_trip() {
        for m in examples() {
            assert_eq!(Message::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn empty_and_unknown_tags_are_typed_errors() {
        assert!(matches!(
            Message::decode(&[]).unwrap_err(),
            UniVsaError::Ipc(_)
        ));
        let err = Message::decode(&[0xEE]).unwrap_err();
        assert!(err.to_string().contains("unknown message tag"));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for m in examples() {
            let full = m.encode();
            for cut in 0..full.len() {
                match Message::decode(&full[..cut]) {
                    Err(UniVsaError::Ipc(_)) => {}
                    other => panic!("{m:?} cut to {cut} bytes gave {other:?}"),
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Message::Shutdown.encode();
        bytes.push(0);
        let err = Message::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn bad_utf8_in_kind_is_rejected() {
        let mut bytes = Vec::new();
        bytes.push(3); // Task tag
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let err = Message::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("UTF-8"));
    }
}
