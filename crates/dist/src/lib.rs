//! # univsa-dist
//!
//! Fault-tolerant process-sharded execution for the UniVSA workloads: a
//! supervised worker fleet built entirely on `std::process`.
//!
//! The [`Supervisor`] spawns N copies of the current binary as worker
//! processes (the CLI re-enters [`worker_main`] when it sees
//! [`WORKER_ENV_VAR`]) and speaks a length-prefixed, CRC32-framed
//! protocol over their stdin/stdout pipes — the checksum is the same
//! [`univsa::crc32`] the weight-memory integrity layer uses. Work is
//! expressed as named byte-level jobs (see [`jobs`]) because closures
//! cannot cross a process boundary; the handlers are pure functions of
//! their payloads, which is what makes the whole fleet deterministic:
//! results are keyed by job index, so any worker count, schedule, or
//! crash/retry history yields **bit-identical output**.
//!
//! Robustness machinery, per worker slot:
//!
//! * liveness handshake (ping/pong) after every spawn,
//! * a per-task deadline — hung workers are killed and reaped,
//! * bounded retries with exponential backoff and deterministic jitter,
//! * respawn + re-dispatch of in-flight work after a crash or a corrupt
//!   reply frame,
//! * graceful degradation to the in-process [`univsa_par`] pool when
//!   spawning fails outright.
//!
//! The seeded chaos harness ([`univsa::ChaosSpec`], forwarded via
//! [`univsa::CHAOS_ENV_VAR`]) injects worker crashes, hangs, frame
//! corruption, and slow starts deterministically, so every recovery
//! path above is exercised by ordinary tests and CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod jobs;
pub mod proto;
pub mod supervisor;
pub mod worker;

pub use frame::{read_frame, write_corrupt_frame, write_frame, Frame, HEADER_LEN, MAX_FRAME};
pub use jobs::{
    decode_fitness, decode_quality_results, decode_seu_outcome, encode_quality_results,
    encode_seu_outcome, probe_fitness, standard_registry, FitnessJob, JobRegistry, QualityJob,
    SeuTrialJob, ECHO_KIND, FAIL_KIND, FITNESS_KIND, PROBE_KIND, QUALITY_KIND, SEU_TRIAL_KIND,
};
pub use proto::Message;
pub use supervisor::{
    backoff_delay, parse_workers, workers_from_env, FleetReport, Job, SlotStats, Supervisor,
    SupervisorOptions, WORKERS_ENV_VAR,
};
pub use worker::{
    serve_worker, worker_env_requested, worker_main, CHAOS_CRASH_EXIT, GEN_ENV_VAR, SLOT_ENV_VAR,
    TELEMETRY_ENV_VAR, WORKER_ENV_VAR,
};
