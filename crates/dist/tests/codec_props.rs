//! Property-based tests for the IPC frame and message codecs: arbitrary
//! payloads round-trip exactly, and every corruption the chaos harness
//! can inflict — truncation, flipped payload bytes, flipped CRC bytes,
//! mangled headers — surfaces as a typed [`UniVsaError::Ipc`], never a
//! panic or a silently-wrong payload.

use std::io::Cursor;

use proptest::prelude::*;
use univsa::UniVsaError;
use univsa_dist::{
    read_frame, write_corrupt_frame, write_frame, FitnessJob, Frame, Message, SeuTrialJob,
    HEADER_LEN,
};
use univsa_search::Genome;
use univsa_telemetry::{QualityStats, WorkerBatch, WorkerSpan};

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    (0usize..600).prop_flat_map(|n| proptest::collection::vec(any::<u8>(), n))
}

fn arb_genome() -> impl Strategy<Value = Genome> {
    (1usize..64, 1usize..64, 1usize..8, 1usize..256, 1usize..8).prop_map(
        |(d_h, d_l, d_k, out_channels, voters)| Genome {
            d_h,
            d_l,
            d_k,
            out_channels,
            voters,
        },
    )
}

fn encode(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, payload).unwrap();
    buf
}

proptest! {
    #[test]
    fn frame_round_trips_arbitrary_payloads(payload in arb_payload()) {
        let buf = encode(&payload);
        prop_assert_eq!(buf.len(), HEADER_LEN + payload.len());
        let mut cursor = Cursor::new(buf);
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), Frame::Payload(payload));
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), Frame::Eof);
    }

    #[test]
    fn any_truncation_is_a_typed_error(payload in arb_payload(), cut in 0usize..600) {
        let buf = encode(&payload);
        // cut strictly inside the frame (cutting at full length is the
        // round-trip case; cutting at 0 is clean EOF)
        let cut = 1 + cut % (buf.len() - 1);
        match read_frame(&mut Cursor::new(&buf[..cut])) {
            Err(UniVsaError::Ipc(_)) => {}
            other => panic!("cut at {cut}/{} gave {other:?}", buf.len()),
        }
    }

    #[test]
    fn any_single_byte_flip_is_a_typed_error(
        payload in (1usize..600).prop_flat_map(|n| proptest::collection::vec(any::<u8>(), n)),
        position in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut buf = encode(&payload);
        let position = (position % buf.len() as u64) as usize;
        buf[position] ^= 1 << bit;
        // a flipped length prefix either overruns the buffer (truncated)
        // or shortens the payload (checksum mismatch); a flipped CRC or
        // payload byte is always a checksum mismatch
        match read_frame(&mut Cursor::new(buf)) {
            Err(UniVsaError::Ipc(_)) => {}
            other => panic!("flip at byte {position} bit {bit} gave {other:?}"),
        }
    }

    #[test]
    fn corrupt_frame_helper_always_trips_the_checksum(payload in arb_payload()) {
        let mut buf = Vec::new();
        write_corrupt_frame(&mut buf, &payload).unwrap();
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        prop_assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn task_messages_round_trip(
        id in any::<u64>(),
        attempt in 0u32..1000,
        payload in arb_payload(),
    ) {
        let message = Message::Task {
            id,
            attempt,
            kind: "search.fitness".into(),
            payload,
        };
        prop_assert_eq!(Message::decode(&message.encode()).unwrap(), message);
    }

    #[test]
    fn result_messages_round_trip(id in any::<u64>(), payload in arb_payload()) {
        let ok = Message::TaskOk { id, payload };
        prop_assert_eq!(Message::decode(&ok.encode()).unwrap(), ok);
        let err = Message::TaskErr {
            id,
            message: format!("task {id} exploded"),
        };
        prop_assert_eq!(Message::decode(&err.encode()).unwrap(), err);
    }

    #[test]
    fn message_decode_never_panics_on_garbage(bytes in arb_payload()) {
        // decoding arbitrary bytes must return, not panic
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn telemetry_messages_round_trip(slot in any::<u32>(), batch in arb_payload()) {
        let message = Message::Telemetry { slot, batch };
        prop_assert_eq!(Message::decode(&message.encode()).unwrap(), message);
    }

    #[test]
    fn telemetry_message_corruption_is_a_typed_error(
        slot in any::<u32>(),
        batch in (1usize..300).prop_flat_map(|n| proptest::collection::vec(any::<u8>(), n)),
        cut in any::<u64>(),
    ) {
        let full = Message::Telemetry { slot, batch }.encode();
        let cut = (cut % full.len() as u64) as usize;
        match Message::decode(&full[..cut]) {
            Err(UniVsaError::Ipc(_)) => {}
            other => panic!("cut at {cut}/{} gave {other:?}", full.len()),
        }
    }

    #[test]
    fn worker_batch_round_trips(
        dropped in any::<u64>(),
        net_bytes in any::<i64>(),
        alloc_count in any::<u64>(),
        peak_bytes in any::<u64>(),
        counters in proptest::collection::vec((any::<u8>(), any::<u64>()), 0usize..8),
        spans in proptest::collection::vec(
            (any::<u64>(), any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>()),
            0usize..8,
        ),
        task in prop_oneof![
            Just(None),
            (0u8..26).prop_map(|n| Some(format!("task-{n}"))),
        ],
        predictions in proptest::collection::vec((any::<u8>(), any::<u32>()), 0usize..8),
        outcomes in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u32>()),
            0usize..8,
        ),
    ) {
        let mut quality = QualityStats::default();
        quality.task = task;
        for (class, margin) in predictions {
            quality.record_prediction(class as u32, margin as u64);
        }
        for (truth, predicted, margin) in outcomes {
            quality.record_outcome(truth as u32, predicted as u32, margin as u64);
        }
        let batch = WorkerBatch {
            clock_ns: 42,
            dropped,
            net_bytes,
            alloc_count,
            peak_bytes,
            counters: counters
                .into_iter()
                .map(|(tag, value)| (format!("counter.{tag}"), value))
                .collect(),
            spans: spans
                .into_iter()
                .map(|(id, has_parent, parent, start_ns, dur_ns)| WorkerSpan {
                    id,
                    parent: has_parent.then_some(parent),
                    lane: "main".into(),
                    layer: "worker".into(),
                    name: "task".into(),
                    start_ns,
                    dur_ns,
                })
                .collect(),
            quality,
        };
        prop_assert_eq!(WorkerBatch::decode(&batch.encode()).unwrap(), batch);
    }

    #[test]
    fn worker_batch_decode_never_panics_on_garbage(bytes in arb_payload()) {
        // the supervisor feeds untrusted worker bytes straight into this
        // decoder; every outcome must be a value, never a panic
        let _ = WorkerBatch::decode(&bytes);
    }

    #[test]
    fn fitness_jobs_round_trip(
        genome in arb_genome(),
        data_seed in any::<u64>(),
        train_seed in any::<u64>(),
        epochs in 1usize..100,
    ) {
        let job = FitnessJob {
            task: "BCI3V".into(),
            data_seed,
            train_seed,
            epochs,
            genome,
        };
        prop_assert_eq!(FitnessJob::decode(&job.encode()).unwrap(), job);
    }

    #[test]
    fn seu_trial_jobs_round_trip(
        genome in arb_genome(),
        seed in any::<u64>(),
        samples in 1usize..1000,
        protection_tag in 0u8..3,
    ) {
        let job = SeuTrialJob {
            spec: univsa_data::TaskSpec {
                name: "BCI3V".into(),
                width: 16,
                length: 6,
                classes: 3,
                levels: 256,
            },
            genome,
            protection: univsa_hw::Protection::from_tag(protection_tag).unwrap(),
            rate: 1e-9,
            seed,
            samples,
        };
        prop_assert_eq!(SeuTrialJob::decode(&job.encode()).unwrap(), job);
    }
}
