//! Fault injection: bit-flip corruption of deployed models.
//!
//! Binary VSA's claim to hardware friendliness rests partly on holographic
//! robustness: every bit of **V**, **F**, **K**, **C** carries the same
//! tiny share of the decision, so single-event upsets (radiation, weak
//! retention in low-voltage SRAM) degrade accuracy gracefully instead of
//! catastrophically — unlike a float MSB flip. This module makes that
//! claim testable: [`UniVsaModel::with_bit_flips`] returns a copy of a
//! model with every stored weight bit flipped independently with
//! probability `rate`. This is an *extension* experiment beyond the
//! paper's evaluation (see `ext_robustness` in the bench crate).

use rand::Rng;
use univsa_bits::{BitMatrix, BitVec};

use crate::UniVsaModel;

impl UniVsaModel {
    /// Returns a copy of the model with every stored weight bit flipped
    /// independently with probability `rate` (the DVP mask and the
    /// configuration are metadata, not weight memory, and are left
    /// intact).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn with_bit_flips<R: Rng + ?Sized>(&self, rate: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&rate), "flip rate must be in [0, 1]");
        let mut copy = self.clone();
        if rate == 0.0 {
            return copy;
        }
        copy.corrupt_in_place(rate, rng);
        copy
    }

    pub(crate) fn corrupt_in_place<R: Rng + ?Sized>(&mut self, rate: f64, rng: &mut R) {
        let d_h = self.config().d_h;
        let (v_h, v_l, kernel, f, c) = self.weights_mut();
        flip_matrix(v_h, rate, rng);
        flip_matrix(v_l, rate, rng);
        for word in kernel.iter_mut() {
            for bit in 0..d_h {
                if rng.gen_bool(rate) {
                    *word ^= 1 << bit;
                }
            }
        }
        flip_matrix(f, rate, rng);
        for set in c.iter_mut() {
            flip_matrix(set, rate, rng);
        }
    }
}

fn flip_matrix<R: Rng + ?Sized>(m: &mut BitMatrix, rate: f64, rng: &mut R) {
    for row_idx in 0..m.rows() {
        let row = m.row_mut(row_idx);
        flip_vec(row, rate, rng);
    }
}

fn flip_vec<R: Rng + ?Sized>(v: &mut BitVec, rate: f64, rng: &mut R) {
    for i in 0..v.dim() {
        if rng.gen_bool(rate) {
            let current = v.get(i) == Some(true);
            v.set(i, !current);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Enhancements, Mask, UniVsaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use univsa_data::TaskSpec;

    fn model(seed: u64) -> UniVsaModel {
        let spec = TaskSpec {
            name: "t".into(),
            width: 4,
            length: 6,
            classes: 2,
            levels: 8,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(2)
            .d_k(3)
            .out_channels(6)
            .voters(2)
            .enhancements(Enhancements::all())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        UniVsaModel::from_parts(
            cfg.clone(),
            Mask::all_high(cfg.features()),
            BitMatrix::random(cfg.levels, cfg.d_h, &mut rng),
            BitMatrix::random(cfg.levels, cfg.d_l, &mut rng),
            (0..cfg.out_channels * 9).map(|_| rand::Rng::gen::<u64>(&mut rng) & 0xF).collect(),
            BitMatrix::random(cfg.out_channels, cfg.vsa_dim(), &mut rng),
            vec![
                BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng),
                BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng),
            ],
        )
        .unwrap()
    }

    #[test]
    fn zero_rate_is_identity() {
        let m = model(0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.with_bit_flips(0.0, &mut rng), m);
    }

    #[test]
    fn full_rate_flips_everything() {
        let m = model(1);
        let mut rng = StdRng::seed_from_u64(2);
        let flipped = m.with_bit_flips(1.0, &mut rng);
        // every V bit inverted
        for r in 0..m.v_h().rows() {
            assert_eq!(flipped.v_h().row(r), &m.v_h().row(r).not());
        }
        for (a, b) in m.kernel_words().iter().zip(flipped.kernel_words()) {
            assert_eq!(a ^ b, 0xF, "kernel channel bits must all flip");
        }
    }

    #[test]
    fn small_rate_changes_few_bits() {
        let m = model(2);
        let mut rng = StdRng::seed_from_u64(3);
        let flipped = m.with_bit_flips(0.01, &mut rng);
        let mut changed = 0u32;
        for r in 0..m.f().rows() {
            changed += m.f().row(r).hamming(flipped.f().row(r)).unwrap();
        }
        let total = m.f().storage_bits() as f64;
        assert!((changed as f64) < total * 0.05, "{changed} of {total} flipped");
        assert!(flipped != m || changed == 0);
    }

    #[test]
    #[should_panic(expected = "flip rate")]
    fn rejects_bad_rate() {
        let m = model(3);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = m.with_bit_flips(1.5, &mut rng);
    }

    #[test]
    fn corrupted_model_still_infers() {
        let m = model(4);
        let mut rng = StdRng::seed_from_u64(5);
        let flipped = m.with_bit_flips(0.2, &mut rng);
        let values: Vec<u8> = (0..24).map(|i| (i % 8) as u8).collect();
        let label = flipped.infer(&values).unwrap();
        assert!(label < 2);
    }
}
