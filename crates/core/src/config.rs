//! UniVSA model configuration.

use univsa_data::TaskSpec;
use univsa_tensor::Conv2dSpec;

use crate::UniVsaError;

/// Which of the three UniVSA enhancements are active — the axes of the
/// paper's Fig. 4 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Enhancements {
    /// Discriminated value projection (narrow `VB_L` for low-importance
    /// features).
    pub dvp: bool,
    /// Binary convolution feature extraction.
    pub biconv: bool,
    /// Soft-voting ensemble of similarity heads.
    pub soft_voting: bool,
}

impl Enhancements {
    /// All three enhancements on (full UniVSA).
    pub fn all() -> Self {
        Self {
            dvp: true,
            biconv: true,
            soft_voting: true,
        }
    }

    /// All enhancements off (plain LDC-style binary VSA baseline).
    pub fn none() -> Self {
        Self {
            dvp: false,
            biconv: false,
            soft_voting: false,
        }
    }
}

impl Default for Enhancements {
    fn default() -> Self {
        Self::all()
    }
}

/// The full UniVSA configuration: the paper's tuple
/// `(D_H, D_L, D_K, O, Θ, M)` plus task geometry `(W, L, C)` and the
/// enhancement switches.
///
/// Build with [`UniVsaConfig::for_task`] / [`ConfigBuilder`]; every
/// constructed value has passed [`ConfigBuilder::build`]'s validation.
///
/// # Examples
///
/// ```
/// use univsa::UniVsaConfig;
/// use univsa_data::TaskSpec;
///
/// let spec = TaskSpec { name: "toy".into(), width: 4, length: 8, classes: 2, levels: 256 };
/// let cfg = UniVsaConfig::for_task(&spec).d_h(8).d_l(2).build()?;
/// assert_eq!(cfg.vsa_dim(), 32);
/// # Ok::<(), univsa::UniVsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UniVsaConfig {
    /// High-importance value-vector dimension `D_H` (channel depth of the
    /// conv input). At most 64 so a channel column fits one packed word.
    pub d_h: usize,
    /// Low-importance value-vector dimension `D_L ≤ D_H`.
    pub d_l: usize,
    /// Square convolution kernel side `D_K` (odd).
    pub d_k: usize,
    /// Convolution output channels `O`.
    pub out_channels: usize,
    /// Soft-voting similarity heads `Θ`.
    pub voters: usize,
    /// Discretization levels `M`.
    pub levels: usize,
    /// Window count `W`.
    pub width: usize,
    /// Snippet length `L`.
    pub length: usize,
    /// Class count `C`.
    pub classes: usize,
    /// Active enhancements.
    pub enhancements: Enhancements,
    /// Fraction of features routed to the *high*-importance ValueBox when
    /// DVP is active (the rest use `VB_L`).
    pub high_fraction: f32,
}

impl UniVsaConfig {
    /// Starts a builder pre-filled with a task's geometry and the paper's
    /// basis configuration `(D_H, D_L, D_K, O, Θ) = (4, 2, 3, 64, 1)`.
    pub fn for_task(spec: &TaskSpec) -> ConfigBuilder {
        ConfigBuilder {
            config: UniVsaConfig {
                d_h: 4,
                d_l: 2,
                d_k: 3,
                out_channels: 64,
                voters: 1,
                levels: spec.levels,
                width: spec.width,
                length: spec.length,
                classes: spec.classes,
                enhancements: Enhancements::all(),
                high_fraction: 0.75,
            },
        }
    }

    /// The VSA vector dimension `D = W·L` (preserved by the `same`-padded
    /// convolution).
    #[inline]
    pub fn vsa_dim(&self) -> usize {
        self.width * self.length
    }

    /// Total feature count `N = W·L`.
    #[inline]
    pub fn features(&self) -> usize {
        self.width * self.length
    }

    /// Effective number of similarity heads (1 when soft voting is off).
    #[inline]
    pub fn effective_voters(&self) -> usize {
        if self.enhancements.soft_voting {
            self.voters
        } else {
            1
        }
    }

    /// Effective encoding channel count: conv output channels with BiConv,
    /// the raw value-map depth `D_H` without.
    #[inline]
    pub fn encoding_channels(&self) -> usize {
        if self.enhancements.biconv {
            self.out_channels
        } else {
            self.d_h
        }
    }

    /// Effective low dimension (equals `d_h` when DVP is off).
    #[inline]
    pub fn effective_d_l(&self) -> usize {
        if self.enhancements.dvp {
            self.d_l
        } else {
            self.d_h
        }
    }

    /// The convolution geometry, when BiConv is active.
    pub fn conv_spec(&self) -> Conv2dSpec {
        Conv2dSpec {
            in_channels: self.d_h,
            out_channels: self.out_channels,
            kernel: self.d_k,
            height: self.width,
            width: self.length,
        }
    }

    /// The paper's Table I tuple `(D_H, D_L, D_K, O, Θ)`.
    pub fn tuple(&self) -> (usize, usize, usize, usize, usize) {
        (self.d_h, self.d_l, self.d_k, self.out_channels, self.voters)
    }
}

/// Builder for [`UniVsaConfig`] (see [`UniVsaConfig::for_task`]).
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    config: UniVsaConfig,
}

impl ConfigBuilder {
    /// Sets `D_H` (high-importance value dimension, 1..=64).
    pub fn d_h(mut self, v: usize) -> Self {
        self.config.d_h = v;
        self
    }

    /// Sets `D_L` (low-importance value dimension).
    pub fn d_l(mut self, v: usize) -> Self {
        self.config.d_l = v;
        self
    }

    /// Sets the kernel side `D_K` (odd).
    pub fn d_k(mut self, v: usize) -> Self {
        self.config.d_k = v;
        self
    }

    /// Sets the conv output channel count `O`.
    pub fn out_channels(mut self, v: usize) -> Self {
        self.config.out_channels = v;
        self
    }

    /// Sets the soft-voting head count `Θ`.
    pub fn voters(mut self, v: usize) -> Self {
        self.config.voters = v;
        self
    }

    /// Sets the enhancement switches.
    pub fn enhancements(mut self, e: Enhancements) -> Self {
        self.config.enhancements = e;
        self
    }

    /// Sets the fraction of features treated as high-importance under DVP.
    pub fn high_fraction(mut self, f: f32) -> Self {
        self.config.high_fraction = f;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Config`] when any constraint is violated:
    /// zero extents, `D_L > D_H`, `D_H > 64`, an even kernel, kernel larger
    /// than the input grid, a `high_fraction` outside `(0, 1]`, or fewer
    /// than 2 classes/levels.
    pub fn build(self) -> Result<UniVsaConfig, UniVsaError> {
        let c = self.config;
        let err = |msg: String| Err(UniVsaError::Config(msg));
        if c.d_h == 0 || c.d_l == 0 || c.d_k == 0 || c.out_channels == 0 || c.voters == 0 {
            return err("all of D_H, D_L, D_K, O, Θ must be nonzero".into());
        }
        if c.d_h > 64 {
            return err(format!(
                "D_H = {} exceeds the packed-word limit of 64",
                c.d_h
            ));
        }
        if c.d_l > c.d_h {
            return err(format!("D_L = {} must not exceed D_H = {}", c.d_l, c.d_h));
        }
        if c.d_k.is_multiple_of(2) {
            return err(format!("kernel D_K = {} must be odd", c.d_k));
        }
        if c.d_k > c.width || c.d_k > c.length {
            return err(format!(
                "kernel D_K = {} exceeds the input grid ({}, {})",
                c.d_k, c.width, c.length
            ));
        }
        if c.width == 0 || c.length == 0 {
            return err("input grid must be nonempty".into());
        }
        if c.classes < 2 {
            return err(format!("need at least 2 classes, got {}", c.classes));
        }
        if c.levels < 2 || c.levels > 256 {
            return err(format!("levels M = {} must be in 2..=256", c.levels));
        }
        if !(c.high_fraction > 0.0 && c.high_fraction <= 1.0) {
            return err(format!(
                "high_fraction = {} must be in (0, 1]",
                c.high_fraction
            ));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TaskSpec {
        TaskSpec {
            name: "t".into(),
            width: 8,
            length: 10,
            classes: 3,
            levels: 256,
        }
    }

    #[test]
    fn builder_defaults_are_paper_basis() {
        let c = UniVsaConfig::for_task(&spec()).build().unwrap();
        assert_eq!(c.tuple(), (4, 2, 3, 64, 1));
        assert_eq!(c.levels, 256);
        assert_eq!(c.vsa_dim(), 80);
    }

    #[test]
    fn rejects_d_l_above_d_h() {
        assert!(UniVsaConfig::for_task(&spec())
            .d_h(2)
            .d_l(4)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_even_kernel() {
        assert!(UniVsaConfig::for_task(&spec()).d_k(4).build().is_err());
    }

    #[test]
    fn rejects_oversized_kernel() {
        assert!(UniVsaConfig::for_task(&spec()).d_k(9).build().is_err());
    }

    #[test]
    fn rejects_d_h_over_64() {
        assert!(UniVsaConfig::for_task(&spec())
            .d_h(65)
            .d_l(1)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_zero_components() {
        assert!(UniVsaConfig::for_task(&spec()).voters(0).build().is_err());
        assert!(UniVsaConfig::for_task(&spec())
            .out_channels(0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_high_fraction() {
        assert!(UniVsaConfig::for_task(&spec())
            .high_fraction(0.0)
            .build()
            .is_err());
        assert!(UniVsaConfig::for_task(&spec())
            .high_fraction(1.5)
            .build()
            .is_err());
    }

    #[test]
    fn effective_values_respect_enhancements() {
        let c = UniVsaConfig::for_task(&spec())
            .d_h(8)
            .d_l(2)
            .voters(3)
            .out_channels(16)
            .enhancements(Enhancements::none())
            .build()
            .unwrap();
        assert_eq!(c.effective_voters(), 1);
        assert_eq!(c.encoding_channels(), 8);
        assert_eq!(c.effective_d_l(), 8);
        let c = UniVsaConfig::for_task(&spec())
            .d_h(8)
            .d_l(2)
            .voters(3)
            .out_channels(16)
            .build()
            .unwrap();
        assert_eq!(c.effective_voters(), 3);
        assert_eq!(c.encoding_channels(), 16);
        assert_eq!(c.effective_d_l(), 2);
    }

    #[test]
    fn conv_spec_matches_geometry() {
        let c = UniVsaConfig::for_task(&spec())
            .d_h(8)
            .out_channels(16)
            .build()
            .unwrap();
        let s = c.conv_spec();
        assert_eq!(s.in_channels, 8);
        assert_eq!(s.out_channels, 16);
        assert_eq!(s.height, 8);
        assert_eq!(s.width, 10);
    }
}
