//! Ahead-of-time model compiler: lowers a trained [`UniVsaModel`] into a
//! [`PackedModel`] — a flat, cache-resident artifact whose inference path
//! is straight-line XNOR + popcount with no per-sample re-layout.
//!
//! The compiler performs four lowerings, one per pipeline stage:
//!
//! 1. **DVP → LUT rows.** The per-level ValueBox rows are flattened into
//!    two level-indexed `u64` tables. The low table pre-applies the
//!    constant `+1` fill for channels `D_L..D_H`, so building a sample's
//!    value map is one table read per grid position.
//! 2. **BiConv → hamming thresholds.** Each kernel tap word is pre-masked
//!    to the `D_H` channel lanes, and the bipolar sign test
//!    `Σ (2·popcount(xnor) − D_H) ≥ 0` is rewritten as
//!    `Σ popcount(xor) ≤ ⌊taps·D_H/2⌋` with the per-position tap count
//!    (zero padding shrinks it at the borders) folded into a precomputed
//!    threshold table — the inner loop is a bare `xor` + `count_ones`.
//!    When `D_H ≤ 8` (every Table I configuration), the conv is further
//!    lowered to a **byte-lane SWAR** form: 8 grid positions share one
//!    `u64` (one byte lane each), kernel tap bytes are replicated across
//!    all lanes, and a carry-free SWAR byte popcount accumulates 8
//!    hamming sums per op; the zero-pad ring contributes `popcount(tap)`
//!    per out-of-bounds tap, which compiles into a per-channel corrected
//!    threshold table so the inner loop stays branch-free at the borders.
//! 3. **Encoder → vertical adder tree.** The per-channel XNOR with **F**
//!    (stored pre-complemented so binding is a single `xor`) feeds a
//!    bit-sliced ripple-carry counter: 64 grid positions are majority-
//!    bundled in parallel per word column instead of one bit at a time.
//! 4. **Similarity → contiguous class planes.** All voters' class vectors
//!    live in one flat slab; each dot product is a `dim − 2·xor_popcount`
//!    over adjacent words, dispatched to the active SIMD tier of
//!    [`univsa_bits::kernels`].
//!
//! The packed engine is **bit-identical** to [`UniVsaModel::trace`] by
//! construction — same predictions, same summed similarities — which the
//! proptest suite and the six-task fixture tests enforce at every dispatch
//! tier. [`UniVsaModel::evaluate`] compiles on the fly and runs the packed
//! forward, so training evaluation and search fitness inherit the speedup.
//!
//! The artifact round-trips through its own CRC-protected container
//! ([`save_packed`] / [`load_packed`]) sharing the workspace magic, so a
//! compiled model can ship to a target without the float training stack.

use univsa_bits::kernels::{self, KernelTier};
use univsa_bits::word::{tail_mask, words_for, BITS_PER_WORD};
use univsa_data::Dataset;
use univsa_telemetry::AllocMark;

use crate::infer::stage_mark;
use crate::integrity::crc32;
use crate::{UniVsaError, UniVsaModel};

use std::time::Instant;

/// Upper bound on bit-sliced counter planes; supports up to 2¹⁶ − 1
/// encoding channels, far beyond any valid configuration.
const MAX_PLANES: usize = 16;

/// A trained model lowered to flat packed slabs for straight-line
/// XNOR+popcount inference. Build one with [`PackedModel::compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct PackedModel {
    // geometry (copied out of the config so inference never chases it)
    width: usize,
    length: usize,
    d_h: usize,
    d_k: usize,
    classes: usize,
    levels: usize,
    /// Effective voter count (1 when soft voting is off).
    voters: usize,
    /// Encoding channels: `O` with BiConv, `D_H` without.
    enc_channels: usize,
    biconv: bool,
    /// VSA dimension `D = W·L` and its packed word count.
    dim: usize,
    words: usize,
    /// Per-position routing: `true` → high LUT, `false` → low LUT.
    use_high: Vec<bool>,
    /// Level-indexed channel words from `VB_H` (`levels` entries).
    high_lut: Vec<u64>,
    /// Level-indexed channel words from `VB_L` with the constant `+1`
    /// fill for channels `D_L..D_H` pre-applied (`levels` entries).
    low_lut: Vec<u64>,
    /// Kernel tap words masked to the `D_H` channel lanes,
    /// `o·D_K² + ky·D_K + kx` order (empty when BiConv is off).
    kernel: Vec<u64>,
    /// Per-position hamming-sum threshold `⌊taps·D_H/2⌋` implementing the
    /// zero-padded sign test (empty when BiConv is off).
    conv_thresholds: Vec<u32>,
    /// Complemented feature rows (`enc_channels × words`), so the bipolar
    /// binding `xnor(row, f)` is a single `row ^ f_neg`.
    f_neg: Vec<u64>,
    /// Class planes, `(voter·classes + class)·words` row order.
    class_planes: Vec<u64>,
    /// Number of counter planes for the majority adder tree.
    planes: usize,
    /// Carry-chain constant `2^planes − ⌈enc_channels/2⌉` of the
    /// bit-sliced majority comparison.
    majority_add: u64,
    /// Byte-lane SWAR conv tables, derived (never serialized) whenever
    /// `D_H ≤ 8` and the per-lane hamming sum fits a signed byte.
    swar: Option<SwarConv>,
    tier: KernelTier,
}

/// Derived tables for the byte-lane SWAR conv: 8 grid positions per
/// `u64`, one byte lane each. Rebuilt from the base slabs on both
/// [`PackedModel::compile`] and [`load_packed`].
#[derive(Debug, Clone, PartialEq)]
struct SwarConv {
    /// Kernel tap bytes replicated across all 8 lanes,
    /// `o·D_K² + ky·D_K + kx` order.
    kernel_rep: Vec<u64>,
    /// Per-`(channel, position)` thresholds with the zero-pad ring's
    /// `popcount(tap)` contributions pre-added, so the padded-image SWAR
    /// hamming sum compares directly: `enc_channels × dim`, each ≤ 127.
    thresholds: Vec<u8>,
}

impl SwarConv {
    /// Builds the derived tables, or `None` when the lowering does not
    /// apply (channels wider than a byte lane, or a window hamming sum
    /// that could overflow the `≤ 127` lane budget). Callers skip the
    /// call entirely when BiConv is off.
    fn build(
        d_h: usize,
        k: usize,
        width: usize,
        length: usize,
        enc_channels: usize,
        kernel: &[u64],
        conv_thresholds: &[u32],
    ) -> Option<Self> {
        if d_h > 8 || k * k * d_h > 127 {
            return None;
        }
        let kernel_rep = kernel.iter().map(|&t| t * 0x0101_0101_0101_0101).collect();
        let pad = k / 2;
        let n = width * length;
        let mut thresholds = vec![0u8; enc_channels * n];
        for o in 0..enc_channels {
            let taps = &kernel[o * k * k..(o + 1) * k * k];
            let thr = &mut thresholds[o * n..(o + 1) * n];
            for y in 0..width {
                let ky_lo = pad.saturating_sub(y);
                let ky_hi = k.min(width + pad - y);
                for x in 0..length {
                    let kx_lo = pad.saturating_sub(x);
                    let kx_hi = k.min(length + pad - x);
                    // a zero pad byte xors to popcount(tap) per oob tap
                    let mut oob = 0u32;
                    for ky in 0..k {
                        for kx in 0..k {
                            let inside =
                                (ky_lo..ky_hi).contains(&ky) && (kx_lo..kx_hi).contains(&kx);
                            if !inside {
                                oob += taps[ky * k + kx].count_ones();
                            }
                        }
                    }
                    let pos = y * length + x;
                    // compile-produced thresholds always fit (≤ k²·D_H ≤
                    // 127); a checksum-valid but hand-crafted artifact
                    // with larger values degrades to the scalar path
                    thr[pos] = match u8::try_from(conv_thresholds[pos].saturating_add(oob)) {
                        Ok(t) if t <= 127 => t,
                        _ => return None,
                    };
                }
            }
        }
        Some(Self {
            kernel_rep,
            thresholds,
        })
    }
}

/// Per-byte population counts of a `u64` (carry-free SWAR reduction):
/// byte lane `j` of the result holds `popcount(byte j of x)`.
#[inline]
fn popcount_bytes(mut x: u64) -> u64 {
    x -= (x >> 1) & 0x5555_5555_5555_5555;
    x = (x & 0x3333_3333_3333_3333) + ((x >> 2) & 0x3333_3333_3333_3333);
    (x + (x >> 4)) & 0x0F0F_0F0F_0F0F_0F0F
}

/// One packed inference with the evidence the bit-identity gate compares:
/// the predicted label and the voter-summed similarity totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedInference {
    /// Predicted class (argmax of `totals`, lowest index on ties).
    pub label: usize,
    /// Summed per-class similarities across voters — identical to
    /// [`crate::InferenceTrace::totals`].
    pub totals: Vec<i64>,
}

impl PackedModel {
    /// Compiles a trained model at the process-wide SIMD dispatch tier
    /// ([`kernels::active`]).
    #[must_use]
    pub fn compile(model: &UniVsaModel) -> Self {
        Self::compile_with_kernel(model, kernels::active())
    }

    /// Compiles a trained model with an explicit dispatch tier — the
    /// bit-identity tests force every tier through this. An unavailable
    /// tier degrades to the portable loop inside the kernel calls.
    #[must_use]
    pub fn compile_with_kernel(model: &UniVsaModel, tier: KernelTier) -> Self {
        let cfg = model.config();
        let (width, length) = (cfg.width, cfg.length);
        let dim = cfg.vsa_dim();
        let words = words_for(dim);
        let d_h = cfg.d_h;
        let chan_mask = low_mask(d_h);
        let biconv = cfg.enhancements.biconv;
        let enc_channels = cfg.encoding_channels();
        let voters = cfg.effective_voters();

        let use_high: Vec<bool> = (0..cfg.features())
            .map(|i| model.mask().is_high(i))
            .collect();
        let high_lut: Vec<u64> = (0..cfg.levels)
            .map(|l| model.v_h().row(l).as_words().first().copied().unwrap_or(0))
            .collect();
        let d_l = cfg.effective_d_l();
        // channels d_l..d_h of a low-importance feature are constant +1
        let fill = if d_l == d_h {
            0
        } else {
            low_mask(d_h) & !low_mask(d_l)
        };
        let low_lut: Vec<u64> = (0..cfg.levels)
            .map(|l| model.v_l().row(l).as_words().first().copied().unwrap_or(0) | fill)
            .collect();

        let kernel: Vec<u64> = model
            .kernel_words()
            .iter()
            .map(|&w| w & chan_mask)
            .collect();
        let conv_thresholds = if biconv {
            conv_threshold_table(width, length, cfg.d_k, d_h)
        } else {
            Vec::new()
        };

        let mut f_neg = Vec::with_capacity(enc_channels * words);
        for o in 0..enc_channels {
            f_neg.extend(model.f().row(o).as_words().iter().map(|&w| !w));
        }

        let mut class_planes = Vec::with_capacity(voters * cfg.classes * words);
        for set in model.class_sets() {
            for j in 0..cfg.classes {
                class_planes.extend_from_slice(set.row(j).as_words());
            }
        }

        // counter planes sized to hold counts up to enc_channels
        let planes = (usize::BITS - enc_channels.leading_zeros()) as usize;
        assert!(planes <= MAX_PLANES, "encoding channel count out of range");
        // majority: ones ≥ ⌈enc/2⌉ ⟺ carry out of ones + (2^planes − ⌈enc/2⌉)
        let majority_add = (1u64 << planes) - (enc_channels as u64).div_ceil(2);

        let swar = biconv
            .then(|| {
                SwarConv::build(
                    d_h,
                    cfg.d_k,
                    width,
                    length,
                    enc_channels,
                    &kernel,
                    &conv_thresholds,
                )
            })
            .flatten();

        Self {
            width,
            length,
            d_h,
            d_k: cfg.d_k,
            classes: cfg.classes,
            levels: cfg.levels,
            voters,
            enc_channels,
            biconv,
            dim,
            words,
            use_high,
            high_lut,
            low_lut,
            kernel,
            conv_thresholds,
            f_neg,
            class_planes,
            planes,
            majority_add,
            swar,
            tier,
        }
    }

    /// The SIMD dispatch tier this artifact was compiled for.
    #[must_use]
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// VSA dimension `D = W·L`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Grid height `W`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid width `L`.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Discretization levels `M`.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Total artifact size in bits (every packed slab plus the tables).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        (self.high_lut.len() + self.low_lut.len() + self.kernel.len()) * 64
            + self.use_high.len()
            + self.conv_thresholds.len() * 32
            + (self.f_neg.len() + self.class_planes.len()) * 64
    }

    /// Classifies one sample. Bit-identical to [`UniVsaModel::infer`].
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] if the value count or any level is
    /// out of range, mirroring the reference path.
    pub fn infer(&self, values: &[u8]) -> Result<usize, UniVsaError> {
        Ok(self.infer_detailed(values)?.label)
    }

    /// Classifies one sample and returns the similarity totals the
    /// bit-identity gate compares against [`UniVsaModel::trace`].
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] on geometry mismatch.
    pub fn infer_detailed(&self, values: &[u8]) -> Result<PackedInference, UniVsaError> {
        // mirror the reference path's per-stage telemetry so observability
        // (spans, allocation attribution) is engine-independent; all of it
        // is a no-op when telemetry is off
        let _sample_span = univsa_telemetry::span("infer", "sample");
        let mut timer = univsa_telemetry::enabled().then(Instant::now);
        let mut mem =
            (timer.is_some() && univsa_telemetry::mem_tracking_enabled()).then(AllocMark::now);

        let vm = self.build_value_map(values)?;
        stage_mark(&mut timer, &mut mem, "dvp");
        let conv = if self.biconv {
            self.conv(&vm)
        } else {
            self.channels_as_planes(&vm)
        };
        stage_mark(&mut timer, &mut mem, "biconv");
        let encoded = self.encode(&conv);
        stage_mark(&mut timer, &mut mem, "encode");
        let mut totals = vec![0i64; self.classes];
        for v in 0..self.voters {
            for (j, t) in totals.iter_mut().enumerate() {
                let base = (v * self.classes + j) * self.words;
                let row = &self.class_planes[base..base + self.words];
                let ham = kernels::xor_popcount_with(self.tier, &encoded, row);
                *t += self.dim as i64 - 2 * ham as i64;
            }
        }
        let label = totals
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        stage_mark(&mut timer, &mut mem, "similarity");
        if timer.is_some() {
            univsa_telemetry::counter("infer.samples", 1);
            univsa_telemetry::record_prediction(
                label as u32,
                crate::infer::similarity_margin(&totals),
            );
        }
        Ok(PackedInference { label, totals })
    }

    /// Classifies a batch of samples, fanning out over the `univsa-par`
    /// worker pool; predictions come back in sample order at every thread
    /// count.
    ///
    /// # Errors
    ///
    /// Returns the first per-sample [`UniVsaError::Input`] in sample
    /// order.
    pub fn infer_batch<S: AsRef<[u8]> + Sync>(
        &self,
        samples: &[S],
    ) -> Result<Vec<usize>, UniVsaError> {
        univsa_par::map_indexed("infer.batch", samples.len(), |i| {
            self.infer(samples[i].as_ref())
        })
        .into_iter()
        .collect()
    }

    /// Accuracy over a labelled dataset via [`PackedModel::infer_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] if the dataset is empty or any
    /// sample's geometry disagrees with the artifact.
    pub fn evaluate(&self, dataset: &Dataset) -> Result<f64, UniVsaError> {
        if dataset.is_empty() {
            return Err(UniVsaError::Input(
                "cannot evaluate on an empty dataset".into(),
            ));
        }
        let samples = dataset.samples();
        let values: Vec<&[u8]> = samples.iter().map(|s| s.values.as_slice()).collect();
        let preds = self.infer_batch(&values)?;
        let correct = preds
            .iter()
            .zip(samples)
            .filter(|(p, s)| **p == s.label)
            .count();
        Ok(correct as f64 / samples.len() as f64)
    }

    /// Stage 1: one LUT read per grid position (DVP lowered).
    fn build_value_map(&self, values: &[u8]) -> Result<Vec<u64>, UniVsaError> {
        let n = self.width * self.length;
        if values.len() != n {
            return Err(UniVsaError::Input(format!(
                "expected {n} values for a ({}, {}) grid, got {}",
                self.width,
                self.length,
                values.len()
            )));
        }
        let mut words = Vec::with_capacity(n);
        for (i, &level) in values.iter().enumerate() {
            let level = level as usize;
            if level >= self.levels {
                let table = if self.use_high[i] { "VB_H" } else { "VB_L" };
                return Err(UniVsaError::Input(format!(
                    "level {level} out of range for {table} table of {} rows",
                    self.levels
                )));
            }
            words.push(if self.use_high[i] {
                self.high_lut[level]
            } else {
                self.low_lut[level]
            });
        }
        Ok(words)
    }

    /// Stage 2 (BiConv): packed conv planes, `enc_channels × words`,
    /// through the byte-lane SWAR lowering when it applies and the
    /// word-per-position scalar loop otherwise. Both are exact integer
    /// arithmetic — bit-identical by construction.
    fn conv(&self, vm: &[u64]) -> Vec<u64> {
        match &self.swar {
            Some(sw) => self.conv_swar(vm, sw),
            None => self.conv_scalar(vm),
        }
    }

    /// Byte-lane SWAR conv: the value map becomes a zero-padded byte
    /// image (one `D_H`-bit byte per grid position), each unaligned
    /// 8-byte load covers 8 output positions at once, and one SWAR byte
    /// popcount per tap accumulates all 8 hamming sums carry-free. The
    /// pad ring's spurious `popcount(tap)` contributions are pre-added
    /// into `sw.thresholds`, so no border special-casing remains.
    fn conv_swar(&self, vm: &[u64], sw: &SwarConv) -> Vec<u64> {
        let (w, l, k) = (self.width, self.length, self.d_k);
        let pad = k / 2;
        let lp = l + 2 * pad;
        // padded byte image (+8 slack so every lane-group load is in
        // bounds; garbage lanes past the row end are never consumed)
        let mut img = vec![0u8; (w + 2 * pad) * lp + 8];
        for y in 0..w {
            let base = (y + pad) * lp + pad;
            for x in 0..l {
                img[base + x] = vm[y * l + x] as u8;
            }
        }
        let groups = l.div_ceil(8);
        let mut out = vec![0u64; self.enc_channels * self.words];
        for o in 0..self.enc_channels {
            let rep = &sw.kernel_rep[o * k * k..(o + 1) * k * k];
            let thr = &sw.thresholds[o * self.dim..(o + 1) * self.dim];
            let plane = &mut out[o * self.words..(o + 1) * self.words];
            for y in 0..w {
                for g in 0..groups {
                    let x0 = g * 8;
                    let mut acc = 0u64;
                    for ky in 0..k {
                        let row = (y + ky) * lp + x0;
                        for kx in 0..k {
                            let src = &img[row + kx..row + kx + 8];
                            let lanes8 = u64::from_le_bytes(src.try_into().expect("8 bytes"));
                            acc += popcount_bytes(lanes8 ^ rep[ky * k + kx]);
                        }
                    }
                    let lanes = (l - x0).min(8);
                    let hams = acc.to_le_bytes();
                    let mut bits = 0u64;
                    for (j, &ham) in hams.iter().enumerate().take(lanes) {
                        bits |= u64::from(ham <= thr[y * l + x0 + j]) << j;
                    }
                    let pos = y * l + x0;
                    let (wi, sh) = (pos / BITS_PER_WORD, pos % BITS_PER_WORD);
                    plane[wi] |= bits << sh;
                    if sh + lanes > BITS_PER_WORD {
                        // group straddles a word boundary (sh > 56 here,
                        // so the shift below is in range)
                        plane[wi + 1] |= bits >> (BITS_PER_WORD - sh);
                    }
                }
            }
        }
        out
    }

    /// Scalar conv fallback (one word per position). Per tap the
    /// sign-test accumulation is a bare `xor` + `count_ones` against the
    /// pre-masked kernel word; the per-position threshold table absorbs
    /// the zero-padded border tap counts.
    fn conv_scalar(&self, vm: &[u64]) -> Vec<u64> {
        let (w, l, k) = (self.width, self.length, self.d_k);
        let pad = k / 2;
        let mut out = vec![0u64; self.enc_channels * self.words];
        for o in 0..self.enc_channels {
            let taps = &self.kernel[o * k * k..(o + 1) * k * k];
            let plane = &mut out[o * self.words..(o + 1) * self.words];
            for y in 0..w {
                // kernel rows whose source row y + ky − pad is in bounds
                let ky_lo = pad.saturating_sub(y);
                let ky_hi = k.min(w + pad - y);
                for x in 0..l {
                    let kx_lo = pad.saturating_sub(x);
                    let kx_hi = k.min(l + pad - x);
                    let mut ham = 0u64;
                    for ky in ky_lo..ky_hi {
                        let row = (y + ky - pad) * l + x;
                        let tap_row = &taps[ky * k..ky * k + k];
                        for (kx, &tap) in tap_row.iter().enumerate().take(kx_hi).skip(kx_lo) {
                            let pos = row + kx - pad;
                            ham += u64::from((vm[pos] ^ tap).count_ones());
                        }
                    }
                    let pos = y * l + x;
                    if ham <= u64::from(self.conv_thresholds[pos]) {
                        plane[pos / BITS_PER_WORD] |= 1u64 << (pos % BITS_PER_WORD);
                    }
                }
            }
        }
        out
    }

    /// Stage 2 (BiConv off): transpose the value map's channel words into
    /// `D_H` packed channel planes.
    fn channels_as_planes(&self, vm: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.enc_channels * self.words];
        for (pos, &word) in vm.iter().enumerate() {
            let (wi, bit) = (pos / BITS_PER_WORD, pos % BITS_PER_WORD);
            for c in 0..self.enc_channels {
                out[c * self.words + wi] |= ((word >> c) & 1) << bit;
            }
        }
        out
    }

    /// Stage 3: majority bundling via a bit-sliced ripple-carry counter —
    /// 64 positions per word column count their `+1` votes in parallel,
    /// then one carry-chain pass against `majority_add` evaluates
    /// `ones ≥ ⌈enc/2⌉` (the Bundler's `sgn(0) = +1` tiebreak) per lane.
    fn encode(&self, conv: &[u64]) -> Vec<u64> {
        let mut encoded = vec![0u64; self.words];
        for wi in 0..self.words {
            let mut planes = [0u64; MAX_PLANES];
            for o in 0..self.enc_channels {
                // xnor(conv_row, f_row) == conv_row ^ !f_row
                let mut carry = conv[o * self.words + wi] ^ self.f_neg[o * self.words + wi];
                let mut j = 0;
                while carry != 0 {
                    let t = planes[j] & carry;
                    planes[j] ^= carry;
                    carry = t;
                    j += 1;
                }
            }
            let mut carry = 0u64;
            for (j, &plane) in planes.iter().enumerate().take(self.planes) {
                carry = if (self.majority_add >> j) & 1 == 1 {
                    plane | carry
                } else {
                    plane & carry
                };
            }
            encoded[wi] = carry;
        }
        // tail lanes beyond dim carried garbage votes from !f; restore
        // canonical form before the dot products
        if self.words > 0 {
            encoded[self.words - 1] &= tail_mask(self.dim);
        }
        encoded
    }
}

/// Per-position hamming thresholds `⌊taps·D_H/2⌋` for the zero-padded
/// sign test: `acc ≥ 0 ⟺ Σ ham ≤ ⌊taps·D_H/2⌋` with `taps` the number of
/// in-bounds kernel taps at that grid position.
fn conv_threshold_table(w: usize, l: usize, k: usize, d_h: usize) -> Vec<u32> {
    let pad = k / 2;
    let span = |i: usize, n: usize| -> usize { k.min(n + pad - i) - pad.saturating_sub(i) };
    let mut out = Vec::with_capacity(w * l);
    for y in 0..w {
        let ty = span(y, w);
        for x in 0..l {
            let taps = ty * span(x, l);
            out.push((taps * d_h / 2) as u32);
        }
    }
    out
}

/// Mask with the low `bits` bits set (`bits ≤ 64`).
fn low_mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

// ---------------------------------------------------------------------------
// artifact container: framed, CRC-protected round-trip
// ---------------------------------------------------------------------------

const PACKED_MAGIC: &[u8; 8] = b"UNIVSAPK";
const PACKED_VERSION: u32 = 1;

/// Serializes a compiled artifact to its framed container: magic, version,
/// payload length, payload, and a trailing CRC32 of the payload. Loading
/// re-computes the checksum ([`load_packed`]), so storage or transit
/// corruption is caught before the artifact can mispredict — the same
/// integrity contract as the v2 model container.
///
/// # Errors
///
/// Returns [`UniVsaError::Serialize`] if a section exceeds the container's
/// 32-bit limits (impossible for valid configurations).
pub fn save_packed(packed: &PackedModel) -> Result<Vec<u8>, UniVsaError> {
    let u32_of = |v: usize, what: &str| -> Result<u32, UniVsaError> {
        u32::try_from(v)
            .map_err(|_| UniVsaError::Serialize(format!("{what} = {v} exceeds the u32 limit")))
    };
    let mut p = Vec::new();
    for (v, what) in [
        (packed.width, "width"),
        (packed.length, "length"),
        (packed.d_h, "d_h"),
        (packed.d_k, "d_k"),
        (packed.classes, "classes"),
        (packed.levels, "levels"),
        (packed.voters, "voters"),
        (packed.enc_channels, "enc_channels"),
        (packed.planes, "planes"),
    ] {
        p.extend_from_slice(&u32_of(v, what)?.to_le_bytes());
    }
    p.push(u8::from(packed.biconv));
    p.extend_from_slice(&packed.majority_add.to_le_bytes());

    p.extend_from_slice(&u32_of(packed.use_high.len(), "mask length")?.to_le_bytes());
    let mut bits = vec![0u8; packed.use_high.len().div_ceil(8)];
    for (i, &hi) in packed.use_high.iter().enumerate() {
        if hi {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    p.extend_from_slice(&bits);

    for slab in [
        &packed.high_lut,
        &packed.low_lut,
        &packed.kernel,
        &packed.f_neg,
        &packed.class_planes,
    ] {
        p.extend_from_slice(&u32_of(slab.len(), "slab length")?.to_le_bytes());
        for w in slab.iter() {
            p.extend_from_slice(&w.to_le_bytes());
        }
    }
    p.extend_from_slice(&u32_of(packed.conv_thresholds.len(), "thresholds")?.to_le_bytes());
    for t in &packed.conv_thresholds {
        p.extend_from_slice(&t.to_le_bytes());
    }

    let mut out = Vec::with_capacity(20 + p.len());
    out.extend_from_slice(PACKED_MAGIC);
    out.extend_from_slice(&PACKED_VERSION.to_le_bytes());
    out.extend_from_slice(&(p.len() as u32).to_le_bytes());
    out.extend_from_slice(&p);
    out.extend_from_slice(&crc32(&p).to_le_bytes());
    Ok(out)
}

/// Whether a buffer carries the packed-artifact magic (so CLI surfaces can
/// distinguish a compiled artifact from a model container).
#[must_use]
pub fn is_packed_artifact(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && &bytes[..8] == PACKED_MAGIC
}

/// Restores a compiled artifact written by [`save_packed`], verifying the
/// payload checksum. The artifact runs at the current process's dispatch
/// tier (the tier is a compilation detail of *this* process, not of the
/// stored bits — every tier computes identical results).
///
/// # Errors
///
/// Returns [`UniVsaError::Serialize`] on a bad magic, version, or layout,
/// and [`UniVsaError::Integrity`] when the payload fails its checksum.
pub fn load_packed(bytes: &[u8]) -> Result<PackedModel, UniVsaError> {
    if bytes.len() < 20 {
        return Err(UniVsaError::Serialize("buffer too short".into()));
    }
    if !is_packed_artifact(bytes) {
        return Err(UniVsaError::Serialize("bad packed-artifact magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != PACKED_VERSION {
        return Err(UniVsaError::Serialize(format!(
            "unsupported packed-artifact version {version}"
        )));
    }
    let len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let rest = &bytes[16..];
    if rest.len() < len + 4 {
        return Err(UniVsaError::Serialize(format!(
            "payload truncated: expected {} bytes, have {}",
            len + 4,
            rest.len()
        )));
    }
    let payload = &rest[..len];
    let stored = u32::from_le_bytes(rest[len..len + 4].try_into().expect("4 bytes"));
    if crc32(payload) != stored {
        return Err(UniVsaError::Integrity(
            "packed artifact failed its payload checksum".into(),
        ));
    }

    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], UniVsaError> {
        let end = pos.checked_add(n).filter(|&e| e <= payload.len());
        match end {
            Some(end) => {
                let s = &payload[*pos..end];
                *pos = end;
                Ok(s)
            }
            None => Err(UniVsaError::Serialize(format!(
                "payload truncated at offset {pos}"
            ))),
        }
    };
    let u32_at = |pos: &mut usize| -> Result<usize, UniVsaError> {
        Ok(u32::from_le_bytes(take(pos, 4)?.try_into().expect("4 bytes")) as usize)
    };

    let mut dims = [0usize; 9];
    for d in &mut dims {
        *d = u32_at(&mut pos)?;
    }
    let [width, length, d_h, d_k, classes, levels, voters, enc_channels, planes] = dims;
    let biconv = take(&mut pos, 1)?[0] != 0;
    let majority_add = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));

    let mask_len = u32_at(&mut pos)?;
    let packed_bits = take(&mut pos, mask_len.div_ceil(8))?;
    let use_high: Vec<bool> = (0..mask_len)
        .map(|i| packed_bits[i / 8] >> (i % 8) & 1 == 1)
        .collect();

    let mut slabs: [Vec<u64>; 5] = Default::default();
    for slab in &mut slabs {
        let n = u32_at(&mut pos)?;
        if n.saturating_mul(8) > payload.len() {
            return Err(UniVsaError::Serialize(format!(
                "slab of {n} words larger than the payload"
            )));
        }
        *slab = (0..n)
            .map(|_| {
                Ok(u64::from_le_bytes(
                    take(&mut pos, 8)?.try_into().expect("8 bytes"),
                ))
            })
            .collect::<Result<_, UniVsaError>>()?;
    }
    let [high_lut, low_lut, kernel, f_neg, class_planes] = slabs;
    let n_thresh = u32_at(&mut pos)?;
    if n_thresh.saturating_mul(4) > payload.len() {
        return Err(UniVsaError::Serialize(format!(
            "threshold table of {n_thresh} entries larger than the payload"
        )));
    }
    let conv_thresholds: Vec<u32> = (0..n_thresh)
        .map(|_| {
            Ok(u32::from_le_bytes(
                take(&mut pos, 4)?.try_into().expect("4 bytes"),
            ))
        })
        .collect::<Result<_, UniVsaError>>()?;
    if pos != payload.len() {
        return Err(UniVsaError::Serialize(format!(
            "{} trailing payload bytes",
            payload.len() - pos
        )));
    }

    let dim = width * length;
    let words = words_for(dim);
    let consistent = use_high.len() == dim
        && high_lut.len() == levels
        && low_lut.len() == levels
        && f_neg.len() == enc_channels * words
        && class_planes.len() == voters * classes * words
        && planes <= MAX_PLANES
        && if biconv {
            kernel.len() == enc_channels * d_k * d_k && conv_thresholds.len() == dim
        } else {
            kernel.is_empty() && conv_thresholds.is_empty()
        };
    if !consistent {
        return Err(UniVsaError::Serialize(
            "packed artifact sections are mutually inconsistent".into(),
        ));
    }

    let swar = biconv
        .then(|| {
            SwarConv::build(
                d_h,
                d_k,
                width,
                length,
                enc_channels,
                &kernel,
                &conv_thresholds,
            )
        })
        .flatten();
    Ok(PackedModel {
        width,
        length,
        d_h,
        d_k,
        classes,
        levels,
        voters,
        enc_channels,
        biconv,
        dim,
        words,
        use_high,
        high_lut,
        low_lut,
        kernel,
        conv_thresholds,
        f_neg,
        class_planes,
        planes,
        majority_add,
        swar,
        tier: kernels::active(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::tests::random_model;
    use crate::Enhancements;

    fn values(seed: usize) -> Vec<u8> {
        (0..20).map(|i| ((i * 3 + seed * 7) % 8) as u8).collect()
    }

    #[test]
    fn packed_matches_reference_labels_and_totals() {
        for seed in 0..8u64 {
            let model = random_model(seed, Enhancements::all());
            let packed = PackedModel::compile(&model);
            for s in 0..6 {
                let v = values(s);
                let t = model.trace(&v).unwrap();
                let p = packed.infer_detailed(&v).unwrap();
                assert_eq!(p.label, t.label, "seed {seed} sample {s}");
                assert_eq!(p.totals, t.totals, "seed {seed} sample {s}");
            }
        }
    }

    #[test]
    fn packed_matches_reference_without_biconv() {
        let e = Enhancements {
            biconv: false,
            ..Enhancements::all()
        };
        for seed in 0..4u64 {
            let model = random_model(seed, e);
            let packed = PackedModel::compile(&model);
            for s in 0..4 {
                let v = values(s);
                let t = model.trace(&v).unwrap();
                let p = packed.infer_detailed(&v).unwrap();
                assert_eq!((p.label, &p.totals), (t.label, &t.totals), "seed {seed}");
            }
        }
    }

    #[test]
    fn every_tier_is_bit_identical() {
        let model = random_model(11, Enhancements::all());
        let reference = model.trace(&values(0)).unwrap();
        for tier in KernelTier::ALL {
            let packed = PackedModel::compile_with_kernel(&model, tier);
            let p = packed.infer_detailed(&values(0)).unwrap();
            assert_eq!(p.label, reference.label, "tier {tier}");
            assert_eq!(p.totals, reference.totals, "tier {tier}");
        }
    }

    #[test]
    fn batch_preserves_sample_order() {
        let model = random_model(3, Enhancements::all());
        let packed = PackedModel::compile(&model);
        let batch: Vec<Vec<u8>> = (0..10).map(values).collect();
        let labels = packed.infer_batch(&batch).unwrap();
        for (i, v) in batch.iter().enumerate() {
            assert_eq!(labels[i], model.infer(v).unwrap(), "sample {i}");
        }
    }

    #[test]
    fn scalar_fallback_matches_reference_when_swar_is_out_of_range() {
        // D_H > 8 exceeds a byte lane, so the SWAR lowering must bow out
        // and the word-per-position loop carries the same bit-identity
        use crate::{Mask, UniVsaConfig};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use univsa_bits::BitMatrix;
        let spec = univsa_data::TaskSpec {
            name: "wide".into(),
            width: 4,
            length: 5,
            classes: 3,
            levels: 8,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(12)
            .d_l(4)
            .d_k(3)
            .out_channels(6)
            .voters(2)
            .enhancements(Enhancements::all())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mask = Mask::from_bits((0..cfg.features()).map(|_| rng.gen::<bool>()).collect());
        let v_h = BitMatrix::random(cfg.levels, cfg.d_h, &mut rng);
        let v_l = BitMatrix::random(cfg.levels, cfg.effective_d_l(), &mut rng);
        let kernel = (0..cfg.out_channels * cfg.d_k * cfg.d_k)
            .map(|_| rng.gen::<u64>())
            .collect();
        let f = BitMatrix::random(cfg.encoding_channels(), cfg.vsa_dim(), &mut rng);
        let c = (0..cfg.effective_voters())
            .map(|_| BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng))
            .collect();
        let model = crate::UniVsaModel::from_parts(cfg, mask, v_h, v_l, kernel, f, c).unwrap();
        let packed = PackedModel::compile(&model);
        assert!(
            packed.swar.is_none(),
            "D_H = 12 must not take the SWAR path"
        );
        for s in 0..6 {
            let v = values(s);
            let t = model.trace(&v).unwrap();
            let p = packed.infer_detailed(&v).unwrap();
            assert_eq!((p.label, &p.totals), (t.label, &t.totals), "sample {s}");
        }
    }

    #[test]
    fn paper_geometries_take_the_swar_path() {
        for task in univsa_data::tasks::all(3) {
            let (d_h, _, d_k, _, _) =
                univsa_data::tasks::paper_config_tuple(&task.spec.name).unwrap();
            assert!(
                d_h <= 8 && d_k * d_k * d_h <= 127,
                "{} geometry left the SWAR fast path",
                task.spec.name
            );
        }
    }

    #[test]
    fn rejects_bad_input_like_reference() {
        let model = random_model(5, Enhancements::all());
        let packed = PackedModel::compile(&model);
        assert!(packed.infer(&[0u8; 3]).is_err());
        let mut v = vec![0u8; 20];
        v[0] = 8; // level out of range for M = 8
        assert!(packed.infer(&v).is_err());
    }

    #[test]
    fn artifact_round_trips() {
        let model = random_model(9, Enhancements::all());
        let packed = PackedModel::compile(&model);
        let bytes = save_packed(&packed).unwrap();
        assert!(is_packed_artifact(&bytes));
        let restored = load_packed(&bytes).unwrap();
        assert_eq!(restored, packed);
        let v = values(2);
        assert_eq!(restored.infer(&v).unwrap(), model.infer(&v).unwrap());
    }

    #[test]
    fn artifact_detects_corruption() {
        let model = random_model(10, Enhancements::all());
        let bytes = save_packed(&PackedModel::compile(&model)).unwrap();
        // flip a weight bit mid-payload
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 1;
        let err = load_packed(&corrupt).unwrap_err();
        assert!(
            matches!(err, UniVsaError::Integrity(_) | UniVsaError::Serialize(_)),
            "unexpected error: {err}"
        );
        // truncation and bad magic are serialization errors
        assert!(load_packed(&bytes[..10]).is_err());
        let mut bad = bytes;
        bad[0] = b'X';
        assert!(load_packed(&bad).is_err());
    }

    #[test]
    fn evaluate_matches_reference_engine() {
        let task = univsa_data::tasks::bci3v(1);
        let model = {
            // training-free: a random model still defines one fixed
            // function of the input, which both engines must agree on
            use crate::{Mask, UniVsaConfig};
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            use univsa_bits::BitMatrix;
            let cfg = UniVsaConfig::for_task(&task.spec)
                .d_h(8)
                .d_l(1)
                .d_k(3)
                .out_channels(16)
                .voters(3)
                .build()
                .unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            let mask = Mask::from_bits((0..cfg.features()).map(|i| i % 2 == 0).collect());
            crate::UniVsaModel::from_parts(
                cfg.clone(),
                mask,
                BitMatrix::random(cfg.levels, cfg.d_h, &mut rng),
                BitMatrix::random(cfg.levels, cfg.effective_d_l(), &mut rng),
                (0..cfg.out_channels * cfg.d_k * cfg.d_k)
                    .map(|_| rand::Rng::gen::<u64>(&mut rng))
                    .collect(),
                BitMatrix::random(cfg.encoding_channels(), cfg.vsa_dim(), &mut rng),
                (0..cfg.effective_voters())
                    .map(|_| BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng))
                    .collect(),
            )
            .unwrap()
        };
        let packed = PackedModel::compile(&model);
        let acc = packed.evaluate(&task.test).unwrap();
        // the reference evaluate now routes through the packed engine, so
        // cross-check sample by sample against the reference trace
        let mut correct = 0usize;
        for s in task.test.samples() {
            let t = model.trace(&s.values).unwrap();
            assert_eq!(packed.infer(&s.values).unwrap(), t.label);
            if t.label == s.label {
                correct += 1;
            }
        }
        assert_eq!(acc, correct as f64 / task.test.len() as f64);
    }
}
