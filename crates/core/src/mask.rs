//! Feature-importance mask for discriminated value projection.

use univsa_data::Dataset;

use crate::UniVsaError;

/// The input-wise binary importance mask of the paper's DVP module.
///
/// Features marked `true` are *high-importance* and routed through the wide
/// ValueBox `VB_H`; features marked `false` are low-importance and use the
/// narrow `VB_L`.
///
/// The paper derives the mask with a wrapper feature-subset-selection
/// strategy; this implementation ranks features by the mutual information
/// between their (coarsely re-binned) value and the class label on the
/// training split, then keeps the top fraction — the same role with a much
/// cheaper, deterministic estimator.
///
/// # Examples
///
/// ```
/// use univsa::Mask;
/// let m = Mask::all_high(4);
/// assert_eq!(m.high_count(), 4);
/// assert!(m.is_high(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    bits: Vec<bool>,
}

impl Mask {
    /// A mask marking every feature high-importance (DVP disabled).
    pub fn all_high(features: usize) -> Self {
        Self {
            bits: vec![true; features],
        }
    }

    /// Builds a mask from explicit per-feature flags.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Learns a mask from a training split: ranks features by mutual
    /// information with the label and marks the top `high_fraction` as
    /// high-importance (at least one feature is always high).
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] if the dataset is empty or
    /// `high_fraction` is outside `(0, 1]`.
    pub fn learn(dataset: &Dataset, high_fraction: f32) -> Result<Self, UniVsaError> {
        if dataset.is_empty() {
            return Err(UniVsaError::Input(
                "cannot learn a mask from an empty dataset".into(),
            ));
        }
        if !(high_fraction > 0.0 && high_fraction <= 1.0) {
            return Err(UniVsaError::Input(format!(
                "high_fraction {high_fraction} must be in (0, 1]"
            )));
        }
        let n = dataset.spec().features();
        let scores = mutual_information(dataset);
        let mut order: Vec<usize> = (0..n).collect();
        // descending score; ties broken by index for determinism
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let keep = ((n as f32 * high_fraction).round() as usize).clamp(1, n);
        let mut bits = vec![false; n];
        for &i in order.iter().take(keep) {
            bits[i] = true;
        }
        Ok(Self { bits })
    }

    /// Number of features covered by the mask.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the mask covers zero features.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether feature `i` is high-importance.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn is_high(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Count of high-importance features.
    pub fn high_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// The raw flags.
    #[inline]
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }
}

/// Per-feature mutual information `I(feature; label)` with features
/// re-binned to 8 coarse bins (MI over 256 raw levels would be hopelessly
/// undersampled on small training sets).
fn mutual_information(dataset: &Dataset) -> Vec<f64> {
    const BINS: usize = 8;
    let n = dataset.spec().features();
    let classes = dataset.spec().classes;
    let levels = dataset.spec().levels;
    let total = dataset.len() as f64;
    let class_counts = dataset.class_counts();
    let p_class: Vec<f64> = class_counts.iter().map(|&c| c as f64 / total).collect();

    let mut scores = vec![0.0f64; n];
    let mut joint = vec![0usize; BINS * classes];
    for (f, score) in scores.iter_mut().enumerate() {
        joint.fill(0);
        for s in dataset.samples() {
            let bin = (s.values[f] as usize * BINS) / levels;
            joint[bin * classes + s.label] += 1;
        }
        let mut mi = 0.0f64;
        let mut occupied_bins = 0usize;
        for bin in 0..BINS {
            let p_bin: f64 = joint[bin * classes..(bin + 1) * classes]
                .iter()
                .sum::<usize>() as f64
                / total;
            if p_bin == 0.0 {
                continue;
            }
            occupied_bins += 1;
            for c in 0..classes {
                let pj = joint[bin * classes + c] as f64 / total;
                if pj > 0.0 && p_class[c] > 0.0 {
                    mi += pj * (pj / (p_bin * p_class[c])).ln();
                }
            }
        }
        // Miller–Madow bias correction: a feature spread over many bins
        // accumulates ≈ (B−1)(C−1)/(2N) nats of spurious MI from sampling
        // noise alone; without the correction, wide pure-noise features
        // outrank tight but uninformative ones.
        let bias = (occupied_bins.saturating_sub(1) * (classes - 1)) as f64 / (2.0 * total);
        *score = mi - bias;
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa_data::{Sample, TaskSpec};

    /// Dataset where feature 0 fully determines the label and feature 1 is
    /// constant noise.
    fn informative_dataset() -> Dataset {
        let spec = TaskSpec {
            name: "t".into(),
            width: 1,
            length: 3,
            classes: 2,
            levels: 256,
        };
        let mut samples = Vec::new();
        for i in 0..40 {
            let label = i % 2;
            samples.push(Sample {
                values: vec![if label == 0 { 10 } else { 240 }, 128, (i * 6) as u8],
                label,
            });
        }
        Dataset::new(spec, samples).unwrap()
    }

    #[test]
    fn informative_feature_ranked_high() {
        let ds = informative_dataset();
        let m = Mask::learn(&ds, 1.0 / 3.0).unwrap();
        assert_eq!(m.high_count(), 1);
        assert!(m.is_high(0), "the label-determining feature must be kept");
    }

    #[test]
    fn all_high_when_fraction_one() {
        let ds = informative_dataset();
        let m = Mask::learn(&ds, 1.0).unwrap();
        assert_eq!(m.high_count(), 3);
    }

    #[test]
    fn at_least_one_high() {
        let ds = informative_dataset();
        let m = Mask::learn(&ds, 0.0001).unwrap();
        assert_eq!(m.high_count(), 1);
    }

    #[test]
    fn rejects_empty_dataset() {
        let spec = TaskSpec {
            name: "t".into(),
            width: 1,
            length: 1,
            classes: 2,
            levels: 2,
        };
        let ds = Dataset::new(spec, vec![]).unwrap();
        assert!(Mask::learn(&ds, 0.5).is_err());
    }

    #[test]
    fn rejects_bad_fraction() {
        let ds = informative_dataset();
        assert!(Mask::learn(&ds, 0.0).is_err());
        assert!(Mask::learn(&ds, 1.5).is_err());
    }

    #[test]
    fn deterministic() {
        let ds = informative_dataset();
        assert_eq!(
            Mask::learn(&ds, 0.5).unwrap(),
            Mask::learn(&ds, 0.5).unwrap()
        );
    }

    #[test]
    fn from_bits_roundtrip() {
        let m = Mask::from_bits(vec![true, false, true]);
        assert_eq!(m.as_bits(), &[true, false, true]);
        assert_eq!(m.high_count(), 2);
        assert_eq!(m.len(), 3);
    }
}
