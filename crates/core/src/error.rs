//! Error type for the UniVSA crate.

use std::error::Error;
use std::fmt;

use univsa_bits::DimMismatchError;
use univsa_tensor::ShapeError;

/// Errors produced by UniVSA configuration, training, and inference.
#[derive(Debug)]
pub enum UniVsaError {
    /// A configuration value is invalid or inconsistent.
    Config(String),
    /// A tensor operation received incompatible shapes.
    Shape(ShapeError),
    /// A packed bit operation received mismatched dimensions.
    Dim(DimMismatchError),
    /// Input data does not match the model geometry.
    Input(String),
    /// Model (de)serialization failed.
    Serialize(String),
    /// Weight memory failed an integrity check (checksum mismatch or an
    /// unrepairable redundant-copy configuration).
    Integrity(String),
    /// A file or stream operation failed (message carries the path and the
    /// underlying OS error so the CLI can print one actionable line).
    Io(String),
    /// An inter-process frame or protocol message was malformed: bad
    /// length prefix, CRC mismatch, unknown tag, or truncated payload.
    Ipc(String),
    /// A supervised worker process definitively failed a job (after
    /// retries); the message is the first worker error, verbatim.
    Worker(String),
    /// A live connection (e.g. the metrics endpoint `univsa top` polls)
    /// was established and then went away — distinct from [`Self::Io`]
    /// so callers can stop cleanly instead of reporting a failure.
    ConnectionLost(String),
}

impl fmt::Display for UniVsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Shape(e) => write!(f, "{e}"),
            Self::Dim(e) => write!(f, "{e}"),
            Self::Input(msg) => write!(f, "invalid input: {msg}"),
            Self::Serialize(msg) => write!(f, "serialization failed: {msg}"),
            Self::Integrity(msg) => write!(f, "integrity check failed: {msg}"),
            Self::Io(msg) => write!(f, "{msg}"),
            Self::Ipc(msg) => write!(f, "ipc protocol error: {msg}"),
            Self::Worker(msg) => write!(f, "worker failed: {msg}"),
            Self::ConnectionLost(msg) => write!(f, "connection lost: {msg}"),
        }
    }
}

impl Error for UniVsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Shape(e) => Some(e),
            Self::Dim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for UniVsaError {
    fn from(e: ShapeError) -> Self {
        Self::Shape(e)
    }
}

impl From<DimMismatchError> for UniVsaError {
    fn from(e: DimMismatchError) -> Self {
        Self::Dim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = UniVsaError::Config("bad".into());
        assert!(e.to_string().contains("invalid configuration"));
        let e: UniVsaError = ShapeError::new("x").into();
        assert!(e.to_string().contains("shape error"));
        let e: UniVsaError = DimMismatchError { left: 1, right: 2 }.into();
        assert!(e.to_string().contains("dimension mismatch"));
        let e = UniVsaError::Integrity("crc".into());
        assert!(e.to_string().contains("integrity check failed"));
        let e = UniVsaError::Serialize("s".into());
        assert!(e.to_string().contains("serialization failed"));
        let e = UniVsaError::Input("i".into());
        assert!(e.to_string().contains("invalid input"));
        let e = UniVsaError::Io("cannot read model \"m.uvsa\": gone".into());
        assert!(e.to_string().contains("m.uvsa"));
        let e = UniVsaError::Ipc("crc mismatch".into());
        assert!(e.to_string().contains("ipc protocol error"));
        let e = UniVsaError::Worker("boom".into());
        assert_eq!(e.to_string(), "worker failed: boom");
        let e = UniVsaError::ConnectionLost("metrics endpoint closed".into());
        assert_eq!(e.to_string(), "connection lost: metrics endpoint closed");
    }

    #[test]
    fn source_chains() {
        let e: UniVsaError = ShapeError::new("x").into();
        assert!(std::error::Error::source(&e).is_some());
        let e = UniVsaError::Config("c".into());
        assert!(std::error::Error::source(&e).is_none());
        let e = UniVsaError::Integrity("x".into());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UniVsaError>();
    }
}
