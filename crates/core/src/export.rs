//! Model (de)serialization.
//!
//! Two container versions share the 8-byte magic and a little-endian
//! `version` + `payload length` header:
//!
//! - **v1** (legacy): a JSON payload mirroring the model's field layout.
//!   [`load_model`] still reads it; [`save_model_v1`] still writes it so
//!   the compatibility path stays covered by tests.
//! - **v2** (current, written by [`save_model`]): a packed binary payload
//!   with the per-component CRC32 checksums of [`crate::ModelIntegrity`]
//!   embedded after the weights. Loading a v2 container re-computes the
//!   checksums and fails with [`UniVsaError::Integrity`] on any mismatch —
//!   weight corruption in storage or transit is detected *before* the
//!   model can mispredict.

use univsa_bits::{BitMatrix, BitVec};

use crate::json::{self, Json};
use crate::{Enhancements, Mask, ModelIntegrity, UniVsaConfig, UniVsaError, UniVsaModel};

const MAGIC: &[u8; 8] = b"UNIVSA\0\x01";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

/// Serializes a model to the current (v2) framed binary container with
/// embedded per-component checksums.
///
/// # Errors
///
/// Returns [`UniVsaError::Serialize`] if the model exceeds the container's
/// 32-bit section limits (cannot happen for valid configurations; kept
/// fallible for forward compatibility).
///
/// # Examples
///
/// ```no_run
/// # fn demo(model: &univsa::UniVsaModel) -> Result<(), univsa::UniVsaError> {
/// let bytes = univsa::save_model(model)?;
/// let restored = univsa::load_model(&bytes)?;
/// assert_eq!(&restored, model);
/// # Ok(())
/// # }
/// ```
pub fn save_model(model: &UniVsaModel) -> Result<Vec<u8>, UniVsaError> {
    let payload = encode_v2_payload(model)?;
    Ok(frame(VERSION_V2, &payload))
}

/// Serializes a model to the legacy v1 (JSON-payload) container. Exists so
/// the backward-compatibility path of [`load_model`] stays exercised; new
/// code should prefer [`save_model`].
///
/// # Errors
///
/// Returns [`UniVsaError::Serialize`] if the payload exceeds the frame's
/// 32-bit length limit.
pub fn save_model_v1(model: &UniVsaModel) -> Result<Vec<u8>, UniVsaError> {
    let mut text = String::new();
    json::write(&model_to_json(model), &mut text);
    Ok(frame(VERSION_V1, text.as_bytes()))
}

fn frame(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + payload.len());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Restores a model from a buffer produced by [`save_model`] (v2) or the
/// legacy [`save_model_v1`] / pre-v2 writers (v1).
///
/// # Errors
///
/// Returns [`UniVsaError::Serialize`] on a bad magic, unsupported version,
/// truncated buffer, or malformed payload, and [`UniVsaError::Integrity`]
/// when a v2 payload's weights no longer match their embedded checksums.
pub fn load_model(bytes: &[u8]) -> Result<UniVsaModel, UniVsaError> {
    if bytes.len() < 16 {
        return Err(UniVsaError::Serialize("buffer too short".into()));
    }
    if &bytes[..8] != MAGIC {
        return Err(UniVsaError::Serialize("bad magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let rest = &bytes[16..];
    if rest.len() < len {
        return Err(UniVsaError::Serialize(format!(
            "payload truncated: expected {len} bytes, have {}",
            rest.len()
        )));
    }
    let payload = &rest[..len];
    match version {
        VERSION_V1 => decode_v1_payload(payload),
        VERSION_V2 => decode_v2_payload(payload),
        other => Err(UniVsaError::Serialize(format!(
            "unsupported format version {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// v2: packed binary payload with embedded integrity
// ---------------------------------------------------------------------------

fn encode_v2_payload(model: &UniVsaModel) -> Result<Vec<u8>, UniVsaError> {
    let mut out = Vec::new();
    let cfg = model.config();
    let u32_of = |v: usize, what: &str| -> Result<u32, UniVsaError> {
        u32::try_from(v).map_err(|_| {
            UniVsaError::Serialize(format!("{what} = {v} exceeds the u32 section limit"))
        })
    };
    for (value, what) in [
        (cfg.d_h, "d_h"),
        (cfg.d_l, "d_l"),
        (cfg.d_k, "d_k"),
        (cfg.out_channels, "out_channels"),
        (cfg.voters, "voters"),
        (cfg.levels, "levels"),
        (cfg.width, "width"),
        (cfg.length, "length"),
        (cfg.classes, "classes"),
    ] {
        out.extend_from_slice(&u32_of(value, what)?.to_le_bytes());
    }
    let e = cfg.enhancements;
    out.push(u8::from(e.dvp) | u8::from(e.biconv) << 1 | u8::from(e.soft_voting) << 2);
    out.extend_from_slice(&cfg.high_fraction.to_le_bytes());

    let mask = model.mask().as_bits();
    out.extend_from_slice(&u32_of(mask.len(), "mask length")?.to_le_bytes());
    let mut packed = vec![0u8; mask.len().div_ceil(8)];
    for (i, &bit) in mask.iter().enumerate() {
        if bit {
            packed[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&packed);

    encode_matrix(&mut out, model.v_h(), &u32_of)?;
    encode_matrix(&mut out, model.v_l(), &u32_of)?;
    out.extend_from_slice(&u32_of(model.kernel_words().len(), "kernel words")?.to_le_bytes());
    for w in model.kernel_words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
    encode_matrix(&mut out, model.f(), &u32_of)?;
    out.extend_from_slice(&u32_of(model.class_sets().len(), "class sets")?.to_le_bytes());
    for set in model.class_sets() {
        encode_matrix(&mut out, set, &u32_of)?;
    }

    let integrity = model.integrity();
    for crc in [
        integrity.v_h,
        integrity.v_l,
        integrity.kernel,
        integrity.f,
        integrity.c,
    ] {
        out.extend_from_slice(&crc.to_le_bytes());
    }
    Ok(out)
}

fn encode_matrix(
    out: &mut Vec<u8>,
    m: &BitMatrix,
    u32_of: &impl Fn(usize, &str) -> Result<u32, UniVsaError>,
) -> Result<(), UniVsaError> {
    out.extend_from_slice(&u32_of(m.rows(), "matrix rows")?.to_le_bytes());
    out.extend_from_slice(&u32_of(m.dim(), "matrix dim")?.to_le_bytes());
    for r in 0..m.rows() {
        for w in m.row(r).as_words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    Ok(())
}

/// Sequential reader over a v2 payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], UniVsaError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(UniVsaError::Serialize(format!(
                "payload truncated at offset {}",
                self.pos
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, UniVsaError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, UniVsaError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, UniVsaError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32(&mut self) -> Result<f32, UniVsaError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn matrix(&mut self) -> Result<BitMatrix, UniVsaError> {
        let rows = self.u32()? as usize;
        let dim = self.u32()? as usize;
        let words_per_row = dim.div_ceil(64);
        // cheap sanity bound before allocating
        if rows.saturating_mul(words_per_row).saturating_mul(8) > self.bytes.len() {
            return Err(UniVsaError::Serialize(format!(
                "matrix section {rows}x{dim} larger than the payload"
            )));
        }
        let row_vecs = (0..rows)
            .map(|_| {
                let words = (0..words_per_row)
                    .map(|_| self.u64())
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(BitVec::from_words(dim, words))
            })
            .collect::<Result<Vec<_>, UniVsaError>>()?;
        if rows == 0 {
            return Err(UniVsaError::Serialize("empty matrix section".into()));
        }
        BitMatrix::from_rows(row_vecs).map_err(|e| UniVsaError::Serialize(e.to_string()))
    }
}

fn decode_v2_payload(payload: &[u8]) -> Result<UniVsaModel, UniVsaError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let mut dims = [0usize; 9];
    for d in &mut dims {
        *d = c.u32()? as usize;
    }
    let [d_h, d_l, d_k, out_channels, voters, levels, width, length, classes] = dims;
    let flags = c.u8()?;
    let high_fraction = c.f32()?;
    let config = UniVsaConfig {
        d_h,
        d_l,
        d_k,
        out_channels,
        voters,
        levels,
        width,
        length,
        classes,
        enhancements: Enhancements {
            dvp: flags & 1 != 0,
            biconv: flags & 2 != 0,
            soft_voting: flags & 4 != 0,
        },
        high_fraction,
    };

    let mask_len = c.u32()? as usize;
    let packed = c.take(mask_len.div_ceil(8))?;
    let bits = (0..mask_len)
        .map(|i| packed[i / 8] >> (i % 8) & 1 == 1)
        .collect();
    let mask = Mask::from_bits(bits);

    let v_h = c.matrix()?;
    let v_l = c.matrix()?;
    let kernel_len = c.u32()? as usize;
    if kernel_len.saturating_mul(8) > payload.len() {
        return Err(UniVsaError::Serialize(format!(
            "kernel section of {kernel_len} words larger than the payload"
        )));
    }
    let kernel = (0..kernel_len)
        .map(|_| c.u64())
        .collect::<Result<Vec<_>, _>>()?;
    let f = c.matrix()?;
    let sets = c.u32()? as usize;
    if sets > payload.len() {
        return Err(UniVsaError::Serialize(format!(
            "class-set count {sets} larger than the payload"
        )));
    }
    let class_sets = (0..sets)
        .map(|_| c.matrix())
        .collect::<Result<Vec<_>, _>>()?;

    let expected = ModelIntegrity {
        v_h: c.u32()?,
        v_l: c.u32()?,
        kernel: c.u32()?,
        f: c.u32()?,
        c: c.u32()?,
    };
    if c.pos != payload.len() {
        return Err(UniVsaError::Serialize(format!(
            "{} trailing payload bytes",
            payload.len() - c.pos
        )));
    }

    let model = UniVsaModel::from_parts(config, mask, v_h, v_l, kernel, f, class_sets)
        .map_err(|e| UniVsaError::Serialize(format!("decoded model is inconsistent: {e}")))?;
    let report = model.verify_integrity(&expected);
    if !report.is_clean() {
        return Err(UniVsaError::Integrity(format!(
            "checksum mismatch in component(s): {}",
            report.corrupted_components().join(", ")
        )));
    }
    Ok(model)
}

// ---------------------------------------------------------------------------
// v1: legacy JSON payload (layout of the original serde-derived writer)
// ---------------------------------------------------------------------------

fn model_to_json(model: &UniVsaModel) -> Json {
    let cfg = model.config();
    let num = |v: usize| Json::Num(v as f64, Some(v as u64));
    let config = Json::Obj(vec![
        ("d_h".into(), num(cfg.d_h)),
        ("d_l".into(), num(cfg.d_l)),
        ("d_k".into(), num(cfg.d_k)),
        ("out_channels".into(), num(cfg.out_channels)),
        ("voters".into(), num(cfg.voters)),
        ("levels".into(), num(cfg.levels)),
        ("width".into(), num(cfg.width)),
        ("length".into(), num(cfg.length)),
        ("classes".into(), num(cfg.classes)),
        (
            "enhancements".into(),
            Json::Obj(vec![
                ("dvp".into(), Json::Bool(cfg.enhancements.dvp)),
                ("biconv".into(), Json::Bool(cfg.enhancements.biconv)),
                (
                    "soft_voting".into(),
                    Json::Bool(cfg.enhancements.soft_voting),
                ),
            ]),
        ),
        (
            "high_fraction".into(),
            Json::Num(cfg.high_fraction as f64, None),
        ),
    ]);
    let mask = Json::Obj(vec![(
        "bits".into(),
        Json::Arr(
            model
                .mask()
                .as_bits()
                .iter()
                .map(|&b| Json::Bool(b))
                .collect(),
        ),
    )]);
    let kernel = Json::Arr(
        model
            .kernel_words()
            .iter()
            .map(|&w| Json::Num(w as f64, Some(w)))
            .collect(),
    );
    Json::Obj(vec![
        ("config".into(), config),
        ("mask".into(), mask),
        ("v_h".into(), matrix_to_json(model.v_h())),
        ("v_l".into(), matrix_to_json(model.v_l())),
        ("kernel".into(), kernel),
        ("f".into(), matrix_to_json(model.f())),
        (
            "c".into(),
            Json::Arr(model.class_sets().iter().map(matrix_to_json).collect()),
        ),
    ])
}

fn matrix_to_json(m: &BitMatrix) -> Json {
    let rows = (0..m.rows())
        .map(|r| {
            let row = m.row(r);
            Json::Obj(vec![
                (
                    "dim".into(),
                    Json::Num(row.dim() as f64, Some(row.dim() as u64)),
                ),
                (
                    "words".into(),
                    Json::Arr(
                        row.as_words()
                            .iter()
                            .map(|&w| Json::Num(w as f64, Some(w)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "dim".into(),
            Json::Num(m.dim() as f64, Some(m.dim() as u64)),
        ),
        ("rows".into(), Json::Arr(rows)),
    ])
}

fn decode_v1_payload(payload: &[u8]) -> Result<UniVsaModel, UniVsaError> {
    let doc = json::parse(payload).map_err(|e| UniVsaError::Serialize(format!("decode: {e}")))?;
    let field = |obj: &Json, key: &str| -> Result<Json, UniVsaError> {
        obj.get(key)
            .cloned()
            .ok_or_else(|| UniVsaError::Serialize(format!("decode: missing field '{key}'")))
    };
    let usize_field = |obj: &Json, key: &str| -> Result<usize, UniVsaError> {
        field(obj, key)?.as_usize().ok_or_else(|| {
            UniVsaError::Serialize(format!("decode: field '{key}' is not an integer"))
        })
    };
    let bool_field = |obj: &Json, key: &str| -> Result<bool, UniVsaError> {
        field(obj, key)?.as_bool().ok_or_else(|| {
            UniVsaError::Serialize(format!("decode: field '{key}' is not a boolean"))
        })
    };

    let cfg_doc = field(&doc, "config")?;
    let enh_doc = field(&cfg_doc, "enhancements")?;
    let config = UniVsaConfig {
        d_h: usize_field(&cfg_doc, "d_h")?,
        d_l: usize_field(&cfg_doc, "d_l")?,
        d_k: usize_field(&cfg_doc, "d_k")?,
        out_channels: usize_field(&cfg_doc, "out_channels")?,
        voters: usize_field(&cfg_doc, "voters")?,
        levels: usize_field(&cfg_doc, "levels")?,
        width: usize_field(&cfg_doc, "width")?,
        length: usize_field(&cfg_doc, "length")?,
        classes: usize_field(&cfg_doc, "classes")?,
        enhancements: Enhancements {
            dvp: bool_field(&enh_doc, "dvp")?,
            biconv: bool_field(&enh_doc, "biconv")?,
            soft_voting: bool_field(&enh_doc, "soft_voting")?,
        },
        high_fraction: field(&cfg_doc, "high_fraction")?
            .as_f64()
            .ok_or_else(|| UniVsaError::Serialize("decode: bad high_fraction".into()))?
            as f32,
    };

    let bits = field(&field(&doc, "mask")?, "bits")?
        .as_arr()
        .ok_or_else(|| UniVsaError::Serialize("decode: mask.bits is not an array".into()))?
        .iter()
        .map(|b| b.as_bool())
        .collect::<Option<Vec<bool>>>()
        .ok_or_else(|| UniVsaError::Serialize("decode: mask bit is not a boolean".into()))?;
    let mask = Mask::from_bits(bits);

    let kernel = field(&doc, "kernel")?
        .as_arr()
        .ok_or_else(|| UniVsaError::Serialize("decode: kernel is not an array".into()))?
        .iter()
        .map(|w| w.as_u64())
        .collect::<Option<Vec<u64>>>()
        .ok_or_else(|| UniVsaError::Serialize("decode: kernel word is not an integer".into()))?;

    let v_h = matrix_from_json(&field(&doc, "v_h")?)?;
    let v_l = matrix_from_json(&field(&doc, "v_l")?)?;
    let f = matrix_from_json(&field(&doc, "f")?)?;
    let c = field(&doc, "c")?
        .as_arr()
        .ok_or_else(|| UniVsaError::Serialize("decode: c is not an array".into()))?
        .iter()
        .map(matrix_from_json)
        .collect::<Result<Vec<_>, _>>()?;

    UniVsaModel::from_parts(config, mask, v_h, v_l, kernel, f, c)
        .map_err(|e| UniVsaError::Serialize(format!("decoded model is inconsistent: {e}")))
}

fn matrix_from_json(doc: &Json) -> Result<BitMatrix, UniVsaError> {
    let bad = |what: &str| UniVsaError::Serialize(format!("decode: {what}"));
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("matrix rows missing"))?;
    let row_vecs = rows
        .iter()
        .map(|row| {
            let dim = row
                .get("dim")
                .and_then(Json::as_usize)
                .ok_or_else(|| bad("row dim missing"))?;
            let words = row
                .get("words")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("row words missing"))?
                .iter()
                .map(|w| w.as_u64())
                .collect::<Option<Vec<u64>>>()
                .ok_or_else(|| bad("row word is not an integer"))?;
            if words.len() != dim.div_ceil(64) {
                return Err(bad("row word count disagrees with dim"));
            }
            Ok(BitVec::from_words(dim, words))
        })
        .collect::<Result<Vec<_>, UniVsaError>>()?;
    if row_vecs.is_empty() {
        return Err(bad("matrix has no rows"));
    }
    BitMatrix::from_rows(row_vecs).map_err(|e| UniVsaError::Serialize(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Enhancements, Mask, UniVsaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use univsa_bits::BitMatrix;
    use univsa_data::TaskSpec;

    fn model(seed: u64) -> UniVsaModel {
        let spec = TaskSpec {
            name: "t".into(),
            width: 3,
            length: 4,
            classes: 2,
            levels: 4,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(2)
            .d_k(3)
            .out_channels(4)
            .voters(1)
            .enhancements(Enhancements::all())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        UniVsaModel::from_parts(
            cfg.clone(),
            Mask::all_high(cfg.features()),
            BitMatrix::random(4, 4, &mut rng),
            BitMatrix::random(4, 2, &mut rng),
            (0..4 * 9).map(|i| i as u64 & 0xF).collect(),
            BitMatrix::random(4, 12, &mut rng),
            vec![BitMatrix::random(2, 12, &mut rng)],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let m = model(0);
        let bytes = save_model(&m).unwrap();
        let restored = load_model(&bytes).unwrap();
        assert_eq!(restored, m);
    }

    #[test]
    fn v1_roundtrip() {
        let m = model(7);
        let bytes = save_model_v1(&m).unwrap();
        assert_eq!(bytes[8], 1, "v1 container must carry version 1");
        let restored = load_model(&bytes).unwrap();
        assert_eq!(restored, m);
    }

    #[test]
    fn v1_and_v2_load_the_same_model() {
        let m = model(8);
        let via_v1 = load_model(&save_model_v1(&m).unwrap()).unwrap();
        let via_v2 = load_model(&save_model(&m).unwrap()).unwrap();
        assert_eq!(via_v1, via_v2);
    }

    #[test]
    fn rejects_truncation() {
        let m = model(1);
        let bytes = save_model(&m).unwrap();
        assert!(load_model(&bytes[..bytes.len() - 4]).is_err());
        assert!(load_model(&bytes[..4]).is_err());
        let v1 = save_model_v1(&m).unwrap();
        assert!(load_model(&v1[..v1.len() - 4]).is_err());
    }

    #[test]
    fn rejects_bad_magic() {
        let m = model(2);
        let mut bytes = save_model(&m).unwrap();
        bytes[0] = b'X';
        assert!(load_model(&bytes).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let m = model(3);
        let mut bytes = save_model(&m).unwrap();
        bytes[8] = 99;
        assert!(load_model(&bytes).is_err());
    }

    /// Byte offset of the first `VB_H` weight word in a v2 container:
    /// 16-byte frame, 41-byte config block (9 u32 dims + flags byte +
    /// f32), mask section, then the matrix's 8-byte rows/dim header.
    fn v_h_words_offset(m: &UniVsaModel) -> usize {
        16 + 41 + 4 + m.config().features().div_ceil(8) + 8
    }

    #[test]
    fn v2_detects_payload_corruption() {
        let m = model(5);
        let mut bytes = save_model(&m).unwrap();
        // flip bit 0 of the first VB_H word — a real weight bit
        bytes[v_h_words_offset(&m)] ^= 0x01;
        let err = load_model(&bytes).unwrap_err();
        assert!(
            matches!(err, UniVsaError::Integrity(_)),
            "expected an integrity error, got: {err}"
        );
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn v2_reports_corrupted_component_by_name() {
        let m = model(6);
        let cfg = m.config().clone();
        let mut bytes = save_model(&m).unwrap();
        // first kernel word: after both value tables and the kernel length
        let table_bytes = |dim: usize| cfg.levels * dim.div_ceil(64) * 8;
        let kernel_offset =
            v_h_words_offset(&m) + table_bytes(cfg.d_h) + 8 + table_bytes(cfg.effective_d_l()) + 4;
        bytes[kernel_offset] ^= 0x01;
        let msg = load_model(&bytes).unwrap_err().to_string();
        assert!(msg.contains("kernel"), "component name missing from: {msg}");
    }

    #[test]
    fn restored_model_infers_identically() {
        let m = model(4);
        let restored = load_model(&save_model(&m).unwrap()).unwrap();
        let values: Vec<u8> = (0..12).map(|i| (i % 4) as u8).collect();
        assert_eq!(m.infer(&values).unwrap(), restored.infer(&values).unwrap());
    }
}
