//! Model (de)serialization.
//!
//! Models serialize through a small framed binary container built on
//! [`bytes`]: a 8-byte magic, a format version, and a JSON payload (the
//! packed bit sets serialize compactly as word arrays). JSON keeps the
//! format debuggable; the dominant payload is the packed words either way.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{UniVsaError, UniVsaModel};

const MAGIC: &[u8; 8] = b"UNIVSA\0\x01";
const VERSION: u32 = 1;

/// Serializes a model to a framed byte buffer.
///
/// # Errors
///
/// Returns [`UniVsaError::Serialize`] if JSON encoding fails (cannot happen
/// for well-formed models; kept fallible for forward compatibility).
///
/// # Examples
///
/// ```no_run
/// # fn demo(model: &univsa::UniVsaModel) -> Result<(), univsa::UniVsaError> {
/// let bytes = univsa::save_model(model)?;
/// let restored = univsa::load_model(&bytes)?;
/// assert_eq!(&restored, model);
/// # Ok(())
/// # }
/// ```
pub fn save_model(model: &UniVsaModel) -> Result<Bytes, UniVsaError> {
    let payload = serde_json::to_vec(model)
        .map_err(|e| UniVsaError::Serialize(format!("encode: {e}")))?;
    let mut buf = BytesMut::with_capacity(16 + payload.len());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(&payload);
    Ok(buf.freeze())
}

/// Restores a model from a buffer produced by [`save_model`].
///
/// # Errors
///
/// Returns [`UniVsaError::Serialize`] on a bad magic, unsupported version,
/// truncated buffer, or malformed payload.
pub fn load_model(bytes: &[u8]) -> Result<UniVsaModel, UniVsaError> {
    let mut buf = bytes;
    if buf.len() < 16 {
        return Err(UniVsaError::Serialize("buffer too short".into()));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(UniVsaError::Serialize("bad magic".into()));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(UniVsaError::Serialize(format!(
            "unsupported format version {version}"
        )));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(UniVsaError::Serialize(format!(
            "payload truncated: expected {len} bytes, have {}",
            buf.remaining()
        )));
    }
    serde_json::from_slice(&buf[..len])
        .map_err(|e| UniVsaError::Serialize(format!("decode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Enhancements, Mask, UniVsaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use univsa_bits::BitMatrix;
    use univsa_data::TaskSpec;

    fn model(seed: u64) -> UniVsaModel {
        let spec = TaskSpec {
            name: "t".into(),
            width: 3,
            length: 4,
            classes: 2,
            levels: 4,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(2)
            .d_k(3)
            .out_channels(4)
            .voters(1)
            .enhancements(Enhancements::all())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        UniVsaModel::from_parts(
            cfg.clone(),
            Mask::all_high(cfg.features()),
            BitMatrix::random(4, 4, &mut rng),
            BitMatrix::random(4, 2, &mut rng),
            (0..4 * 9).map(|i| i as u64 & 0xF).collect(),
            BitMatrix::random(4, 12, &mut rng),
            vec![BitMatrix::random(2, 12, &mut rng)],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let m = model(0);
        let bytes = save_model(&m).unwrap();
        let restored = load_model(&bytes).unwrap();
        assert_eq!(restored, m);
    }

    #[test]
    fn rejects_truncation() {
        let m = model(1);
        let bytes = save_model(&m).unwrap();
        assert!(load_model(&bytes[..bytes.len() - 4]).is_err());
        assert!(load_model(&bytes[..4]).is_err());
    }

    #[test]
    fn rejects_bad_magic() {
        let m = model(2);
        let mut bytes = save_model(&m).unwrap().to_vec();
        bytes[0] = b'X';
        assert!(load_model(&bytes).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let m = model(3);
        let mut bytes = save_model(&m).unwrap().to_vec();
        bytes[8] = 99;
        assert!(load_model(&bytes).is_err());
    }

    #[test]
    fn restored_model_infers_identically() {
        let m = model(4);
        let restored = load_model(&save_model(&m).unwrap()).unwrap();
        let values: Vec<u8> = (0..12).map(|i| (i % 4) as u8).collect();
        assert_eq!(m.infer(&values).unwrap(), restored.infer(&values).unwrap());
    }
}
