//! The vector-encoding layer: per-position channel bundling with binary
//! feature vectors.

use rand::Rng;
use univsa_nn::ste::{sign, ste_grad};
use univsa_nn::Param;
use univsa_tensor::{uniform, Tensor};

use crate::UniVsaError;

/// The UniVSA encoding stage `s_d = sgn(Σ_o F[o,d] · a[o,d])`.
///
/// Unlike a dense layer, each output position `d` only combines the `O`
/// channel values *at that position* — this is Eq. 1's binding-and-bundling
/// specialized to the convolutional layout, where the feature vectors
/// `fᵢ ∈ F` index the *channel position* of the BiConv output rather than
/// the raw feature position.
///
/// Latent weights `F` are floats binarized with `sign` in the forward pass
/// (straight-through estimator backward); the binarized matrix is exported
/// as the feature-vector set **F**.
#[derive(Debug, Clone)]
pub struct EncodingLayer {
    f_latent: Param, // (channels, dim)
    channels: usize,
    dim: usize,
    cached_input: Option<Vec<Tensor>>,
    cached_pre: Option<Vec<Tensor>>,
}

impl EncodingLayer {
    /// Creates the layer for `channels` input channels and `dim` output
    /// positions, latent weights drawn from `U(-1, 1)`.
    pub fn new<R: Rng + ?Sized>(channels: usize, dim: usize, rng: &mut R) -> Self {
        Self {
            f_latent: Param::new(uniform(&[channels, dim], -1.0, 1.0, rng)),
            channels,
            dim,
            cached_input: None,
            cached_pre: None,
        }
    }

    /// Input channel count `O`.
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Output dimension `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The latent weight parameter.
    #[inline]
    pub fn f_latent(&self) -> &Param {
        &self.f_latent
    }

    /// Mutable latent weight parameter (for the optimizer).
    #[inline]
    pub fn f_latent_mut(&mut self) -> &mut Param {
        &mut self.f_latent
    }

    /// The binarized feature vectors `sign(F)`.
    pub fn binary_f(&self) -> Tensor {
        sign(self.f_latent.value())
    }

    /// Forward pass over a batch of `(channels, dim)` activation maps,
    /// caching intermediates; returns one `(dim,)` bipolar sample vector
    /// per input.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Shape`] if any input has the wrong shape.
    pub fn forward(&mut self, batch: &[Tensor]) -> Result<Vec<Tensor>, UniVsaError> {
        let fb = self.binary_f();
        // per-sample encodings are independent: fan out to the worker
        // pool; results return in sample order
        let results = univsa_par::map_indexed("train.encode_fwd", batch.len(), |i| {
            self.pre_activation(&batch[i], &fb).map(|pre| {
                let out = sign(&pre);
                (pre, out)
            })
        });
        let mut pres = Vec::with_capacity(batch.len());
        let mut outs = Vec::with_capacity(batch.len());
        for r in results {
            let (pre, out) = r?;
            outs.push(out);
            pres.push(pre);
        }
        self.cached_input = Some(batch.to_vec());
        self.cached_pre = Some(pres);
        Ok(outs)
    }

    /// Forward pass without caching (inference only).
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Shape`] if the input has the wrong shape.
    pub fn infer(&self, a: &Tensor) -> Result<Tensor, UniVsaError> {
        Ok(sign(&self.pre_activation(a, &self.binary_f())?))
    }

    fn pre_activation(&self, a: &Tensor, fb: &Tensor) -> Result<Tensor, UniVsaError> {
        if a.shape().dims() != [self.channels, self.dim] {
            return Err(UniVsaError::Shape(univsa_tensor::ShapeError::new(format!(
                "encoding input must be ({}, {}), got {}",
                self.channels,
                self.dim,
                a.shape()
            ))));
        }
        let mut pre = vec![0.0f32; self.dim];
        for o in 0..self.channels {
            let arow = &a.as_slice()[o * self.dim..(o + 1) * self.dim];
            let frow = &fb.as_slice()[o * self.dim..(o + 1) * self.dim];
            for ((p, &av), &fv) in pre.iter_mut().zip(arow).zip(frow) {
                *p += av * fv;
            }
        }
        Tensor::from_vec(pre, &[self.dim]).map_err(UniVsaError::from)
    }

    /// Backward pass: accumulates the latent `F` gradient and returns the
    /// per-sample gradients w.r.t. the channel activations.
    ///
    /// The output-sign STE window is scaled by the channel fan-in `O`
    /// (pre-activations range over `[-O, O]`).
    ///
    /// # Errors
    ///
    /// Returns an error if shapes disagree or `forward` was not called
    /// first.
    pub fn backward(&mut self, grad_out: &[Tensor]) -> Result<Vec<Tensor>, UniVsaError> {
        let inputs = self.cached_input.as_ref().ok_or_else(|| {
            UniVsaError::Input("EncodingLayer::backward called before forward".into())
        })?;
        let pres = self.cached_pre.as_ref().ok_or_else(|| {
            UniVsaError::Input("EncodingLayer::backward called before forward".into())
        })?;
        if grad_out.len() != inputs.len() {
            return Err(UniVsaError::Input(format!(
                "backward batch size {} disagrees with forward batch size {}",
                grad_out.len(),
                inputs.len()
            )));
        }
        let fan = self.channels as f32;
        let fb = self.binary_f();
        let (channels, dim) = (self.channels, self.dim);
        // per-sample contributions run on workers; the shared F gradient
        // is folded afterwards in strict sample order (each per-sample
        // addend is the exact product the serial loop adds), so results
        // are bit-identical at every thread count
        let results = univsa_par::map_indexed("train.encode_bwd", grad_out.len(), |s| {
            let g_pre = ste_grad(&grad_out[s], &pres[s].scale(1.0 / fan));
            let mut df = vec![0.0f32; channels * dim];
            let mut ga = vec![0.0f32; channels * dim];
            for o in 0..channels {
                let arow = &inputs[s].as_slice()[o * dim..(o + 1) * dim];
                let frow = &fb.as_slice()[o * dim..(o + 1) * dim];
                let dfrow = &mut df[o * dim..(o + 1) * dim];
                let garow = &mut ga[o * dim..(o + 1) * dim];
                for d in 0..dim {
                    let gp = g_pre.as_slice()[d];
                    dfrow[d] = gp * arow[d];
                    garow[d] = gp * frow[d];
                }
            }
            Tensor::from_vec(ga, &[channels, dim]).map(|ga| (df, ga))
        });
        let mut df_binary = Tensor::zeros(&[channels, dim]);
        let mut grad_inputs = Vec::with_capacity(grad_out.len());
        for r in results {
            let (df, ga) = r?;
            for (acc, v) in df_binary.as_mut_slice().iter_mut().zip(&df) {
                *acc += *v;
            }
            grad_inputs.push(ga);
        }
        let df = ste_grad(&df_binary, self.f_latent.value());
        self.f_latent.grad_mut().axpy(1.0, &df)?;
        Ok(grad_inputs)
    }

    /// Zeroes the latent gradient.
    pub fn zero_grad(&mut self) {
        self.f_latent.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = EncodingLayer::new(3, 4, &mut rng);
        // force F latent to known signs
        layer.f_latent.value_mut().as_mut_slice().copy_from_slice(&[
            1.0, -1.0, 1.0, -1.0, //
            1.0, 1.0, -1.0, -1.0, //
            -1.0, 1.0, 1.0, 1.0,
        ]);
        let a = Tensor::from_vec(
            vec![
                1.0, 1.0, 1.0, 1.0, //
                -1.0, -1.0, -1.0, -1.0, //
                1.0, -1.0, 1.0, -1.0,
            ],
            &[3, 4],
        )
        .unwrap();
        let out = layer.forward(&[a]).unwrap();
        // pre[d] = Σ_o F[o,d]*a[o,d]
        // d0: 1*1 + 1*(-1) + (-1)*1 = -1 → -1
        // d1: (-1)*1 + 1*(-1) + 1*(-1) = -3 → -1
        // d2: 1*1 + (-1)*(-1) + 1*1 = 3 → +1
        // d3: (-1)*1 + (-1)*(-1) + 1*(-1) = -1 → -1
        assert_eq!(out[0].as_slice(), &[-1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn sgn_zero_tiebreak_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = EncodingLayer::new(2, 1, &mut rng);
        layer
            .f_latent
            .value_mut()
            .as_mut_slice()
            .copy_from_slice(&[1.0, 1.0]);
        let a = Tensor::from_vec(vec![1.0, -1.0], &[2, 1]).unwrap();
        let out = layer.forward(&[a]).unwrap();
        assert_eq!(out[0].as_slice(), &[1.0]);
    }

    #[test]
    fn rejects_wrong_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = EncodingLayer::new(2, 3, &mut rng);
        assert!(layer.forward(&[Tensor::zeros(&[3, 2])]).is_err());
    }

    #[test]
    fn backward_shapes_and_flow() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = EncodingLayer::new(4, 6, &mut rng);
        let a = univsa_tensor::signs(&[4, 6], &mut rng);
        let out = layer.forward(&[a]).unwrap();
        layer.zero_grad();
        let g: Vec<Tensor> = out.iter().map(|o| o.map(|_| 1.0)).collect();
        let ga = layer.backward(&g).unwrap();
        assert_eq!(ga[0].shape().dims(), &[4, 6]);
        assert!(layer.f_latent.grad().as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn backward_before_forward_fails() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = EncodingLayer::new(2, 2, &mut rng);
        assert!(layer.backward(&[Tensor::zeros(&[2])]).is_err());
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = EncodingLayer::new(3, 5, &mut rng);
        let a = univsa_tensor::signs(&[3, 5], &mut rng);
        let out = layer.forward(std::slice::from_ref(&a)).unwrap();
        assert_eq!(layer.infer(&a).unwrap(), out[0]);
    }
}
