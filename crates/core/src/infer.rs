//! Packed bitwise inference — the exact computation the paper's hardware
//! performs.

use std::time::Instant;

use univsa_bits::{kernels, BitMatrix, BitVec, Bundler};
use univsa_data::Dataset;
use univsa_telemetry::AllocMark;

use crate::{UniVsaError, UniVsaModel, ValueMap};

/// Rolling stage timer for the inference pipeline: `None` (telemetry off)
/// costs nothing; `Some` emits an `infer.<name>` span per stage and
/// restarts the clock. When the counting allocator is on, an
/// [`AllocMark`] is lapped alongside so each stage span carries its
/// allocation delta.
pub(crate) fn stage_mark(
    timer: &mut Option<Instant>,
    mem: &mut Option<AllocMark>,
    name: &'static str,
) {
    if let Some(t) = timer {
        match mem.as_mut() {
            Some(mark) => {
                univsa_telemetry::record_span_mem("infer", name, t.elapsed(), &[], mark.lap());
            }
            None => univsa_telemetry::record_span("infer", name, t.elapsed(), &[]),
        }
        *t = Instant::now();
    }
}

/// The similarity margin of a decided inference: winning total minus
/// runner-up total. Both engines compute the same exact `i64` totals
/// before the same argmax, so margins are bit-identical between the
/// reference and packed paths by construction. Zero when fewer than two
/// classes exist (no runner-up) or on an exact tie.
pub fn similarity_margin(totals: &[i64]) -> u64 {
    let mut best = i64::MIN;
    let mut second = i64::MIN;
    for &t in totals {
        if t > best {
            second = best;
            best = t;
        } else if t > second {
            second = t;
        }
    }
    if second == i64::MIN {
        0
    } else {
        // totals are bounded by ±(voters · D), so this never overflows
        (best - second) as u64
    }
}

/// All intermediates of one inference, for inspection, testing, and the
/// hardware simulator (which replays the same pipeline cycle by cycle).
#[derive(Debug, Clone)]
pub struct InferenceTrace {
    /// The DVP output: per-position packed channel words.
    pub value_map: ValueMap,
    /// BiConv output feature map `(O × D)` (the value map re-laid-out as
    /// `(D_H × D)` when BiConv is disabled).
    pub conv_out: BitMatrix,
    /// The encoded sample vector `s` (`D` bits).
    pub encoded: BitVec,
    /// Per-voter, per-class dot-product similarities.
    pub similarities: Vec<Vec<i64>>,
    /// Summed similarities across voters (Eq. 4 without the `1/Θ`, which
    /// does not change the argmax).
    pub totals: Vec<i64>,
    /// The predicted class.
    pub label: usize,
}

impl UniVsaModel {
    /// Classifies one sample (its `W·L` discretized feature levels).
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] if the value count or any level is
    /// out of range for this model.
    ///
    /// # Examples
    ///
    /// See the crate-level quickstart.
    pub fn infer(&self, values: &[u8]) -> Result<usize, UniVsaError> {
        Ok(self.trace(values)?.label)
    }

    /// Classifies one sample and returns every intermediate stage.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] on geometry mismatch.
    pub fn trace(&self, values: &[u8]) -> Result<InferenceTrace, UniVsaError> {
        // parent span for the whole sample: the four stage spans recorded
        // by `stage_mark` causally attach to it while tracing
        let _sample_span = univsa_telemetry::span("infer", "sample");
        let mut timer = univsa_telemetry::enabled().then(Instant::now);
        let mut mem =
            (timer.is_some() && univsa_telemetry::mem_tracking_enabled()).then(AllocMark::now);
        let cfg = self.config();
        let value_map = ValueMap::build(
            values,
            self.mask(),
            self.v_h(),
            self.v_l(),
            cfg.width,
            cfg.length,
        )?;
        stage_mark(&mut timer, &mut mem, "dvp");
        let conv_out = if cfg.enhancements.biconv {
            self.packed_conv(&value_map)
        } else {
            self.channels_as_rows(&value_map)
        };
        stage_mark(&mut timer, &mut mem, "biconv");
        let encoded = self.encode_from_channels(&conv_out)?;
        stage_mark(&mut timer, &mut mem, "encode");
        let similarities: Vec<Vec<i64>> = self
            .class_sets()
            .iter()
            .map(|set| set.dots(&encoded))
            .collect::<Result<_, _>>()?;
        let mut totals = vec![0i64; cfg.classes];
        for sims in &similarities {
            for (t, &s) in totals.iter_mut().zip(sims) {
                *t += s;
            }
        }
        let label = totals
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        stage_mark(&mut timer, &mut mem, "similarity");
        if timer.is_some() {
            univsa_telemetry::counter("infer.samples", 1);
            univsa_telemetry::record_prediction(label as u32, similarity_margin(&totals));
        }
        Ok(InferenceTrace {
            value_map,
            conv_out,
            encoded,
            similarities,
            totals,
            label,
        })
    }

    /// Encodes one sample to its bipolar VSA vector `s` without
    /// classifying.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] on geometry mismatch.
    pub fn encode(&self, values: &[u8]) -> Result<BitVec, UniVsaError> {
        Ok(self.trace(values)?.encoded)
    }

    /// Accuracy over a labelled dataset.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] if the dataset geometry disagrees
    /// with the model or the dataset is empty.
    pub fn evaluate(&self, dataset: &Dataset) -> Result<f64, UniVsaError> {
        if dataset.is_empty() {
            return Err(UniVsaError::Input(
                "cannot evaluate on an empty dataset".into(),
            ));
        }
        let spec = dataset.spec();
        let cfg = self.config();
        if spec.width != cfg.width || spec.length != cfg.length || spec.classes != cfg.classes {
            return Err(UniVsaError::Input(format!(
                "dataset geometry ({}, {}, {} classes) disagrees with model ({}, {}, {})",
                spec.width, spec.length, spec.classes, cfg.width, cfg.length, cfg.classes
            )));
        }
        // compile once, then fan the independent per-sample inferences out
        // to the worker pool through the packed engine (bit-identical to
        // the reference path, several times faster); predictions come back
        // in sample order, so the fold (and any error propagation) is
        // deterministic at every thread count
        let packed = crate::PackedModel::compile(self);
        let samples = dataset.samples();
        let telemetry = univsa_telemetry::enabled();
        let preds = univsa_par::map_indexed("infer.evaluate", samples.len(), |i| {
            let d = packed.infer_detailed(&samples[i].values)?;
            Ok::<_, UniVsaError>((d.label, similarity_margin(&d.totals)))
        });
        let mut correct = 0usize;
        for (pred, sample) in preds.into_iter().zip(samples) {
            let (label, margin) = pred?;
            if telemetry {
                // labels are available here, so feed the quality plane's
                // confusion/calibration stream alongside the accuracy fold
                univsa_telemetry::record_outcome(sample.label as u32, label as u32, margin);
            }
            if label == sample.label {
                correct += 1;
            }
        }
        Ok(correct as f64 / dataset.len() as f64)
    }

    /// Full confusion matrix over a labelled dataset — balanced accuracy
    /// matters on imbalanced tasks like CHB-IB.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] under the same conditions as
    /// [`UniVsaModel::evaluate`].
    pub fn evaluate_confusion(
        &self,
        dataset: &Dataset,
    ) -> Result<univsa_nn::ConfusionMatrix, UniVsaError> {
        if dataset.is_empty() {
            return Err(UniVsaError::Input(
                "cannot evaluate on an empty dataset".into(),
            ));
        }
        let packed = crate::PackedModel::compile(self);
        let samples = dataset.samples();
        let telemetry = univsa_telemetry::enabled();
        let preds = univsa_par::map_indexed("infer.evaluate", samples.len(), |i| {
            let d = packed.infer_detailed(&samples[i].values)?;
            Ok::<_, UniVsaError>((d.label, similarity_margin(&d.totals)))
        });
        let mut cm = univsa_nn::ConfusionMatrix::new(self.config().classes);
        for (pred, sample) in preds.into_iter().zip(samples) {
            let (label, margin) = pred?;
            if telemetry {
                univsa_telemetry::record_outcome(sample.label as u32, label as u32, margin);
            }
            cm.record(sample.label, label);
        }
        Ok(cm)
    }

    /// The packed binary convolution: for every output channel and grid
    /// position, the bipolar tap sum is accumulated as
    /// `Σ (2·popcount(xnor(value_word, kernel_word)) − D_H)` over in-bounds
    /// taps (out-of-bounds taps contribute 0, i.e. zero padding), then
    /// binarized with `sgn(0) = +1`.
    fn packed_conv(&self, vm: &ValueMap) -> BitMatrix {
        let cfg = self.config();
        let (w, l, k, o_count) = (cfg.width, cfg.length, cfg.d_k, cfg.out_channels);
        let d_h = cfg.d_h as i64;
        let pad = (k / 2) as isize;
        let chan_mask = if cfg.d_h >= 64 {
            u64::MAX
        } else {
            (1u64 << cfg.d_h) - 1
        };
        let d = w * l;
        let rows = (0..o_count)
            .map(|o| {
                let mut row = BitVec::zeros(d);
                for y in 0..w {
                    for x in 0..l {
                        let mut acc = 0i64;
                        for ky in 0..k {
                            let iy = y as isize + ky as isize - pad;
                            for kx in 0..k {
                                let ix = x as isize + kx as isize - pad;
                                if let Some(word) = vm.word_at(iy, ix) {
                                    let kw = self.kernel_word(o, ky, kx);
                                    let agree =
                                        kernels::xnor_popcount_word(word, kw, chan_mask) as i64;
                                    acc += 2 * agree - d_h;
                                }
                            }
                        }
                        if acc >= 0 {
                            row.set(y * l + x, true);
                        }
                    }
                }
                row
            })
            .collect::<Vec<_>>();
        BitMatrix::from_rows(rows).expect("conv rows share dimension")
    }

    /// Lays the value map out as channel rows `(D_H × D)` for the
    /// BiConv-disabled path.
    fn channels_as_rows(&self, vm: &ValueMap) -> BitMatrix {
        let cfg = self.config();
        let d = cfg.vsa_dim();
        let rows = (0..cfg.d_h)
            .map(|c| {
                let mut row = BitVec::zeros(d);
                for pos in 0..d {
                    if (vm.word(pos) >> c) & 1 == 1 {
                        row.set(pos, true);
                    }
                }
                row
            })
            .collect::<Vec<_>>();
        BitMatrix::from_rows(rows).expect("channel rows share dimension")
    }

    /// The encoding stage: XNOR each channel row with its feature vector
    /// and majority-bundle across channels (`sgn(0) = +1`).
    fn encode_from_channels(&self, channels: &BitMatrix) -> Result<BitVec, UniVsaError> {
        let d = self.config().vsa_dim();
        let mut bundler = Bundler::new(d);
        for (o, row) in channels.iter().enumerate() {
            let bound = row.xnor(self.f().row(o))?;
            bundler.add(&bound)?;
        }
        Ok(bundler.finish())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::{Enhancements, Mask, UniVsaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use univsa_data::TaskSpec;

    fn spec() -> TaskSpec {
        TaskSpec {
            name: "t".into(),
            width: 4,
            length: 5,
            classes: 3,
            levels: 8,
        }
    }

    pub(crate) fn random_model(seed: u64, enhancements: Enhancements) -> UniVsaModel {
        let cfg = UniVsaConfig::for_task(&spec())
            .d_h(4)
            .d_l(2)
            .d_k(3)
            .out_channels(6)
            .voters(2)
            .enhancements(enhancements)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = if enhancements.dvp {
            Mask::from_bits((0..cfg.features()).map(|i| i % 3 != 0).collect())
        } else {
            Mask::all_high(cfg.features())
        };
        let v_h = BitMatrix::random(cfg.levels, cfg.d_h, &mut rng);
        let v_l = BitMatrix::random(cfg.levels, cfg.effective_d_l(), &mut rng);
        let kernel = if enhancements.biconv {
            (0..cfg.out_channels * cfg.d_k * cfg.d_k)
                .map(|_| rand::Rng::gen::<u64>(&mut rng) & 0xF)
                .collect()
        } else {
            vec![]
        };
        let f = BitMatrix::random(cfg.encoding_channels(), cfg.vsa_dim(), &mut rng);
        let c = (0..cfg.effective_voters())
            .map(|_| BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng))
            .collect();
        UniVsaModel::from_parts(cfg, mask, v_h, v_l, kernel, f, c).unwrap()
    }

    #[test]
    fn infer_runs_and_is_deterministic() {
        let model = random_model(0, Enhancements::all());
        let values: Vec<u8> = (0..20).map(|i| (i % 8) as u8).collect();
        let a = model.infer(&values).unwrap();
        let b = model.infer(&values).unwrap();
        assert_eq!(a, b);
        assert!(a < 3);
    }

    #[test]
    fn trace_exposes_consistent_stages() {
        let model = random_model(1, Enhancements::all());
        let values: Vec<u8> = (0..20).map(|i| (i % 8) as u8).collect();
        let t = model.trace(&values).unwrap();
        assert_eq!(t.conv_out.rows(), 6);
        assert_eq!(t.conv_out.dim(), 20);
        assert_eq!(t.encoded.dim(), 20);
        assert_eq!(t.similarities.len(), 2);
        assert_eq!(t.totals.len(), 3);
        // totals are voter sums
        for j in 0..3 {
            assert_eq!(t.totals[j], t.similarities[0][j] + t.similarities[1][j]);
        }
        // argmax consistency
        assert_eq!(
            t.label,
            (0..3)
                .max_by_key(|&j| (t.totals[j], std::cmp::Reverse(j)))
                .unwrap()
        );
        assert_eq!(model.encode(&values).unwrap(), t.encoded);
    }

    #[test]
    fn biconv_disabled_uses_channels() {
        let e = Enhancements {
            biconv: false,
            ..Enhancements::all()
        };
        let model = random_model(2, e);
        let values: Vec<u8> = (0..20).map(|i| (i % 8) as u8).collect();
        let t = model.trace(&values).unwrap();
        assert_eq!(t.conv_out.rows(), 4); // D_H channels
                                          // channel rows reproduce the value map bits
        for c in 0..4 {
            for pos in 0..20 {
                assert_eq!(
                    t.conv_out.row(c).get(pos) == Some(true),
                    (t.value_map.word(pos) >> c) & 1 == 1
                );
            }
        }
    }

    /// The packed convolution must agree with a naive ±1 integer
    /// convolution with zero padding.
    #[test]
    fn packed_conv_matches_naive() {
        let model = random_model(3, Enhancements::all());
        let values: Vec<u8> = (0..20).map(|i| ((i * 3) % 8) as u8).collect();
        let t = model.trace(&values).unwrap();
        let cfg = model.config();
        let (w, l, k) = (cfg.width, cfg.length, cfg.d_k);
        let pad = (k / 2) as isize;
        for o in 0..cfg.out_channels {
            for y in 0..w {
                for x in 0..l {
                    let mut acc = 0i64;
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = y as isize + ky as isize - pad;
                            let ix = x as isize + kx as isize - pad;
                            if iy < 0 || ix < 0 || iy >= w as isize || ix >= l as isize {
                                continue;
                            }
                            let pos = iy as usize * l + ix as usize;
                            let kw = model.kernel_word(o, ky, kx);
                            for c in 0..cfg.d_h {
                                let xv = t.value_map.bipolar(pos, c) as i64;
                                let kv = if (kw >> c) & 1 == 1 { 1i64 } else { -1 };
                                acc += xv * kv;
                            }
                        }
                    }
                    let expect = acc >= 0;
                    assert_eq!(
                        t.conv_out.row(o).get(y * l + x),
                        Some(expect),
                        "mismatch at o={o} y={y} x={x}: acc={acc}"
                    );
                }
            }
        }
    }

    /// Encoding must agree with naive per-position channel bundling.
    #[test]
    fn encoding_matches_naive() {
        let model = random_model(4, Enhancements::all());
        let values: Vec<u8> = (0..20).map(|i| ((7 * i) % 8) as u8).collect();
        let t = model.trace(&values).unwrap();
        let cfg = model.config();
        for d in 0..cfg.vsa_dim() {
            let mut sum = 0i64;
            for o in 0..cfg.out_channels {
                let a = if t.conv_out.row(o).get(d) == Some(true) {
                    1i64
                } else {
                    -1
                };
                let f = if model.f().row(o).get(d) == Some(true) {
                    1i64
                } else {
                    -1
                };
                sum += a * f;
            }
            assert_eq!(t.encoded.get(d), Some(sum >= 0), "position {d}, sum {sum}");
        }
    }

    #[test]
    fn evaluate_checks_geometry() {
        let model = random_model(5, Enhancements::all());
        let bad_spec = TaskSpec {
            name: "x".into(),
            width: 3,
            length: 5,
            classes: 3,
            levels: 8,
        };
        let ds = univsa_data::Dataset::new(
            bad_spec,
            vec![univsa_data::Sample {
                values: vec![0; 15],
                label: 0,
            }],
        )
        .unwrap();
        assert!(model.evaluate(&ds).is_err());
    }

    #[test]
    fn infer_rejects_bad_input() {
        let model = random_model(6, Enhancements::all());
        assert!(model.infer(&[0u8; 3]).is_err());
        // level 8 out of range for M = 8
        let mut values = vec![0u8; 20];
        values[0] = 8;
        assert!(model.infer(&values).is_err());
    }
}
