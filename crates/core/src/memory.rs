//! The paper's hardware-overhead models: memory (Eq. 5), resource (Eq. 6),
//! and the combined hardware loss (Eq. 7).

use crate::{Enhancements, UniVsaConfig};

/// Per-component memory footprint of a UniVSA model, in bits.
///
/// Implements the paper's Eq. 5,
/// `Memory = M·(D_H + D_L) + O·D_H·D_K² + W·L·O + W·L·Θ·C`,
/// adjusted for whichever enhancements are active (a disabled DVP drops the
/// `VB_L` table; a disabled BiConv drops the kernel and encodes directly
/// over the `D_H` value channels; disabled soft voting forces `Θ = 1`).
///
/// # Examples
///
/// ```
/// use univsa::{MemoryReport, UniVsaConfig};
/// use univsa_data::TaskSpec;
/// let spec = TaskSpec { name: "t".into(), width: 16, length: 40, classes: 26, levels: 256 };
/// let cfg = UniVsaConfig::for_task(&spec)
///     .d_h(4).d_l(4).d_k(3).out_channels(22).voters(3).build()?;
/// let report = MemoryReport::for_config(&cfg);
/// // ISOLET config: Table II reports 8.36 KB (decimal kilobytes) — Eq. 5
/// // gives exactly 66 840 bits = 8.355 KB
/// assert_eq!(report.total_bits(), 66_840);
/// assert!((report.total_kb() - 8.36).abs() < 0.01);
/// // the component table renders every Eq. 5 term
/// let table = report.breakdown();
/// assert!(table.contains("value") && table.contains("66840"));
/// # Ok::<(), univsa::UniVsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryReport {
    /// Value-box tables **V**: `M·D_H (+ M·D_L with DVP)` bits.
    pub value_bits: usize,
    /// Convolution kernels **K**: `O·D_H·D_K²` bits (0 without BiConv).
    pub kernel_bits: usize,
    /// Feature vectors **F**: `W·L·O` bits.
    pub feature_bits: usize,
    /// Class vectors **C**: `W·L·Θ·C` bits.
    pub class_bits: usize,
}

impl MemoryReport {
    /// Evaluates the memory model for a configuration.
    pub fn for_config(config: &UniVsaConfig) -> Self {
        let d = config.vsa_dim();
        let value_bits = config.levels * config.d_h
            + if config.enhancements.dvp {
                config.levels * config.d_l
            } else {
                0
            };
        let kernel_bits = if config.enhancements.biconv {
            config.out_channels * config.d_h * config.d_k * config.d_k
        } else {
            0
        };
        let feature_bits = d * config.encoding_channels();
        let class_bits = d * config.effective_voters() * config.classes;
        Self {
            value_bits,
            kernel_bits,
            feature_bits,
            class_bits,
        }
    }

    /// Total footprint in bits.
    pub fn total_bits(&self) -> usize {
        self.value_bits + self.kernel_bits + self.feature_bits + self.class_bits
    }

    /// Total footprint in KiB (bits / 8 / 1024).
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// Total footprint in decimal kilobytes (bits / 8 / 1000) — the unit
    /// of the paper's Table II memory column (e.g. ISOLET's 66 840 bits
    /// print as its 8.36 KB).
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1000.0
    }

    /// The `(name, bits)` component rows in Eq. 5 order.
    pub fn components(&self) -> [(&'static str, usize); 4] {
        [
            ("value", self.value_bits),
            ("kernel", self.kernel_bits),
            ("feature", self.feature_bits),
            ("class", self.class_bits),
        ]
    }

    /// Renders the Eq. 5 component table as aligned text — the shape
    /// `univsa memsnap` prints and the doc example exercises.
    pub fn breakdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>9}  Eq. 5 term",
            "component", "bits", "KB"
        );
        let terms = [
            "M\u{b7}D_H (+ M\u{b7}D_L with DVP)",
            "O\u{b7}D_H\u{b7}D_K\u{b2}",
            "W\u{b7}L\u{b7}O",
            "W\u{b7}L\u{b7}\u{398}\u{b7}C",
        ];
        for ((name, bits), term) in self.components().iter().zip(terms) {
            let _ = writeln!(
                out,
                "{:<10} {:>10} {:>9.3}  {}",
                name,
                bits,
                *bits as f64 / 8000.0,
                term
            );
        }
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>9.3}  ({:.3} KiB)",
            "total",
            self.total_bits(),
            self.total_kb(),
            self.total_kib()
        );
        out
    }
}

/// The paper's Eq. 6 resource estimate in units of the coefficient `β`:
/// `Resource / β ≈ D_K · O · D_H` — the BiConv datapath dominates resource
/// usage, so the estimate tracks its kernel size and channel widths.
///
/// Without BiConv the convolution datapath disappears and the estimate
/// falls back to the encoding datapath width `D_H`.
pub fn resource_estimate(config: &UniVsaConfig) -> f64 {
    if config.enhancements.biconv {
        (config.d_k * config.out_channels * config.d_h) as f64
    } else {
        config.d_h as f64
    }
}

/// The paper's Eq. 7 combined hardware penalty:
/// `L_HW = λ₁·Memory/M₀ + λ₂·Resource/R₀`,
/// with the basis `(M₀, R₀)` evaluated at the paper's reference
/// configuration `(D_H, D_L, D_K, O, Θ, M) = (4, 2, 3, 64, 1, 256)` on the
/// same task geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareLoss {
    /// Memory weight `λ₁` (paper: 0.005).
    pub lambda_memory: f64,
    /// Resource weight `λ₂` (paper: 0.005).
    pub lambda_resource: f64,
}

impl HardwareLoss {
    /// The paper's evaluation setting `λ₁ = λ₂ = 0.005`.
    pub fn paper() -> Self {
        Self {
            lambda_memory: 0.005,
            lambda_resource: 0.005,
        }
    }

    /// Evaluates `L_HW` for a configuration.
    pub fn evaluate(&self, config: &UniVsaConfig) -> f64 {
        let basis = basis_config(config);
        let m0 = MemoryReport::for_config(&basis).total_bits() as f64;
        let r0 = resource_estimate(&basis);
        let m = MemoryReport::for_config(config).total_bits() as f64;
        let r = resource_estimate(config);
        self.lambda_memory * m / m0 + self.lambda_resource * r / r0
    }
}

impl Default for HardwareLoss {
    fn default() -> Self {
        Self::paper()
    }
}

/// The paper's basis configuration on the given task geometry.
fn basis_config(config: &UniVsaConfig) -> UniVsaConfig {
    UniVsaConfig {
        d_h: 4,
        d_l: 2,
        d_k: 3,
        out_channels: 64,
        voters: 1,
        levels: 256,
        enhancements: Enhancements::all(),
        ..config.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa_data::TaskSpec;

    #[allow(clippy::too_many_arguments)]
    fn config(
        d_h: usize,
        d_l: usize,
        d_k: usize,
        o: usize,
        theta: usize,
        w: usize,
        l: usize,
        c: usize,
    ) -> UniVsaConfig {
        let spec = TaskSpec {
            name: "t".into(),
            width: w,
            length: l,
            classes: c,
            levels: 256,
        };
        UniVsaConfig::for_task(&spec)
            .d_h(d_h)
            .d_l(d_l)
            .d_k(d_k)
            .out_channels(o)
            .voters(theta)
            .build()
            .unwrap()
    }

    #[test]
    fn eq5_components() {
        let c = config(8, 2, 3, 95, 1, 16, 64, 2);
        let r = MemoryReport::for_config(&c);
        assert_eq!(r.value_bits, 256 * (8 + 2));
        assert_eq!(r.kernel_bits, 95 * 8 * 9);
        assert_eq!(r.feature_bits, 16 * 64 * 95);
        assert_eq!(r.class_bits, 16 * 64 * 2);
        assert_eq!(r.total_bits(), 256 * 10 + 95 * 72 + 1024 * 95 + 1024 * 2);
    }

    /// The paper's Table II memory column for UniVSA is reproduced by
    /// Eq. 5 **exactly** once the unit is read as decimal kilobytes:
    /// EEGMMI 13.59 KB, ISOLET 8.36 KB, HAR 3.14 KB, BCI-III-V 3.57 KB,
    /// each to the table's two printed decimals.
    #[test]
    fn table2_memory_shapes() {
        let eegmmi = MemoryReport::for_config(&config(8, 2, 3, 95, 1, 16, 64, 2));
        assert!(
            (eegmmi.total_kb() - 13.59).abs() < 0.005,
            "EEGMMI {:.3}",
            eegmmi.total_kb()
        );
        let isolet = MemoryReport::for_config(&config(4, 4, 3, 22, 3, 16, 40, 26));
        assert!(
            (isolet.total_kb() - 8.36).abs() < 0.01,
            "ISOLET {:.3}",
            isolet.total_kb()
        );
        let har = MemoryReport::for_config(&config(8, 4, 3, 18, 3, 16, 36, 6));
        #[allow(clippy::approx_constant)] // Table II reports 3.14 KB
        let har_paper_kb = 3.14;
        assert!(
            (har.total_kb() - har_paper_kb).abs() < 0.005,
            "HAR {:.3}",
            har.total_kb()
        );
        let bci = MemoryReport::for_config(&config(8, 1, 3, 151, 3, 16, 6, 3));
        assert!(
            (bci.total_kb() - 3.57).abs() < 0.005,
            "BCI {:.3}",
            bci.total_kb()
        );
    }

    #[test]
    fn breakdown_lists_every_component_and_total() {
        let r = MemoryReport::for_config(&config(4, 4, 3, 22, 3, 16, 40, 26));
        let text = r.breakdown();
        for name in ["value", "kernel", "feature", "class", "total"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("66840"), "{text}");
        let parts: usize = r.components().iter().map(|(_, b)| b).sum();
        assert_eq!(parts, r.total_bits());
    }

    #[test]
    fn disabled_enhancements_shrink_memory() {
        let spec = TaskSpec {
            name: "t".into(),
            width: 8,
            length: 8,
            classes: 2,
            levels: 256,
        };
        let full = UniVsaConfig::for_task(&spec)
            .d_h(8)
            .d_l(2)
            .voters(3)
            .out_channels(16)
            .build()
            .unwrap();
        let bare = UniVsaConfig::for_task(&spec)
            .d_h(8)
            .d_l(2)
            .voters(3)
            .out_channels(16)
            .enhancements(Enhancements::none())
            .build()
            .unwrap();
        let mf = MemoryReport::for_config(&full);
        let mb = MemoryReport::for_config(&bare);
        assert_eq!(mb.kernel_bits, 0);
        assert!(mb.value_bits < mf.value_bits);
        assert!(mb.class_bits < mf.class_bits);
    }

    #[test]
    fn resource_tracks_conv_size() {
        let small = config(4, 2, 3, 16, 1, 8, 8, 2);
        let big = config(8, 2, 5, 64, 1, 8, 8, 2);
        assert!(resource_estimate(&big) > resource_estimate(&small));
        assert_eq!(resource_estimate(&small), (3 * 16 * 4) as f64);
    }

    #[test]
    fn basis_loss_is_lambda_sum() {
        // at the basis configuration both ratios are 1
        let c = config(4, 2, 3, 64, 1, 8, 8, 2);
        let loss = HardwareLoss::paper().evaluate(&c);
        assert!((loss - 0.01).abs() < 1e-12);
    }

    #[test]
    fn loss_monotone_in_config_size() {
        let small = config(4, 2, 3, 16, 1, 8, 8, 2);
        let big = config(16, 8, 5, 64, 5, 8, 8, 2);
        let hl = HardwareLoss::paper();
        assert!(hl.evaluate(&big) > hl.evaluate(&small));
    }
}
