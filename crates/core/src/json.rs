//! Minimal JSON reader/writer (no external dependencies).
//!
//! Originally built for the legacy v1 model container (which serialized
//! [`crate::UniVsaModel`] through `serde_json` derive — this module
//! replicates that exact document layout so v1 files keep loading after
//! the workspace dropped its external dependencies). It is public because
//! downstream tooling also uses it to parse the telemetry JSONL stream and
//! the perf-baseline report. Deliberately tiny: objects, arrays, strings,
//! booleans, numbers — with unsigned 64-bit integers preserved exactly,
//! because packed weight words must not pass through an `f64`.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep an exact `u64` alongside the `f64`
/// when the literal was a non-negative integer in range.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; `.1` is the exact value for unsigned-integer literals.
    Num(f64, Option<u64>),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The exact unsigned value, when this was an unsigned-integer literal.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(_, exact) => *exact,
            _ => None,
        }
    }

    /// The exact value as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The numeric value, when this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v, _) => Some(*v),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &[u8]) -> Result<Json, String> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected '{}' at offset {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected byte '{}' at offset {}",
                other as char, self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.bump()? as char)
                                .to_digit(16)
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        // surrogate pairs are not used by any model field
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                },
                byte => {
                    // pass UTF-8 continuation bytes through unchanged
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.input.len() && self.input[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let chunk = std::str::from_utf8(&self.input[start..end])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| "invalid number bytes")?;
        let value: f64 = text
            .parse()
            .map_err(|_| format!("invalid number '{text}'"))?;
        // exact path for unsigned-integer literals (packed weight words)
        let exact = if text.bytes().all(|b| b.is_ascii_digit()) {
            text.parse::<u64>().ok()
        } else {
            None
        };
        Ok(Json::Num(value, exact))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Json::Arr(items)),
                other => return Err(format!("expected ',' or ']', found '{}'", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Json::Obj(fields)),
                other => return Err(format!("expected ',' or '}}', found '{}'", other as char)),
            }
        }
    }
}

/// Serializes a value back to compact JSON (the layout `serde_json` used:
/// no whitespace, object fields in insertion order).
pub fn write(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(_, Some(exact)) => {
            let _ = write!(out, "{exact}");
        }
        Json::Num(v, None) => {
            let _ = write!(out, "{v}");
        }
        Json::Str(s) => {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(&Json::Str(k.clone()), out);
                out.push(':');
                write(v, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_model_like_document() {
        let doc = br#"{"config":{"d_h":4,"high_fraction":0.75},"mask":{"bits":[true,false]},"words":[18446744073709551615,0]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("config").unwrap().get("d_h").unwrap().as_usize(),
            Some(4)
        );
        assert_eq!(
            v.get("config")
                .unwrap()
                .get("high_fraction")
                .unwrap()
                .as_f64(),
            Some(0.75)
        );
        let bits = v
            .get("mask")
            .unwrap()
            .get("bits")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(bits[0].as_bool(), Some(true));
        // u64::MAX survives exactly (would be lossy through f64)
        let words = v.get("words").unwrap().as_arr().unwrap();
        assert_eq!(words[0].as_u64(), Some(u64::MAX));
        assert_eq!(words[1].as_u64(), Some(0));
    }

    #[test]
    fn roundtrips_through_writer() {
        let doc = br#"{"a":[1,2.5,-3],"b":"x\"y","c":null,"d":true}"#;
        let v = parse(doc).unwrap();
        let mut out = String::new();
        write(&v, &mut out);
        assert_eq!(parse(out.as_bytes()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse(b"{").is_err());
        assert!(parse(b"[1,]").is_err());
        assert!(parse(b"{\"a\" 1}").is_err());
        assert!(parse(b"123 45").is_err());
        assert!(parse(b"").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse(b" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
