//! Footprint audit: walks a trained model's *actual* in-memory packed
//! structures and reconciles them against the paper's Eq. 5 memory model
//! ([`MemoryReport`]).
//!
//! Eq. 5 charges logical bits (`rows · dim`); the deployed [`BitMatrix`]
//! rows are padded to whole `u64` words, so the actual resident bits are
//! `rows · ceil(dim/64) · 64`. The audit makes that padding visible per
//! component: the `actual / modeled` ratio is exactly `1.0` whenever the
//! component dimension is a multiple of 64 (e.g. the `D`-dimensional
//! feature and class vectors of every paper configuration with
//! `D % 64 == 0`), and at most `64 / dim` otherwise (the narrow `D_H`-bit
//! value tables and one-word-per-tap kernels are the extreme cases).

use univsa_bits::BitMatrix;

use crate::{MemoryReport, UniVsaModel};

/// One audited weight store: the paper-model bit charge next to the bits
/// the packed representation actually occupies in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentAudit {
    /// Component name (`value`, `kernel`, `feature`, `class`).
    pub name: &'static str,
    /// Bits charged by Eq. 5 for this component.
    pub modeled_bits: usize,
    /// Bits the packed in-memory representation occupies (word-padded).
    pub actual_bits: usize,
}

impl ComponentAudit {
    /// `actual / modeled` — the word-padding overhead factor. `1.0` means
    /// the deployment stores exactly the modeled bits; `0.0` when the
    /// component is absent (modeled 0 bits).
    pub fn ratio(&self) -> f64 {
        if self.modeled_bits == 0 {
            return if self.actual_bits == 0 { 1.0 } else { 0.0 };
        }
        self.actual_bits as f64 / self.modeled_bits as f64
    }
}

/// Word-padded resident bits of a packed bit-matrix: each row stores
/// `ceil(dim/64)` whole `u64` words.
fn resident_bits(m: &BitMatrix) -> usize {
    m.rows() * m.dim().div_ceil(64) * 64
}

/// Reconciliation of a trained model's resident weight storage against
/// the Eq. 5 memory model, component by component.
#[derive(Debug, Clone, PartialEq)]
pub struct FootprintAudit {
    /// The Eq. 5 report the audit is reconciled against.
    pub report: MemoryReport,
    /// Per-component modeled vs. actual bits, in Eq. 5 order
    /// (value, kernel, feature, class).
    pub components: Vec<ComponentAudit>,
}

impl FootprintAudit {
    /// Audits a model by walking its packed weight stores.
    ///
    /// Mirrors [`UniVsaModel::storage_bits`]: without DVP the `VB_L`
    /// table is a never-consulted placeholder and is not counted; the
    /// kernel stores one `u64` word per tap regardless of `D_H`.
    pub fn of_model(model: &UniVsaModel) -> Self {
        let report = model.memory_report();
        let cfg = model.config();
        let value_actual = resident_bits(model.v_h())
            + if cfg.enhancements.dvp {
                resident_bits(model.v_l())
            } else {
                0
            };
        let kernel_actual = model.kernel_words().len() * 64;
        let feature_actual = resident_bits(model.f());
        let class_actual: usize = model.class_sets().iter().map(resident_bits).sum();
        let components = vec![
            ComponentAudit {
                name: "value",
                modeled_bits: report.value_bits,
                actual_bits: value_actual,
            },
            ComponentAudit {
                name: "kernel",
                modeled_bits: report.kernel_bits,
                actual_bits: kernel_actual,
            },
            ComponentAudit {
                name: "feature",
                modeled_bits: report.feature_bits,
                actual_bits: feature_actual,
            },
            ComponentAudit {
                name: "class",
                modeled_bits: report.class_bits,
                actual_bits: class_actual,
            },
        ];
        Self { report, components }
    }

    /// Total modeled bits (equals [`MemoryReport::total_bits`]).
    pub fn modeled_total_bits(&self) -> usize {
        self.components.iter().map(|c| c.modeled_bits).sum()
    }

    /// Total word-padded resident bits across all weight stores.
    pub fn actual_total_bits(&self) -> usize {
        self.components.iter().map(|c| c.actual_bits).sum()
    }

    /// Overall `actual / modeled` ratio.
    pub fn ratio(&self) -> f64 {
        if self.modeled_total_bits() == 0 {
            return 1.0;
        }
        self.actual_total_bits() as f64 / self.modeled_total_bits() as f64
    }

    /// Publishes `model.footprint.<component>_bits` gauges (actual
    /// resident bits) plus the modeled total on the telemetry registry.
    pub fn emit_gauges(&self) {
        for c in &self.components {
            let gauge = match c.name {
                "value" => "model.footprint.value_bits",
                "kernel" => "model.footprint.kernel_bits",
                "feature" => "model.footprint.feature_bits",
                _ => "model.footprint.class_bits",
            };
            univsa_telemetry::counter(gauge, c.actual_bits as u64);
        }
        univsa_telemetry::counter(
            "model.footprint.modeled_bits",
            self.modeled_total_bits() as u64,
        );
    }

    /// Aligned reconciliation table (component | Eq. 5 bits | actual bits
    /// | ratio), ending with a total row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>8}\n",
            "component", "eq5 bits", "actual bits", "ratio"
        ));
        for c in &self.components {
            out.push_str(&format!(
                "{:<10} {:>12} {:>12} {:>8.3}\n",
                c.name,
                c.modeled_bits,
                c.actual_bits,
                c.ratio()
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>8.3}\n",
            "total",
            self.modeled_total_bits(),
            self.actual_total_bits(),
            self.ratio()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mask, UniVsaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use univsa_data::TaskSpec;

    fn model_for(cfg: UniVsaConfig, seed: u64) -> UniVsaModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = Mask::all_high(cfg.features());
        let v_h = BitMatrix::random(cfg.levels, cfg.d_h, &mut rng);
        let v_l = BitMatrix::random(cfg.levels, cfg.effective_d_l(), &mut rng);
        let kernel = if cfg.enhancements.biconv {
            (0..cfg.out_channels * cfg.d_k * cfg.d_k)
                .map(|i| i as u64)
                .collect()
        } else {
            vec![]
        };
        let f = BitMatrix::random(cfg.encoding_channels(), cfg.vsa_dim(), &mut rng);
        let c = (0..cfg.effective_voters())
            .map(|_| BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng))
            .collect();
        UniVsaModel::from_parts(cfg, mask, v_h, v_l, kernel, f, c).unwrap()
    }

    fn isolet_config() -> UniVsaConfig {
        let spec = TaskSpec {
            name: "isolet".into(),
            width: 16,
            length: 40,
            classes: 26,
            levels: 256,
        };
        UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(4)
            .d_k(3)
            .out_channels(22)
            .voters(3)
            .build()
            .unwrap()
    }

    #[test]
    fn modeled_total_matches_eq5_and_storage_bits() {
        let model = model_for(isolet_config(), 7);
        let audit = FootprintAudit::of_model(&model);
        assert_eq!(audit.modeled_total_bits(), audit.report.total_bits());
        assert_eq!(audit.modeled_total_bits(), model.storage_bits());
    }

    #[test]
    fn isolet_padding_ratios_follow_word_math() {
        // ISOLET: D = 40 · 16 = 640 = 10 · 64, so feature/class rows pad
        // to exactly their logical width (ratio 1.0). The D_H = 4 value
        // rows and the one-word-per-tap kernel pad 64/4 = 16×.
        let model = model_for(isolet_config(), 8);
        let audit = FootprintAudit::of_model(&model);
        let by_name = |n: &str| {
            *audit
                .components
                .iter()
                .find(|c| c.name == n)
                .expect("component present")
        };
        assert_eq!(by_name("feature").ratio(), 1.0);
        assert_eq!(by_name("class").ratio(), 1.0);
        assert_eq!(by_name("value").ratio(), 16.0);
        assert_eq!(by_name("kernel").ratio(), 16.0);
        // generic bound: padding can never exceed a full word per row
        for c in &audit.components {
            assert!(c.ratio() <= 64.0, "{}: {}", c.name, c.ratio());
        }
        assert!(audit.ratio() > 1.0 && audit.ratio() <= 16.0);
    }

    #[test]
    fn render_lists_all_components() {
        let model = model_for(isolet_config(), 9);
        let table = FootprintAudit::of_model(&model).render();
        for name in ["component", "value", "kernel", "feature", "class", "total"] {
            assert!(table.contains(name), "missing {name}:\n{table}");
        }
    }

    #[test]
    fn ratio_handles_absent_components() {
        let c = ComponentAudit {
            name: "kernel",
            modeled_bits: 0,
            actual_bits: 0,
        };
        assert_eq!(c.ratio(), 1.0);
    }
}
