//! Observing the training loop.
//!
//! [`UniVsaTrainer::fit_observed`](crate::UniVsaTrainer::fit_observed)
//! reports per-epoch statistics to an [`EpochObserver`] while it trains —
//! the hook the CLI uses for live progress lines and the bench harness
//! uses for wall-time accounting. Telemetry spans (`train.epoch`,
//! `train.fit`) are emitted independently of the observer through the
//! global [`univsa_telemetry`] registry, so `UNIVSA_TELEMETRY=jsonl:…`
//! captures the training trajectory even with the no-op observer.

use std::time::Duration;

/// Statistics of one completed training epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Zero-based index of the completed epoch.
    pub epoch: usize,
    /// Total planned epochs of this fit.
    pub epochs: usize,
    /// Mean cross-entropy over the epoch's batches.
    pub loss: f32,
    /// Training accuracy from the training-time logits.
    pub accuracy: f64,
    /// Wall-clock duration of the epoch.
    pub duration: Duration,
}

/// Receives training-loop progress from
/// [`UniVsaTrainer::fit_observed`](crate::UniVsaTrainer::fit_observed).
pub trait EpochObserver {
    /// Called after every completed epoch.
    fn on_epoch(&mut self, stats: &EpochStats);

    /// Called once after the last epoch, with the total fit wall time.
    fn on_fit_done(&mut self, epochs: usize, total: Duration) {
        let _ = (epochs, total);
    }
}

/// The no-op observer: `trainer.fit_observed(data, seed, &mut ())`.
impl EpochObserver for () {
    fn on_epoch(&mut self, _stats: &EpochStats) {}
}

/// Any `FnMut(&EpochStats)` closure is an observer.
impl<F: FnMut(&EpochStats)> EpochObserver for F {
    fn on_epoch(&mut self, stats: &EpochStats) {
        self(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_observer_is_noop() {
        let mut obs = ();
        obs.on_epoch(&EpochStats {
            epoch: 0,
            epochs: 1,
            loss: 0.5,
            accuracy: 0.9,
            duration: Duration::from_millis(2),
        });
        obs.on_fit_done(1, Duration::from_millis(2));
    }

    #[test]
    fn closures_observe() {
        let mut seen = Vec::new();
        {
            let mut obs = |s: &EpochStats| seen.push(s.epoch);
            obs.on_epoch(&EpochStats {
                epoch: 4,
                epochs: 5,
                loss: 0.1,
                accuracy: 1.0,
                duration: Duration::ZERO,
            });
        }
        assert_eq!(seen, [4]);
    }
}
