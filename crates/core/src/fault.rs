//! Fault injection: weight-memory and sensor fault models.
//!
//! Binary VSA's claim to hardware friendliness rests partly on holographic
//! robustness: every bit of **V**, **F**, **K**, **C** carries the same
//! tiny share of the decision, so single-event upsets (radiation, weak
//! retention in low-voltage SRAM) degrade accuracy gracefully instead of
//! catastrophically — unlike a float MSB flip. This module makes that claim
//! testable, and goes beyond iid bit flips:
//!
//! - [`FaultModel::BitFlip`] — each stored bit flips independently (SEUs).
//! - [`FaultModel::StuckAt0`] / [`FaultModel::StuckAt1`] — manufacturing
//!   or wear-out defects that pin cells to one value.
//! - [`FaultModel::WordBurst`] — whole 64-bit words corrupted at once, the
//!   signature of a row/column driver fault or an uncorrected burst in a
//!   word-organized BRAM.
//! - [`FaultTarget`] — faults can hit all weight memory or a single
//!   component (value tables, kernels, feature vectors, class vectors),
//!   exposing which stores the decision leans on.
//! - [`SensorFaultSpec`] — input-side faults: dead channels, saturated
//!   channels, and discretization-level noise on the sensor front-end.
//!
//! Everything is seeded and reproducible. This is an *extension*
//! experiment beyond the paper's evaluation (see `ext_robustness` in the
//! bench crate).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use univsa_bits::{BitMatrix, BitVec};
use univsa_data::{Dataset, Sample};

use crate::{UniVsaError, UniVsaModel};

/// How individual memory cells fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// Each stored bit flips independently with this probability.
    BitFlip {
        /// Per-bit flip probability in `[0, 1]`.
        rate: f64,
    },
    /// Each stored bit is pinned to 0 with this probability.
    StuckAt0 {
        /// Per-bit defect probability in `[0, 1]`.
        rate: f64,
    },
    /// Each stored bit is pinned to 1 with this probability.
    StuckAt1 {
        /// Per-bit defect probability in `[0, 1]`.
        rate: f64,
    },
    /// This many randomly chosen 64-bit storage words are overwritten with
    /// random garbage (each valid bit of a hit word re-randomized).
    WordBurst {
        /// Number of distinct words to corrupt.
        bursts: usize,
    },
}

impl FaultModel {
    fn rate(&self) -> Option<f64> {
        match *self {
            Self::BitFlip { rate } | Self::StuckAt0 { rate } | Self::StuckAt1 { rate } => {
                Some(rate)
            }
            Self::WordBurst { .. } => None,
        }
    }
}

/// Which weight component a fault campaign targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every weight store.
    All,
    /// The value tables `VB_H` and `VB_L` only.
    ValueTables,
    /// The packed convolution kernels **K** only.
    Kernel,
    /// The feature vectors **F** only.
    FeatureVectors,
    /// The class-vector sets **C** only.
    ClassVectors,
}

impl FaultTarget {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::All => "all",
            Self::ValueTables => "value-tables",
            Self::Kernel => "kernel",
            Self::FeatureVectors => "feature-vectors",
            Self::ClassVectors => "class-vectors",
        }
    }
}

/// A complete, reproducible weight-fault campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The cell-level fault model.
    pub model: FaultModel,
    /// The targeted weight component(s).
    pub target: FaultTarget,
    /// RNG seed; equal specs produce equal corruptions.
    pub seed: u64,
}

/// Result of injecting a [`FaultSpec`]: the faulty model plus how many
/// stored bits actually changed.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// The corrupted model copy.
    pub model: UniVsaModel,
    /// Number of weight bits whose value changed.
    pub disturbed_bits: u64,
}

impl FaultSpec {
    /// Checks the spec's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Config`] when a rate lies outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), UniVsaError> {
        if let Some(rate) = self.model.rate() {
            if !(0.0..=1.0).contains(&rate) {
                return Err(UniVsaError::Config(format!(
                    "fault rate {rate} must be in [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// Injects this fault campaign into a copy of `model`.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Config`] when the spec is invalid (see
    /// [`FaultSpec::validate`]).
    pub fn inject(&self, model: &UniVsaModel) -> Result<FaultOutcome, UniVsaError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut copy = model.clone();
        let disturbed_bits = match self.model {
            FaultModel::BitFlip { rate } => {
                apply_cell_fault(&mut copy, self.target, CellFault::Flip, rate, &mut rng)
            }
            FaultModel::StuckAt0 { rate } => apply_cell_fault(
                &mut copy,
                self.target,
                CellFault::Stick(false),
                rate,
                &mut rng,
            ),
            FaultModel::StuckAt1 { rate } => apply_cell_fault(
                &mut copy,
                self.target,
                CellFault::Stick(true),
                rate,
                &mut rng,
            ),
            FaultModel::WordBurst { bursts } => {
                apply_bursts(&mut copy, self.target, bursts, &mut rng)
            }
        };
        Ok(FaultOutcome {
            model: copy,
            disturbed_bits,
        })
    }
}

#[derive(Clone, Copy)]
enum CellFault {
    Flip,
    Stick(bool),
}

impl CellFault {
    /// New value of a faulted cell currently holding `old`.
    fn hit(&self, old: bool) -> bool {
        match *self {
            Self::Flip => !old,
            Self::Stick(v) => v,
        }
    }
}

fn apply_cell_fault<R: Rng + ?Sized>(
    model: &mut UniVsaModel,
    target: FaultTarget,
    fault: CellFault,
    rate: f64,
    rng: &mut R,
) -> u64 {
    if rate == 0.0 {
        return 0;
    }
    let d_h = model.config().d_h;
    let (v_h, v_l, kernel, f, c) = model.weights_mut();
    let mut disturbed = 0u64;
    let hit = |t| target == FaultTarget::All || target == t;
    if hit(FaultTarget::ValueTables) {
        disturbed += fault_matrix(v_h, fault, rate, rng);
        disturbed += fault_matrix(v_l, fault, rate, rng);
    }
    if hit(FaultTarget::Kernel) {
        for word in kernel.iter_mut() {
            for bit in 0..d_h {
                if rng.gen_bool(rate) {
                    let old = (*word >> bit) & 1 == 1;
                    let new = fault.hit(old);
                    if new != old {
                        *word ^= 1 << bit;
                        disturbed += 1;
                    }
                }
            }
        }
    }
    if hit(FaultTarget::FeatureVectors) {
        disturbed += fault_matrix(f, fault, rate, rng);
    }
    if hit(FaultTarget::ClassVectors) {
        for set in c.iter_mut() {
            disturbed += fault_matrix(set, fault, rate, rng);
        }
    }
    disturbed
}

fn fault_matrix<R: Rng + ?Sized>(
    m: &mut BitMatrix,
    fault: CellFault,
    rate: f64,
    rng: &mut R,
) -> u64 {
    let mut disturbed = 0u64;
    for row_idx in 0..m.rows() {
        disturbed += fault_vec(m.row_mut(row_idx), fault, rate, rng);
    }
    disturbed
}

fn fault_vec<R: Rng + ?Sized>(v: &mut BitVec, fault: CellFault, rate: f64, rng: &mut R) -> u64 {
    let mut disturbed = 0u64;
    for i in 0..v.dim() {
        if rng.gen_bool(rate) {
            let old = v.get(i) == Some(true);
            let new = fault.hit(old);
            if new != old {
                v.set(i, new);
                disturbed += 1;
            }
        }
    }
    disturbed
}

/// One corruptible 64-bit word slot in the targeted stores.
#[derive(Clone, Copy)]
enum WordSlot {
    VH(usize, usize),
    VL(usize, usize),
    Kernel(usize),
    F(usize, usize),
    C(usize, usize, usize),
}

fn apply_bursts<R: Rng + ?Sized>(
    model: &mut UniVsaModel,
    target: FaultTarget,
    bursts: usize,
    rng: &mut R,
) -> u64 {
    let hit = |t| target == FaultTarget::All || target == t;
    let mut slots: Vec<WordSlot> = Vec::new();
    {
        let words_of = |m: &BitMatrix| m.dim().div_ceil(64);
        if hit(FaultTarget::ValueTables) {
            for r in 0..model.v_h().rows() {
                for w in 0..words_of(model.v_h()) {
                    slots.push(WordSlot::VH(r, w));
                }
            }
            for r in 0..model.v_l().rows() {
                for w in 0..words_of(model.v_l()) {
                    slots.push(WordSlot::VL(r, w));
                }
            }
        }
        if hit(FaultTarget::Kernel) {
            for i in 0..model.kernel_words().len() {
                slots.push(WordSlot::Kernel(i));
            }
        }
        if hit(FaultTarget::FeatureVectors) {
            for r in 0..model.f().rows() {
                for w in 0..words_of(model.f()) {
                    slots.push(WordSlot::F(r, w));
                }
            }
        }
        if hit(FaultTarget::ClassVectors) {
            for (s, set) in model.class_sets().iter().enumerate() {
                for r in 0..set.rows() {
                    for w in 0..words_of(set) {
                        slots.push(WordSlot::C(s, r, w));
                    }
                }
            }
        }
    }
    if slots.is_empty() || bursts == 0 {
        return 0;
    }
    // sample distinct slots (all of them when bursts >= slot count)
    let picks = bursts.min(slots.len());
    for i in 0..picks {
        let j = rng.gen_range(i..slots.len());
        slots.swap(i, j);
    }
    let d_h = model.config().d_h;
    let chosen: Vec<WordSlot> = slots[..picks].to_vec();
    let (v_h, v_l, kernel, f, c) = model.weights_mut();
    let mut disturbed = 0u64;
    for slot in chosen {
        disturbed += match slot {
            WordSlot::VH(r, w) => burst_vec_word(v_h.row_mut(r), w, rng),
            WordSlot::VL(r, w) => burst_vec_word(v_l.row_mut(r), w, rng),
            WordSlot::Kernel(i) => {
                let mask = low_mask(d_h);
                let garbage = rng.gen::<u64>() & mask;
                let changed = (kernel[i] ^ garbage) & mask;
                kernel[i] = (kernel[i] & !mask) | garbage;
                u64::from(changed.count_ones())
            }
            WordSlot::F(r, w) => burst_vec_word(f.row_mut(r), w, rng),
            WordSlot::C(s, r, w) => burst_vec_word(c[s].row_mut(r), w, rng),
        };
    }
    disturbed
}

fn low_mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Overwrites word `w` of `v` with random garbage (valid bits only).
fn burst_vec_word<R: Rng + ?Sized>(v: &mut BitVec, w: usize, rng: &mut R) -> u64 {
    let lo = w * 64;
    let hi = ((w + 1) * 64).min(v.dim());
    let mut disturbed = 0u64;
    for i in lo..hi {
        let old = v.get(i) == Some(true);
        let new = rng.gen::<bool>();
        if new != old {
            v.set(i, new);
            disturbed += 1;
        }
    }
    disturbed
}

/// How a sensor channel (one discretized input feature) fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// Affected channels always read level 0 (disconnected electrode).
    DeadChannel,
    /// Affected channels always read the top level (railed amplifier).
    Saturated,
    /// Each reading of an affected channel is jittered by up to
    /// `magnitude` discretization levels in either direction.
    NoisyLevels {
        /// Maximum absolute level shift per reading (≥ 1).
        magnitude: u8,
    },
}

impl SensorFault {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::DeadChannel => "dead-channel",
            Self::Saturated => "saturated",
            Self::NoisyLevels { .. } => "noisy-levels",
        }
    }
}

/// A reproducible input-side fault campaign: `rate` of the channels are
/// affected (the *same* channels for every sample — a broken sensor stays
/// broken), chosen by `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorFaultSpec {
    /// The channel-level fault model.
    pub fault: SensorFault,
    /// Fraction of channels affected, in `[0, 1]`.
    pub rate: f64,
    /// RNG seed for channel selection and noise.
    pub seed: u64,
}

impl SensorFaultSpec {
    /// Applies the campaign to a copy of `dataset`.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Config`] when `rate` is outside `[0, 1]` or
    /// a noise magnitude is 0, and [`UniVsaError::Input`] when the
    /// corrupted samples fail dataset validation (cannot happen: levels
    /// are clamped to the spec's range).
    pub fn corrupt_dataset(&self, dataset: &Dataset) -> Result<Dataset, UniVsaError> {
        if !(0.0..=1.0).contains(&self.rate) {
            return Err(UniVsaError::Config(format!(
                "sensor fault rate {} must be in [0, 1]",
                self.rate
            )));
        }
        if let SensorFault::NoisyLevels { magnitude } = self.fault {
            if magnitude == 0 {
                return Err(UniVsaError::Config(
                    "noise magnitude must be at least 1 level".into(),
                ));
            }
        }
        let spec = dataset.spec().clone();
        let features = spec.features();
        let top = (spec.levels - 1) as u8;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let affected: Vec<bool> = (0..features).map(|_| rng.gen_bool(self.rate)).collect();
        let samples: Vec<Sample> = dataset
            .samples()
            .iter()
            .map(|s| {
                let mut values = s.values.clone();
                for (i, v) in values.iter_mut().enumerate() {
                    if !affected[i] {
                        continue;
                    }
                    match self.fault {
                        SensorFault::DeadChannel => *v = 0,
                        SensorFault::Saturated => *v = top,
                        SensorFault::NoisyLevels { magnitude } => {
                            let shift = rng.gen_range(-(magnitude as i32)..=magnitude as i32);
                            *v = (*v as i32 + shift).clamp(0, top as i32) as u8;
                        }
                    }
                }
                Sample {
                    values,
                    label: s.label,
                }
            })
            .collect();
        Dataset::new(spec, samples).map_err(|e| UniVsaError::Input(e.to_string()))
    }
}

impl UniVsaModel {
    /// Returns a copy of the model with every stored weight bit flipped
    /// independently with probability `rate` (the DVP mask and the
    /// configuration are metadata, not weight memory, and are left
    /// intact). Shorthand for a [`FaultSpec`] with
    /// [`FaultModel::BitFlip`] and [`FaultTarget::All`], driven by an
    /// external RNG.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Config`] if `rate` is not in `[0, 1]`.
    pub fn with_bit_flips<R: Rng + ?Sized>(
        &self,
        rate: f64,
        rng: &mut R,
    ) -> Result<Self, UniVsaError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(UniVsaError::Config(format!(
                "flip rate {rate} must be in [0, 1]"
            )));
        }
        let mut copy = self.clone();
        if rate == 0.0 {
            return Ok(copy);
        }
        copy.corrupt_in_place(rate, rng);
        Ok(copy)
    }

    pub(crate) fn corrupt_in_place<R: Rng + ?Sized>(&mut self, rate: f64, rng: &mut R) {
        apply_cell_fault(self, FaultTarget::All, CellFault::Flip, rate, rng);
    }
}

// ---------------------------------------------------------------------------
// Process-level chaos: faults above the weight-memory layer
// ---------------------------------------------------------------------------

/// The environment variable carrying a serialized [`ChaosSpec`] into
/// supervised worker processes (`UNIVSA_CHAOS=crash=0.2,seed=7`).
pub const CHAOS_ENV_VAR: &str = "UNIVSA_CHAOS";

/// A seeded process-level fault campaign for the supervised worker fleet:
/// where [`FaultSpec`] corrupts weight *memory*, `ChaosSpec` corrupts the
/// *execution* substrate — worker processes crash, hang, start slowly, or
/// emit corrupted IPC frames.
///
/// Every decision is a pure function of `(seed, task id, attempt)` (or
/// `(seed, worker slot, spawn generation)` for slow starts), so a chaos
/// campaign is exactly reproducible and — crucially — a task that crashes
/// on attempt 0 is *not* doomed to crash on attempt 1: retries draw fresh
/// decisions, which is what lets a supervisor recover deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Probability that a worker crashes (exits) instead of answering a
    /// task attempt.
    pub crash: f64,
    /// Probability that a worker hangs (never answers) on a task attempt.
    pub hang: f64,
    /// Probability that a worker corrupts the CRC of its result frame.
    pub corrupt: f64,
    /// Probability that a worker scrambles the telemetry batch it
    /// forwards with a task reply (the frame CRC stays valid; the batch
    /// itself fails to decode — the supervisor must drop and count it
    /// without touching the job's result).
    pub corrupt_telemetry: f64,
    /// Probability that a freshly spawned worker sleeps before serving.
    pub slow_start: f64,
    /// Duration of an injected slow start, in milliseconds.
    pub slow_start_ms: u64,
    /// Crash unconditionally on attempt 0 of this task id (regression
    /// hook: "worker dies on task 0" must still let the sweep finish).
    pub kill_task: Option<u64>,
    /// Seed for every chaos decision.
    pub seed: u64,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        Self {
            crash: 0.0,
            hang: 0.0,
            corrupt: 0.0,
            corrupt_telemetry: 0.0,
            slow_start: 0.0,
            slow_start_ms: 50,
            kill_task: None,
            seed: 0,
        }
    }
}

/// splitmix64: the standard 64-bit finalizer-style mixer — cheap, seeded,
/// and with full avalanche, exactly what per-decision chaos draws need.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ChaosSpec {
    /// Whether every fault channel is off (the spec injects nothing).
    pub fn is_noop(&self) -> bool {
        self.crash == 0.0
            && self.hang == 0.0
            && self.corrupt == 0.0
            && self.corrupt_telemetry == 0.0
            && self.slow_start == 0.0
            && self.kill_task.is_none()
    }

    /// Checks that every probability lies in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Config`] naming the offending channel.
    pub fn validate(&self) -> Result<(), UniVsaError> {
        for (name, p) in [
            ("crash", self.crash),
            ("hang", self.hang),
            ("corrupt", self.corrupt),
            ("corrupt-telemetry", self.corrupt_telemetry),
            ("slow-start", self.slow_start),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(UniVsaError::Config(format!(
                    "chaos {name} rate {p} must be a probability in [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// Parses the `key=value,…` form used by `--chaos` and the
    /// [`CHAOS_ENV_VAR`] environment variable. Keys: `crash`, `hang`,
    /// `corrupt`, `corrupt-telemetry`, `slow-start`, `slow-start-ms`,
    /// `kill-task`, `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Config`] on unknown keys, malformed values,
    /// or out-of-range probabilities.
    pub fn parse(s: &str) -> Result<Self, UniVsaError> {
        let mut spec = Self::default();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                UniVsaError::Config(format!("chaos clause {part:?} is not key=value"))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let rate = || {
                value
                    .parse::<f64>()
                    .map_err(|_| UniVsaError::Config(format!("bad chaos rate {value:?} for {key}")))
            };
            let int = || {
                value.parse::<u64>().map_err(|_| {
                    UniVsaError::Config(format!("bad chaos integer {value:?} for {key}"))
                })
            };
            match key {
                "crash" => spec.crash = rate()?,
                "hang" => spec.hang = rate()?,
                "corrupt" => spec.corrupt = rate()?,
                "corrupt-telemetry" => spec.corrupt_telemetry = rate()?,
                "slow-start" => spec.slow_start = rate()?,
                "slow-start-ms" => spec.slow_start_ms = int()?,
                "kill-task" => spec.kill_task = Some(int()?),
                "seed" => spec.seed = int()?,
                other => {
                    return Err(UniVsaError::Config(format!(
                        "unknown chaos key {other:?} (expected crash, hang, corrupt, \
                         corrupt-telemetry, slow-start, slow-start-ms, kill-task, seed)"
                    )))
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes the spec so that [`ChaosSpec::parse`] round-trips it —
    /// the wire format a supervisor puts in [`CHAOS_ENV_VAR`].
    pub fn render(&self) -> String {
        let mut s = format!(
            "crash={},hang={},corrupt={},corrupt-telemetry={},slow-start={},slow-start-ms={},seed={}",
            self.crash,
            self.hang,
            self.corrupt,
            self.corrupt_telemetry,
            self.slow_start,
            self.slow_start_ms,
            self.seed
        );
        if let Some(id) = self.kill_task {
            s.push_str(&format!(",kill-task={id}"));
        }
        s
    }

    /// One seeded Bernoulli draw for decision channel `channel` over the
    /// coordinates `(a, b)`.
    fn decide(&self, channel: u64, a: u64, b: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mixed = splitmix64(
            splitmix64(self.seed ^ channel.wrapping_mul(0xA076_1D64_78BD_642F))
                ^ splitmix64(a.wrapping_mul(0xE703_7ED1_A0B4_28DB).wrapping_add(b)),
        );
        let unit = (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Should the worker crash instead of answering this task attempt?
    pub fn crash_task(&self, task_id: u64, attempt: u64) -> bool {
        if self.kill_task == Some(task_id) && attempt == 0 {
            return true;
        }
        self.decide(1, task_id, attempt, self.crash)
    }

    /// Should the worker hang (never answer) on this task attempt?
    pub fn hang_task(&self, task_id: u64, attempt: u64) -> bool {
        self.decide(2, task_id, attempt, self.hang)
    }

    /// Should the worker corrupt the CRC of this attempt's result frame?
    pub fn corrupt_result(&self, task_id: u64, attempt: u64) -> bool {
        self.decide(3, task_id, attempt, self.corrupt)
    }

    /// Should the worker scramble the telemetry batch flushed with this
    /// task attempt? (The frame CRC stays valid; the batch itself fails
    /// to decode, exercising the supervisor's drop-and-count path.)
    pub fn corrupt_telemetry_batch(&self, task_id: u64, attempt: u64) -> bool {
        self.decide(5, task_id, attempt, self.corrupt_telemetry)
    }

    /// How long a freshly spawned worker should sleep before serving
    /// (`None` when this spawn dodges the slow-start draw).
    pub fn slow_start_delay(&self, slot: u64, generation: u64) -> Option<std::time::Duration> {
        self.decide(4, slot, generation, self.slow_start)
            .then(|| std::time::Duration::from_millis(self.slow_start_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Enhancements, Mask, UniVsaConfig};
    use univsa_data::TaskSpec;

    fn model(seed: u64) -> UniVsaModel {
        let spec = TaskSpec {
            name: "t".into(),
            width: 4,
            length: 6,
            classes: 2,
            levels: 8,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(2)
            .d_k(3)
            .out_channels(6)
            .voters(2)
            .enhancements(Enhancements::all())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        UniVsaModel::from_parts(
            cfg.clone(),
            Mask::all_high(cfg.features()),
            BitMatrix::random(cfg.levels, cfg.d_h, &mut rng),
            BitMatrix::random(cfg.levels, cfg.d_l, &mut rng),
            (0..cfg.out_channels * 9)
                .map(|_| rand::Rng::gen::<u64>(&mut rng) & 0xF)
                .collect(),
            BitMatrix::random(cfg.out_channels, cfg.vsa_dim(), &mut rng),
            vec![
                BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng),
                BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng),
            ],
        )
        .unwrap()
    }

    #[test]
    fn zero_rate_is_identity() {
        let m = model(0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.with_bit_flips(0.0, &mut rng).unwrap(), m);
    }

    #[test]
    fn full_rate_flips_everything() {
        let m = model(1);
        let mut rng = StdRng::seed_from_u64(2);
        let flipped = m.with_bit_flips(1.0, &mut rng).unwrap();
        // every V bit inverted
        for r in 0..m.v_h().rows() {
            assert_eq!(flipped.v_h().row(r), &m.v_h().row(r).not());
        }
        for (a, b) in m.kernel_words().iter().zip(flipped.kernel_words()) {
            assert_eq!(a ^ b, 0xF, "kernel channel bits must all flip");
        }
    }

    #[test]
    fn small_rate_changes_few_bits() {
        let m = model(2);
        let mut rng = StdRng::seed_from_u64(3);
        let flipped = m.with_bit_flips(0.01, &mut rng).unwrap();
        let mut changed = 0u32;
        for r in 0..m.f().rows() {
            changed += m.f().row(r).hamming(flipped.f().row(r)).unwrap();
        }
        let total = m.f().storage_bits() as f64;
        assert!(
            (changed as f64) < total * 0.05,
            "{changed} of {total} flipped"
        );
        assert!(flipped != m || changed == 0);
    }

    #[test]
    fn rejects_bad_rate() {
        let m = model(3);
        let mut rng = StdRng::seed_from_u64(4);
        let err = m.with_bit_flips(1.5, &mut rng).unwrap_err();
        assert!(matches!(err, UniVsaError::Config(_)));
        assert!(err.to_string().contains("flip rate"));
        assert!(m.with_bit_flips(-0.1, &mut rng).is_err());
    }

    #[test]
    fn corrupted_model_still_infers() {
        let m = model(4);
        let mut rng = StdRng::seed_from_u64(5);
        let flipped = m.with_bit_flips(0.2, &mut rng).unwrap();
        let values: Vec<u8> = (0..24).map(|i| (i % 8) as u8).collect();
        let label = flipped.infer(&values).unwrap();
        assert!(label < 2);
    }

    #[test]
    fn fault_spec_is_deterministic() {
        let m = model(5);
        let spec = FaultSpec {
            model: FaultModel::BitFlip { rate: 0.1 },
            target: FaultTarget::All,
            seed: 42,
        };
        let a = spec.inject(&m).unwrap();
        let b = spec.inject(&m).unwrap();
        assert_eq!(a.model, b.model);
        assert_eq!(a.disturbed_bits, b.disturbed_bits);
        assert!(a.disturbed_bits > 0);
    }

    #[test]
    fn stuck_at_0_clears_only() {
        let m = model(6);
        let spec = FaultSpec {
            model: FaultModel::StuckAt0 { rate: 1.0 },
            target: FaultTarget::All,
            seed: 0,
        };
        let out = spec.inject(&m).unwrap();
        for r in 0..out.model.v_h().rows() {
            assert_eq!(out.model.v_h().row(r).count_ones(), 0);
        }
        assert!(out.model.kernel_words().iter().all(|&w| w & 0xF == 0));
        // disturbed = exactly the bits that were 1
        let ones: u64 = (0..m.f().rows())
            .map(|r| m.f().row(r).count_ones() as u64)
            .sum();
        let f_cleared: u64 = (0..out.model.f().rows())
            .map(|r| out.model.f().row(r).count_ones() as u64)
            .sum();
        assert_eq!(f_cleared, 0);
        assert!(out.disturbed_bits >= ones);
    }

    #[test]
    fn stuck_at_1_sets_only() {
        let m = model(7);
        let spec = FaultSpec {
            model: FaultModel::StuckAt1 { rate: 1.0 },
            target: FaultTarget::FeatureVectors,
            seed: 0,
        };
        let out = spec.inject(&m).unwrap();
        for r in 0..out.model.f().rows() {
            assert_eq!(
                out.model.f().row(r).count_ones() as usize,
                out.model.f().dim()
            );
        }
        // untargeted stores untouched
        assert_eq!(out.model.v_h(), m.v_h());
        assert_eq!(out.model.kernel_words(), m.kernel_words());
    }

    #[test]
    fn word_burst_hits_bounded_words() {
        let m = model(8);
        let spec = FaultSpec {
            model: FaultModel::WordBurst { bursts: 2 },
            target: FaultTarget::ClassVectors,
            seed: 11,
        };
        let out = spec.inject(&m).unwrap();
        // at most 2 words * 64 bits disturbed, only in C
        assert!(out.disturbed_bits <= 128);
        assert_eq!(out.model.v_h(), m.v_h());
        assert_eq!(out.model.f(), m.f());
        let mut changed_rows = 0;
        for (s, set) in m.class_sets().iter().enumerate() {
            for r in 0..set.rows() {
                if out.model.class_sets()[s].row(r) != set.row(r) {
                    changed_rows += 1;
                }
            }
        }
        assert!(changed_rows <= 2, "each burst corrupts one word of one row");
    }

    #[test]
    fn targeting_respects_component_boundaries() {
        let m = model(9);
        for (target, probe) in [
            (FaultTarget::ValueTables, 0usize),
            (FaultTarget::Kernel, 1),
            (FaultTarget::FeatureVectors, 2),
            (FaultTarget::ClassVectors, 3),
        ] {
            let spec = FaultSpec {
                model: FaultModel::BitFlip { rate: 0.5 },
                target,
                seed: 100 + probe as u64,
            };
            let out = spec.inject(&m).unwrap();
            assert!(out.disturbed_bits > 0, "{} hit nothing", target.name());
            assert_eq!(
                out.model.v_h() != m.v_h() || out.model.v_l() != m.v_l(),
                probe == 0
            );
            assert_eq!(out.model.kernel_words() != m.kernel_words(), probe == 1);
            assert_eq!(out.model.f() != m.f(), probe == 2);
            assert_eq!(out.model.class_sets() != m.class_sets(), probe == 3);
        }
    }

    #[test]
    fn fault_spec_rejects_bad_rate() {
        let m = model(10);
        let spec = FaultSpec {
            model: FaultModel::StuckAt0 { rate: 2.0 },
            target: FaultTarget::All,
            seed: 0,
        };
        assert!(matches!(spec.inject(&m), Err(UniVsaError::Config(_))));
    }

    fn sensor_dataset() -> Dataset {
        let spec = TaskSpec {
            name: "s".into(),
            width: 2,
            length: 5,
            classes: 2,
            levels: 8,
        };
        let samples = (0..6)
            .map(|i| Sample {
                values: (0..10).map(|j| ((i + j) % 8) as u8).collect(),
                label: i % 2,
            })
            .collect();
        Dataset::new(spec, samples).unwrap()
    }

    #[test]
    fn dead_channels_are_consistent_across_samples() {
        let ds = sensor_dataset();
        let spec = SensorFaultSpec {
            fault: SensorFault::DeadChannel,
            rate: 0.5,
            seed: 3,
        };
        let bad = spec.corrupt_dataset(&ds).unwrap();
        // a channel is either 0 in every sample or untouched in every sample
        for ch in 0..10 {
            let dead = bad.samples().iter().all(|s| s.values[ch] == 0);
            let untouched = bad
                .samples()
                .iter()
                .zip(ds.samples())
                .all(|(b, a)| b.values[ch] == a.values[ch]);
            assert!(dead || untouched, "channel {ch} is inconsistently faulted");
        }
    }

    #[test]
    fn saturated_channels_read_top_level() {
        let ds = sensor_dataset();
        let spec = SensorFaultSpec {
            fault: SensorFault::Saturated,
            rate: 1.0,
            seed: 0,
        };
        let bad = spec.corrupt_dataset(&ds).unwrap();
        assert!(bad
            .samples()
            .iter()
            .all(|s| s.values.iter().all(|&v| v == 7)));
    }

    #[test]
    fn noisy_levels_stay_in_range() {
        let ds = sensor_dataset();
        let spec = SensorFaultSpec {
            fault: SensorFault::NoisyLevels { magnitude: 3 },
            rate: 1.0,
            seed: 5,
        };
        let bad = spec.corrupt_dataset(&ds).unwrap();
        for (b, a) in bad.samples().iter().zip(ds.samples()) {
            for (x, y) in b.values.iter().zip(&a.values) {
                assert!(*x < 8);
                assert!((*x as i32 - *y as i32).abs() <= 3);
            }
            assert_eq!(b.label, a.label);
        }
    }

    #[test]
    fn chaos_spec_round_trips_and_validates() {
        let spec = ChaosSpec {
            crash: 0.2,
            hang: 0.1,
            corrupt: 0.05,
            corrupt_telemetry: 0.15,
            slow_start: 0.5,
            slow_start_ms: 75,
            kill_task: Some(3),
            seed: 9,
        };
        let parsed = ChaosSpec::parse(&spec.render()).unwrap();
        assert_eq!(parsed, spec);
        assert!(!spec.is_noop());
        assert!(ChaosSpec::default().is_noop());
        assert!(ChaosSpec::parse("").unwrap().is_noop());
        assert!(matches!(
            ChaosSpec::parse("crash=1.5"),
            Err(UniVsaError::Config(_))
        ));
        assert!(ChaosSpec::parse("crash").is_err());
        assert!(ChaosSpec::parse("bogus=1").is_err());
        assert!(ChaosSpec::parse("crash=x").is_err());
    }

    #[test]
    fn chaos_decisions_are_deterministic_and_rate_shaped() {
        let spec = ChaosSpec {
            crash: 0.3,
            ..ChaosSpec::default()
        };
        let hits: Vec<bool> = (0..1000).map(|t| spec.crash_task(t, 0)).collect();
        assert_eq!(
            hits,
            (0..1000).map(|t| spec.crash_task(t, 0)).collect::<Vec<_>>()
        );
        let rate = hits.iter().filter(|&&h| h).count() as f64 / 1000.0;
        assert!((0.2..0.4).contains(&rate), "empirical crash rate {rate}");
        // a retry draws a fresh decision: not every attempt-0 crasher
        // crashes again on attempt 1
        assert!((0..1000)
            .filter(|&t| spec.crash_task(t, 0))
            .any(|t| !spec.crash_task(t, 1)));
        // zero-rate channels never fire, rate-1 channels always do
        assert!(!spec.hang_task(5, 0));
        let all = ChaosSpec {
            hang: 1.0,
            ..ChaosSpec::default()
        };
        assert!(all.hang_task(5, 0));
    }

    #[test]
    fn chaos_kill_task_hits_attempt_zero_only() {
        let spec = ChaosSpec {
            kill_task: Some(0),
            ..ChaosSpec::default()
        };
        assert!(spec.crash_task(0, 0));
        assert!(!spec.crash_task(0, 1));
        assert!(!spec.crash_task(1, 0));
    }

    #[test]
    fn chaos_slow_start_uses_configured_delay() {
        let spec = ChaosSpec {
            slow_start: 1.0,
            slow_start_ms: 123,
            ..ChaosSpec::default()
        };
        assert_eq!(
            spec.slow_start_delay(0, 0),
            Some(std::time::Duration::from_millis(123))
        );
        assert_eq!(ChaosSpec::default().slow_start_delay(0, 0), None);
    }

    #[test]
    fn sensor_spec_rejects_bad_parameters() {
        let ds = sensor_dataset();
        assert!(SensorFaultSpec {
            fault: SensorFault::DeadChannel,
            rate: 1.5,
            seed: 0,
        }
        .corrupt_dataset(&ds)
        .is_err());
        assert!(SensorFaultSpec {
            fault: SensorFault::NoisyLevels { magnitude: 0 },
            rate: 0.5,
            seed: 0,
        }
        .corrupt_dataset(&ds)
        .is_err());
    }
}
