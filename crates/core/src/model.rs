//! The frozen, packed UniVSA model.

use univsa_bits::BitMatrix;

use crate::{Mask, MemoryReport, UniVsaConfig, UniVsaError};

/// A trained UniVSA model in its deployment form: only the packed binary
/// weight sets the paper's hardware stores — value tables **V** (`VB_H` and
/// `VB_L`), convolution kernels **K**, feature vectors **F**, and class
/// vectors **C** — plus the DVP mask. Inference is pure XNOR/popcount;
/// no float ever appears.
///
/// Construct via [`crate::UniVsaTrainer::fit`] (training) or
/// [`UniVsaModel::from_parts`] (e.g. when loading hand-built weights).
#[derive(Debug, Clone, PartialEq)]
pub struct UniVsaModel {
    config: UniVsaConfig,
    mask: Mask,
    v_h: BitMatrix,
    v_l: BitMatrix,
    /// Packed kernels: word `o·D_K² + ky·D_K + kx` holds the `D_H` channel
    /// bits of kernel tap `(ky, kx)` for output channel `o`. Empty when
    /// BiConv is disabled.
    kernel: Vec<u64>,
    f: BitMatrix,
    c: Vec<BitMatrix>,
}

impl UniVsaModel {
    /// Assembles a model from its packed parts, validating every dimension
    /// against the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Config`] describing the first inconsistency:
    /// wrong table sizes, kernel word count, feature/class vector
    /// dimensions, or mask length.
    pub fn from_parts(
        config: UniVsaConfig,
        mask: Mask,
        v_h: BitMatrix,
        v_l: BitMatrix,
        kernel: Vec<u64>,
        f: BitMatrix,
        c: Vec<BitMatrix>,
    ) -> Result<Self, UniVsaError> {
        let err = |msg: String| Err(UniVsaError::Config(msg));
        let d = config.vsa_dim();
        if mask.len() != config.features() {
            return err(format!(
                "mask covers {} features, config has {}",
                mask.len(),
                config.features()
            ));
        }
        if v_h.rows() != config.levels || v_h.dim() != config.d_h {
            return err(format!(
                "VB_H table must be {}x{}, got {}x{}",
                config.levels,
                config.d_h,
                v_h.rows(),
                v_h.dim()
            ));
        }
        let expect_d_l = config.effective_d_l();
        if v_l.rows() != config.levels || v_l.dim() != expect_d_l {
            return err(format!(
                "VB_L table must be {}x{}, got {}x{}",
                config.levels,
                expect_d_l,
                v_l.rows(),
                v_l.dim()
            ));
        }
        if config.enhancements.biconv {
            let expect = config.out_channels * config.d_k * config.d_k;
            if kernel.len() != expect {
                return err(format!(
                    "kernel must hold {expect} packed words, got {}",
                    kernel.len()
                ));
            }
        } else if !kernel.is_empty() {
            return err("kernel must be empty when BiConv is disabled".into());
        }
        if f.rows() != config.encoding_channels() || f.dim() != d {
            return err(format!(
                "feature vectors F must be {}x{}, got {}x{}",
                config.encoding_channels(),
                d,
                f.rows(),
                f.dim()
            ));
        }
        if c.len() != config.effective_voters() {
            return err(format!(
                "expected {} class-vector sets, got {}",
                config.effective_voters(),
                c.len()
            ));
        }
        for (theta, set) in c.iter().enumerate() {
            if set.rows() != config.classes || set.dim() != d {
                return err(format!(
                    "class set {theta} must be {}x{}, got {}x{}",
                    config.classes,
                    d,
                    set.rows(),
                    set.dim()
                ));
            }
        }
        Ok(Self {
            config,
            mask,
            v_h,
            v_l,
            kernel,
            f,
            c,
        })
    }

    /// The model configuration.
    #[inline]
    pub fn config(&self) -> &UniVsaConfig {
        &self.config
    }

    /// The DVP importance mask.
    #[inline]
    pub fn mask(&self) -> &Mask {
        &self.mask
    }

    /// The high-importance value table `VB_H` (`M × D_H`).
    #[inline]
    pub fn v_h(&self) -> &BitMatrix {
        &self.v_h
    }

    /// The low-importance value table `VB_L` (`M × D_L`).
    #[inline]
    pub fn v_l(&self) -> &BitMatrix {
        &self.v_l
    }

    /// The packed convolution kernels (see the field layout note on the
    /// type). Empty when BiConv is disabled.
    #[inline]
    pub fn kernel_words(&self) -> &[u64] {
        &self.kernel
    }

    /// The channel word of kernel tap `(ky, kx)` for output channel `o`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or BiConv is disabled.
    #[inline]
    pub fn kernel_word(&self, o: usize, ky: usize, kx: usize) -> u64 {
        let k = self.config.d_k;
        self.kernel[o * k * k + ky * k + kx]
    }

    /// The feature vectors **F** (`O × D`).
    #[inline]
    pub fn f(&self) -> &BitMatrix {
        &self.f
    }

    /// The class-vector sets **C** (`Θ` matrices of `C × D`).
    #[inline]
    pub fn class_sets(&self) -> &[BitMatrix] {
        &self.c
    }

    /// Mutable access to all weight stores, for fault injection
    /// (`crate::corrupt`). Kept crate-private so external code cannot
    /// silently break the validated invariants.
    pub(crate) fn weights_mut(
        &mut self,
    ) -> (
        &mut BitMatrix,
        &mut BitMatrix,
        &mut [u64],
        &mut BitMatrix,
        &mut [BitMatrix],
    ) {
        (
            &mut self.v_h,
            &mut self.v_l,
            &mut self.kernel,
            &mut self.f,
            &mut self.c,
        )
    }

    /// The memory footprint of this model under the paper's Eq. 5.
    pub fn memory_report(&self) -> MemoryReport {
        MemoryReport::for_config(&self.config)
    }

    /// Actual packed storage in bits (must agree with
    /// [`UniVsaModel::memory_report`] up to the mask, which Eq. 5 does not
    /// charge).
    pub fn storage_bits(&self) -> usize {
        // without DVP the VB_L table is a placeholder copy of VB_H and is
        // never consulted, so it is not deployed storage
        let v_l_bits = if self.config.enhancements.dvp {
            self.v_l.storage_bits()
        } else {
            0
        };
        self.v_h.storage_bits()
            + v_l_bits
            + self.kernel.len() * self.config.d_h
            + self.f.storage_bits()
            + self.c.iter().map(BitMatrix::storage_bits).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Enhancements;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use univsa_data::TaskSpec;

    fn config() -> UniVsaConfig {
        let spec = TaskSpec {
            name: "t".into(),
            width: 4,
            length: 5,
            classes: 2,
            levels: 8,
        };
        UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(2)
            .d_k(3)
            .out_channels(6)
            .voters(2)
            .build()
            .unwrap()
    }

    fn parts(
        cfg: &UniVsaConfig,
        seed: u64,
    ) -> (
        Mask,
        BitMatrix,
        BitMatrix,
        Vec<u64>,
        BitMatrix,
        Vec<BitMatrix>,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = Mask::all_high(cfg.features());
        let v_h = BitMatrix::random(cfg.levels, cfg.d_h, &mut rng);
        let v_l = BitMatrix::random(cfg.levels, cfg.effective_d_l(), &mut rng);
        let kernel = if cfg.enhancements.biconv {
            (0..cfg.out_channels * cfg.d_k * cfg.d_k)
                .map(|i| i as u64 % 16)
                .collect()
        } else {
            vec![]
        };
        let f = BitMatrix::random(cfg.encoding_channels(), cfg.vsa_dim(), &mut rng);
        let c = (0..cfg.effective_voters())
            .map(|_| BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng))
            .collect();
        (mask, v_h, v_l, kernel, f, c)
    }

    #[test]
    fn valid_parts_assemble() {
        let cfg = config();
        let (mask, v_h, v_l, kernel, f, c) = parts(&cfg, 0);
        let m = UniVsaModel::from_parts(cfg, mask, v_h, v_l, kernel, f, c).unwrap();
        assert_eq!(m.class_sets().len(), 2);
        assert!(m.storage_bits() > 0);
    }

    #[test]
    fn rejects_wrong_vh() {
        let cfg = config();
        let (mask, _, v_l, kernel, f, c) = parts(&cfg, 1);
        let mut rng = StdRng::seed_from_u64(99);
        let bad_vh = BitMatrix::random(cfg.levels, cfg.d_h + 1, &mut rng);
        assert!(UniVsaModel::from_parts(cfg, mask, bad_vh, v_l, kernel, f, c).is_err());
    }

    #[test]
    fn rejects_wrong_kernel_len() {
        let cfg = config();
        let (mask, v_h, v_l, mut kernel, f, c) = parts(&cfg, 2);
        kernel.pop();
        assert!(UniVsaModel::from_parts(cfg, mask, v_h, v_l, kernel, f, c).is_err());
    }

    #[test]
    fn rejects_wrong_class_set_count() {
        let cfg = config();
        let (mask, v_h, v_l, kernel, f, mut c) = parts(&cfg, 3);
        c.pop();
        assert!(UniVsaModel::from_parts(cfg, mask, v_h, v_l, kernel, f, c).is_err());
    }

    #[test]
    fn rejects_kernel_without_biconv() {
        let spec = TaskSpec {
            name: "t".into(),
            width: 4,
            length: 5,
            classes: 2,
            levels: 8,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(2)
            .d_k(3)
            .out_channels(6)
            .voters(2)
            .enhancements(Enhancements {
                biconv: false,
                ..Enhancements::all()
            })
            .build()
            .unwrap();
        let (mask, v_h, v_l, _, _, _) = parts(&cfg, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let f = BitMatrix::random(cfg.encoding_channels(), cfg.vsa_dim(), &mut rng);
        let c: Vec<BitMatrix> = (0..cfg.effective_voters())
            .map(|_| BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng))
            .collect();
        assert!(UniVsaModel::from_parts(
            cfg.clone(),
            mask.clone(),
            v_h.clone(),
            v_l.clone(),
            vec![1],
            f.clone(),
            c.clone()
        )
        .is_err());
        assert!(UniVsaModel::from_parts(cfg, mask, v_h, v_l, vec![], f, c).is_ok());
    }

    #[test]
    fn storage_close_to_eq5() {
        let cfg = config();
        let (mask, v_h, v_l, kernel, f, c) = parts(&cfg, 6);
        let m = UniVsaModel::from_parts(cfg, mask, v_h, v_l, kernel, f, c).unwrap();
        // Eq. 5 charges exactly the packed sets
        assert_eq!(m.storage_bits(), m.memory_report().total_bits());
    }
}
