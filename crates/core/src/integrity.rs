//! Online fault detection and repair for deployed models.
//!
//! Three layers of defence, mirroring what the FPGA deployment would do in
//! BRAM:
//!
//! 1. **Detection** — [`ModelIntegrity`] holds one CRC32 per weight
//!    component (`VB_H`, `VB_L`, **K**, **F**, **C**). It is computed at
//!    train/save time, embedded in the v2 container, and re-checked with
//!    [`UniVsaModel::verify_integrity`] (the software analogue of a parity
//!    / checksum scrub pass over weight memory).
//! 2. **Repair** — [`UniVsaModel::repair_from_copies`] performs TMR-style
//!    bitwise majority voting across `R` redundant weight copies: with at
//!    most `⌊R/2⌋` corrupted copies per bit, the voted model equals the
//!    clean one.
//! 3. **Graded confidence** — [`UniVsaModel::infer_checked`] returns the
//!    prediction together with its similarity margin and soft-voting
//!    agreement, so a runtime can flag low-confidence decisions for
//!    re-computation instead of trusting a possibly-corrupted datapath.

use univsa_bits::{BitMatrix, BitVec};

use crate::{UniVsaError, UniVsaModel};

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over a byte
/// stream. Table-driven, the same algorithm a lightweight FPGA scrubber
/// would implement.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = table();
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn crc_matrix(m: &BitMatrix) -> u32 {
    let mut bytes = Vec::with_capacity(8 + m.rows() * m.dim().div_ceil(64) * 8);
    bytes.extend_from_slice(&(m.rows() as u32).to_le_bytes());
    bytes.extend_from_slice(&(m.dim() as u32).to_le_bytes());
    for r in 0..m.rows() {
        for w in m.row(r).as_words() {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
    }
    crc32(&bytes)
}

fn crc_words(words: &[u64]) -> u32 {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    crc32(&bytes)
}

/// Per-component CRC32 checksums of a model's weight memory, the unit the
/// v2 container embeds and [`UniVsaModel::verify_integrity`] checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelIntegrity {
    /// Checksum of the high-importance value table `VB_H`.
    pub v_h: u32,
    /// Checksum of the low-importance value table `VB_L`.
    pub v_l: u32,
    /// Checksum of the packed convolution kernels **K**.
    pub kernel: u32,
    /// Checksum of the feature vectors **F**.
    pub f: u32,
    /// Checksum of all class-vector sets **C**.
    pub c: u32,
}

impl ModelIntegrity {
    /// Component names in the order the report lists them.
    pub const COMPONENTS: [&'static str; 5] = ["v_h", "v_l", "kernel", "f", "c"];
}

/// Outcome of an integrity check: which components still match their
/// recorded checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityReport {
    /// `VB_H` matches.
    pub v_h_ok: bool,
    /// `VB_L` matches.
    pub v_l_ok: bool,
    /// **K** matches.
    pub kernel_ok: bool,
    /// **F** matches.
    pub f_ok: bool,
    /// **C** matches.
    pub c_ok: bool,
}

impl IntegrityReport {
    /// Whether every component matched.
    pub fn is_clean(&self) -> bool {
        self.v_h_ok && self.v_l_ok && self.kernel_ok && self.f_ok && self.c_ok
    }

    /// Names of the components that failed the check.
    pub fn corrupted_components(&self) -> Vec<&'static str> {
        let flags = [
            self.v_h_ok,
            self.v_l_ok,
            self.kernel_ok,
            self.f_ok,
            self.c_ok,
        ];
        ModelIntegrity::COMPONENTS
            .iter()
            .zip(flags)
            .filter(|&(_, ok)| !ok)
            .map(|(&name, _)| name)
            .collect()
    }
}

/// A prediction with the confidence evidence a fault-aware runtime needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedInference {
    /// The predicted class — identical to [`UniVsaModel::infer`].
    pub label: usize,
    /// Similarity margin: winning total minus the runner-up total. Small
    /// margins are the decisions weight corruption flips first.
    pub margin: i64,
    /// Fraction of soft-voting heads whose own argmax agrees with the
    /// final label (1.0 when `Θ = 1`).
    pub voter_agreement: f64,
}

impl UniVsaModel {
    /// Computes the per-component checksums of this model's weights.
    pub fn integrity(&self) -> ModelIntegrity {
        let mut c_bytes = Vec::new();
        for set in self.class_sets() {
            c_bytes.extend_from_slice(&crc_matrix(set).to_le_bytes());
        }
        ModelIntegrity {
            v_h: crc_matrix(self.v_h()),
            v_l: crc_matrix(self.v_l()),
            kernel: crc_words(self.kernel_words()),
            f: crc_matrix(self.f()),
            c: crc32(&c_bytes),
        }
    }

    /// Re-checks this model's weights against checksums recorded earlier
    /// (typically the ones embedded in its v2 container).
    pub fn verify_integrity(&self, expected: &ModelIntegrity) -> IntegrityReport {
        let now = self.integrity();
        IntegrityReport {
            v_h_ok: now.v_h == expected.v_h,
            v_l_ok: now.v_l == expected.v_l,
            kernel_ok: now.kernel == expected.kernel,
            f_ok: now.f == expected.f,
            c_ok: now.c == expected.c,
        }
    }

    /// TMR-style repair: reconstructs a model by bitwise majority vote over
    /// `R` redundant copies (`R` odd, ≥ 3). Any bit corrupted in at most
    /// `⌊R/2⌋` copies is restored exactly; configuration and mask are taken
    /// from the copies' (required-identical) metadata.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Integrity`] when `R` is even or < 3, or when
    /// the copies disagree in configuration, mask, or weight shapes (a
    /// corrupted *structure* cannot be outvoted).
    pub fn repair_from_copies(copies: &[UniVsaModel]) -> Result<UniVsaModel, UniVsaError> {
        let r = copies.len();
        if r < 3 || r.is_multiple_of(2) {
            return Err(UniVsaError::Integrity(format!(
                "majority vote needs an odd number of copies >= 3, got {r}"
            )));
        }
        let first = &copies[0];
        for (i, copy) in copies.iter().enumerate().skip(1) {
            if copy.config() != first.config() || copy.mask() != first.mask() {
                return Err(UniVsaError::Integrity(format!(
                    "copy {i} disagrees with copy 0 in configuration or mask"
                )));
            }
        }
        let v_h = vote_matrix(copies, |m| m.v_h())?;
        let v_l = vote_matrix(copies, |m| m.v_l())?;
        let kernel = vote_words(&copies.iter().map(|m| m.kernel_words()).collect::<Vec<_>>())?;
        let f = vote_matrix(copies, |m| m.f())?;
        let sets = first.class_sets().len();
        let mut c = Vec::with_capacity(sets);
        for s in 0..sets {
            c.push(vote_matrix(copies, |m| &m.class_sets()[s])?);
        }
        UniVsaModel::from_parts(
            first.config().clone(),
            first.mask().clone(),
            v_h,
            v_l,
            kernel,
            f,
            c,
        )
    }

    /// Classifies one sample and reports the decision's margin and voter
    /// agreement. The label always equals [`UniVsaModel::infer`] on the
    /// same input — this adds evidence, never changes the answer.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] on geometry mismatch, exactly like
    /// [`UniVsaModel::infer`].
    pub fn infer_checked(&self, values: &[u8]) -> Result<CheckedInference, UniVsaError> {
        let trace = self.trace(values)?;
        let label = trace.label;
        let margin = trace
            .totals
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != label)
            .map(|(_, &t)| trace.totals[label] - t)
            .min()
            .unwrap_or(0);
        let voters = trace.similarities.len();
        let agreeing = trace
            .similarities
            .iter()
            .filter(|sims| {
                sims.iter()
                    .enumerate()
                    .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
                    .map(|(j, _)| j)
                    == Some(label)
            })
            .count();
        Ok(CheckedInference {
            label,
            margin,
            voter_agreement: agreeing as f64 / voters.max(1) as f64,
        })
    }
}

fn vote_matrix<'a>(
    copies: &'a [UniVsaModel],
    select: impl Fn(&'a UniVsaModel) -> &'a BitMatrix,
) -> Result<BitMatrix, UniVsaError> {
    let mats: Vec<&BitMatrix> = copies.iter().map(select).collect();
    let (rows, dim) = (mats[0].rows(), mats[0].dim());
    if mats.iter().any(|m| m.rows() != rows || m.dim() != dim) {
        return Err(UniVsaError::Integrity(
            "weight copies disagree in shape".into(),
        ));
    }
    let voted_rows: Vec<BitVec> = (0..rows)
        .map(|r| {
            let row_words: Vec<&[u64]> = mats.iter().map(|m| m.row(r).as_words()).collect();
            BitVec::from_words(dim, majority_words(&row_words))
        })
        .collect();
    Ok(BitMatrix::from_rows(voted_rows)?)
}

fn vote_words(copies: &[&[u64]]) -> Result<Vec<u64>, UniVsaError> {
    let len = copies[0].len();
    if copies.iter().any(|w| w.len() != len) {
        return Err(UniVsaError::Integrity(
            "kernel copies disagree in length".into(),
        ));
    }
    Ok(majority_words(copies))
}

/// Per-bit majority across word slices of equal length (`copies.len()`
/// odd). Carry-save adder over the copies keeps this word-parallel.
fn majority_words(copies: &[&[u64]]) -> Vec<u64> {
    let r = copies.len();
    let threshold = r / 2; // strict majority: count > r/2
    (0..copies[0].len())
        .map(|i| {
            let mut out = 0u64;
            for bit in 0..64 {
                let ones = copies.iter().filter(|w| (w[i] >> bit) & 1 == 1).count();
                if ones > threshold {
                    out |= 1 << bit;
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Enhancements, FaultModel, FaultSpec, FaultTarget, Mask, UniVsaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use univsa_data::TaskSpec;

    fn model(seed: u64) -> UniVsaModel {
        let spec = TaskSpec {
            name: "t".into(),
            width: 4,
            length: 6,
            classes: 3,
            levels: 8,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(2)
            .d_k(3)
            .out_channels(6)
            .voters(3)
            .enhancements(Enhancements::all())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        UniVsaModel::from_parts(
            cfg.clone(),
            Mask::all_high(cfg.features()),
            univsa_bits::BitMatrix::random(cfg.levels, cfg.d_h, &mut rng),
            univsa_bits::BitMatrix::random(cfg.levels, cfg.d_l, &mut rng),
            (0..cfg.out_channels * 9)
                .map(|_| rand::Rng::gen::<u64>(&mut rng) & 0xF)
                .collect(),
            univsa_bits::BitMatrix::random(cfg.out_channels, cfg.vsa_dim(), &mut rng),
            (0..3)
                .map(|_| univsa_bits::BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn crc32_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn clean_model_verifies_clean() {
        let m = model(0);
        let expected = m.integrity();
        let report = m.verify_integrity(&expected);
        assert!(report.is_clean());
        assert!(report.corrupted_components().is_empty());
    }

    #[test]
    fn corruption_is_detected_and_localized() {
        let m = model(1);
        let expected = m.integrity();
        let spec = FaultSpec {
            model: FaultModel::BitFlip { rate: 0.05 },
            target: FaultTarget::FeatureVectors,
            seed: 7,
        };
        let hit = spec.inject(&m).unwrap();
        assert!(hit.disturbed_bits > 0);
        let report = hit.model.verify_integrity(&expected);
        assert!(!report.is_clean());
        assert_eq!(report.corrupted_components(), vec!["f"]);
        assert!(report.v_h_ok && report.v_l_ok && report.kernel_ok && report.c_ok);
    }

    #[test]
    fn tmr_restores_exact_model_with_one_corrupted_copy() {
        let m = model(2);
        let spec = FaultSpec {
            model: FaultModel::BitFlip { rate: 0.1 },
            target: FaultTarget::All,
            seed: 9,
        };
        let corrupted = spec.inject(&m).unwrap().model;
        let repaired = UniVsaModel::repair_from_copies(&[m.clone(), corrupted, m.clone()]).unwrap();
        assert_eq!(repaired, m);
    }

    #[test]
    fn tmr_rejects_even_or_tiny_copy_counts() {
        let m = model(3);
        assert!(matches!(
            UniVsaModel::repair_from_copies(std::slice::from_ref(&m)),
            Err(UniVsaError::Integrity(_))
        ));
        assert!(UniVsaModel::repair_from_copies(&[m.clone(), m.clone()]).is_err());
        assert!(UniVsaModel::repair_from_copies(&[]).is_err());
    }

    #[test]
    fn tmr_five_copies_outvotes_two_corruptions() {
        let m = model(4);
        let bad = |seed| {
            FaultSpec {
                model: FaultModel::BitFlip { rate: 0.05 },
                target: FaultTarget::All,
                seed,
            }
            .inject(&m)
            .unwrap()
            .model
        };
        let repaired =
            UniVsaModel::repair_from_copies(&[m.clone(), bad(1), m.clone(), bad(2), m.clone()])
                .unwrap();
        assert_eq!(repaired, m);
    }

    #[test]
    fn infer_checked_matches_infer() {
        let m = model(5);
        for s in 0..8u8 {
            let values: Vec<u8> = (0..24)
                .map(|i| ((i as u8).wrapping_mul(s + 1)) % 8)
                .collect();
            let checked = m.infer_checked(&values).unwrap();
            assert_eq!(checked.label, m.infer(&values).unwrap());
            assert!(checked.margin >= 0, "winner's margin cannot be negative");
            assert!((0.0..=1.0).contains(&checked.voter_agreement));
        }
    }
}
