//! The ValueBox: an MLP projecting a discretized feature value to a
//! bipolar value vector.

use rand::Rng;
use univsa_bits::{BitMatrix, BitVec};
use univsa_nn::ste::{sign, ste_grad};
use univsa_nn::{Linear, Optimizer, Tanh};
use univsa_tensor::Tensor;

use crate::UniVsaError;

/// The LDC ValueBox `VB(x) = sgn(MLP(x))`, realized as
/// `1 → hidden → dim` with a `tanh` hidden layer and sign binarization.
///
/// Because inputs are discretized to `M` levels, the box is only ever
/// evaluated on the level grid; [`ValueBox::forward_table`] computes the
/// whole `(M, dim)` pre-activation table in one shot, and after training
/// [`ValueBox::export_table`] freezes the binarized table **V** used by
/// packed inference.
#[derive(Debug, Clone)]
pub struct ValueBox {
    l1: Linear,
    act: Tanh,
    l2: Linear,
    levels: usize,
    dim: usize,
    cached_pre: Option<Tensor>,
}

impl ValueBox {
    /// Creates a ValueBox for `levels` discrete inputs and `dim`-bit output
    /// vectors, with the given hidden width.
    pub fn new<R: Rng + ?Sized>(levels: usize, dim: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            l1: Linear::new(1, hidden, rng),
            act: Tanh::new(),
            l2: Linear::new(hidden, dim, rng),
            levels,
            dim,
            cached_pre: None,
        }
    }

    /// Output vector dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of discrete input levels `M`.
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The normalized level grid fed to the MLP: level `m` maps to
    /// `2m/(M-1) - 1 ∈ [-1, 1]`.
    fn level_grid(&self) -> Tensor {
        let m = (self.levels - 1).max(1) as f32;
        let data = (0..self.levels).map(|i| i as f32 / m * 2.0 - 1.0).collect();
        Tensor::from_vec(data, &[self.levels, 1]).expect("grid shape is consistent")
    }

    /// Forward pass over the full level grid, returning the binarized
    /// `(M, dim)` value table and caching pre-activations for
    /// [`ValueBox::backward_table`].
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the internal layers (none occur for a
    /// well-constructed box).
    pub fn forward_table(&mut self) -> Result<Tensor, UniVsaError> {
        let grid = self.level_grid();
        let h = self.l1.forward(&grid)?;
        let a = self.act.forward(&h);
        let pre = self.l2.forward(&a)?;
        let out = sign(&pre);
        self.cached_pre = Some(pre);
        Ok(out)
    }

    /// Backward pass given the gradient w.r.t. the *binarized* table;
    /// applies the STE at the output sign and accumulates all MLP
    /// parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns an error if called before [`ValueBox::forward_table`].
    pub fn backward_table(&mut self, grad_table: &Tensor) -> Result<(), UniVsaError> {
        let pre = self.cached_pre.as_ref().ok_or_else(|| {
            UniVsaError::Input("ValueBox::backward_table called before forward_table".into())
        })?;
        let g_pre = ste_grad(grad_table, pre);
        let g_a = self.l2.backward(&g_pre)?;
        let g_h = self.act.backward(&g_a)?;
        let _ = self.l1.backward(&g_h)?;
        Ok(())
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.l1.zero_grad();
        self.l2.zero_grad();
    }

    /// Applies one optimizer step to all parameters.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        self.l1.visit_params(&mut |p| opt.step(p));
        self.l2.visit_params(&mut |p| opt.step(p));
    }

    /// Freezes the trained box into the packed value table **V**
    /// (`M` rows of `dim` bits).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the forward evaluation.
    pub fn export_table(&self) -> Result<BitMatrix, UniVsaError> {
        let grid = self.level_grid();
        let h = self.l1.infer(&grid)?;
        let a = self.act.infer(&h);
        let pre = self.l2.infer(&a)?;
        let table = sign(&pre);
        let rows = table
            .as_slice()
            .chunks(self.dim)
            .map(|row| {
                let mut v = BitVec::zeros(self.dim);
                for (i, &x) in row.iter().enumerate() {
                    if x > 0.0 {
                        v.set(i, true);
                    }
                }
                v
            })
            .collect();
        BitMatrix::from_rows(rows).map_err(UniVsaError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use univsa_nn::Adam;

    #[test]
    fn table_shape_and_bipolarity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut vb = ValueBox::new(16, 8, 4, &mut rng);
        let t = vb.forward_table().unwrap();
        assert_eq!(t.shape().dims(), &[16, 8]);
        assert!(t.as_slice().iter().all(|&x| x == 1.0 || x == -1.0));
    }

    #[test]
    fn export_matches_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut vb = ValueBox::new(16, 8, 4, &mut rng);
        let t = vb.forward_table().unwrap();
        let m = vb.export_table().unwrap();
        assert_eq!(m.rows(), 16);
        assert_eq!(m.dim(), 8);
        for (r, row) in t.as_slice().chunks(8).enumerate() {
            for (i, &x) in row.iter().enumerate() {
                assert_eq!(m.row(r).get(i) == Some(true), x > 0.0);
            }
        }
    }

    #[test]
    fn backward_before_forward_fails() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut vb = ValueBox::new(4, 2, 2, &mut rng);
        assert!(vb.backward_table(&Tensor::zeros(&[4, 2])).is_err());
    }

    #[test]
    fn training_changes_table() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut vb = ValueBox::new(8, 4, 8, &mut rng);
        let before = vb.export_table().unwrap();
        let mut opt = Adam::new(0.1);
        // push all outputs toward +1 by descending on -table
        for _ in 0..50 {
            let t = vb.forward_table().unwrap();
            let grad = t.map(|_| -1.0);
            vb.zero_grad();
            vb.backward_table(&grad).unwrap();
            vb.step(&mut opt);
        }
        let after = vb.export_table().unwrap();
        let ones_before: u32 = (0..8).map(|r| before.row(r).count_ones()).sum();
        let ones_after: u32 = (0..8).map(|r| after.row(r).count_ones()).sum();
        assert!(ones_after > ones_before, "{ones_after} vs {ones_before}");
    }

    #[test]
    fn level_grid_endpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        let vb = ValueBox::new(256, 4, 4, &mut rng);
        let g = vb.level_grid();
        assert_eq!(g.at(&[0, 0]), -1.0);
        assert_eq!(g.at(&[255, 0]), 1.0);
    }
}
