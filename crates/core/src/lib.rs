//! # univsa
//!
//! A from-scratch reproduction of **UniVSA** — *Holistic Design towards
//! Resource-Stringent Binary Vector Symbolic Architecture* (DAC 2025) — a
//! co-optimized binary vector symbolic architecture (VSA) framework for
//! ultra-lightweight classification on resource-stringent devices such as
//! implanted brain–computer interfaces.
//!
//! ## The model
//!
//! A classical binary VSA encodes a sample `x` of `N` discretized features
//! as `s = sgn(Σᵢ fᵢ ∘ v_{xᵢ})` and classifies by nearest class vector.
//! UniVSA extends it with three enhancements:
//!
//! 1. **Discriminated value projection (DVP)** — a feature-importance mask
//!    routes low-importance features through a narrower ValueBox (`D_L`
//!    instead of `D_H` bits), shrinking memory with negligible accuracy
//!    cost. See [`Mask`].
//! 2. **Binary feature extraction (BiConv)** — a binary convolution over
//!    the value-vector map introduces the cross-feature interactions that
//!    per-feature encodings cannot express.
//! 3. **Soft voting (SV)** — `Θ` parallel similarity heads whose averaged
//!    scores counteract the underfitting of very low dimensions.
//!
//! Training follows the low-dimensional-computing (LDC) strategy: the model
//! is trained as a tiny partial BNN with straight-through estimators, then
//! only the *binarized* weight sets — value boxes **V**, kernels **K**,
//! feature vectors **F**, and class vectors **C** — are exported into a
//! [`UniVsaModel`] that performs inference purely with packed bitwise
//! operations (XNOR + popcount), exactly like the paper's hardware.
//!
//! ## Quickstart
//!
//! ```no_run
//! use univsa::{Enhancements, TrainOptions, UniVsaConfig, UniVsaTrainer};
//! use univsa_data::tasks;
//!
//! # fn main() -> Result<(), univsa::UniVsaError> {
//! let task = tasks::bci3v(7);
//! let config = UniVsaConfig::for_task(&task.spec)
//!     .d_h(8).d_l(2).d_k(3).out_channels(16).voters(3)
//!     .build()?;
//! let trainer = UniVsaTrainer::new(config, TrainOptions::default());
//! let outcome = trainer.fit(&task.train, 42)?;
//! let accuracy = outcome.model.evaluate(&task.test)?;
//! println!("accuracy {accuracy:.4}, memory {:.2} KB",
//!          outcome.model.memory_report().total_kib());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod compile;
mod config;
mod dvp;
mod encoding;
mod error;
mod export;
mod fault;
mod infer;
mod integrity;
pub mod json;
mod mask;
mod memory;
mod model;
mod observe;
mod train;
mod valuebox;

pub use audit::{ComponentAudit, FootprintAudit};
pub use compile::{is_packed_artifact, load_packed, save_packed, PackedInference, PackedModel};
pub use config::{ConfigBuilder, Enhancements, UniVsaConfig};
pub use dvp::ValueMap;
pub use encoding::EncodingLayer;
pub use error::UniVsaError;
pub use export::{load_model, save_model, save_model_v1};
pub use fault::{
    ChaosSpec, FaultModel, FaultOutcome, FaultSpec, FaultTarget, SensorFault, SensorFaultSpec,
    CHAOS_ENV_VAR,
};
pub use infer::{similarity_margin, InferenceTrace};
pub use integrity::{crc32, CheckedInference, IntegrityReport, ModelIntegrity};
pub use mask::Mask;
pub use memory::{resource_estimate, HardwareLoss, MemoryReport};
pub use model::UniVsaModel;
pub use observe::{EpochObserver, EpochStats};
pub use train::{TrainHistory, TrainOptions, TrainOutcome, UniVsaTrainer};
pub use valuebox::ValueBox;
