//! Discriminated value projection: building the packed value-vector map.

use univsa_bits::BitMatrix;

use crate::{Mask, UniVsaError};

/// The packed value-vector map of one sample: for every grid position a
/// `D_H`-bit channel word (bit `c` = bipolar channel value `+1`).
///
/// High-importance features take their full `D_H` bits from `VB_H`'s table;
/// low-importance features take `D_L` bits from `VB_L`'s table and fill the
/// remaining `D_H − D_L` channels with constant `+1`. The constant fill is
/// the zero-memory choice consistent with Eq. 5, which charges
/// `M × (D_H + D_L)` bits for **V** and nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueMap {
    words: Vec<u64>,
    d_h: usize,
    width: usize,
    length: usize,
}

impl ValueMap {
    /// Builds the map for one sample.
    ///
    /// `values` holds `W·L` discretized levels; `mask` flags high-importance
    /// features; `v_h`/`v_l` are the exported ValueBox tables (`M × D_H`
    /// and `M × D_L`).
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] if lengths disagree, a level is out
    /// of table range, or `D_L > D_H`/`D_H > 64`.
    pub fn build(
        values: &[u8],
        mask: &Mask,
        v_h: &BitMatrix,
        v_l: &BitMatrix,
        width: usize,
        length: usize,
    ) -> Result<Self, UniVsaError> {
        let n = width * length;
        if values.len() != n {
            return Err(UniVsaError::Input(format!(
                "expected {n} values for a ({width}, {length}) grid, got {}",
                values.len()
            )));
        }
        if mask.len() != n {
            return Err(UniVsaError::Input(format!(
                "mask covers {} features, grid has {n}",
                mask.len()
            )));
        }
        let d_h = v_h.dim();
        let d_l = v_l.dim();
        if d_h > 64 {
            return Err(UniVsaError::Input(format!(
                "D_H = {d_h} exceeds the packed-word limit of 64"
            )));
        }
        if d_l > d_h {
            return Err(UniVsaError::Input(format!(
                "D_L = {d_l} must not exceed D_H = {d_h}"
            )));
        }
        let mut words = Vec::with_capacity(n);
        for (i, &level) in values.iter().enumerate() {
            let level = level as usize;
            let word = if mask.is_high(i) {
                let row = v_h.get(level).ok_or_else(|| {
                    UniVsaError::Input(format!(
                        "level {level} out of range for VB_H table of {} rows",
                        v_h.rows()
                    ))
                })?;
                row.as_words().first().copied().unwrap_or(0)
            } else {
                let row = v_l.get(level).ok_or_else(|| {
                    UniVsaError::Input(format!(
                        "level {level} out of range for VB_L table of {} rows",
                        v_l.rows()
                    ))
                })?;
                let low = row.as_words().first().copied().unwrap_or(0);
                // channels d_l..d_h are constant +1 (bit 1)
                let fill = if d_h == d_l {
                    0
                } else {
                    (word_mask(d_h)) & !(word_mask(d_l))
                };
                low | fill
            };
            words.push(word);
        }
        Ok(Self {
            words,
            d_h,
            width,
            length,
        })
    }

    /// Channel depth `D_H`.
    #[inline]
    pub fn d_h(&self) -> usize {
        self.d_h
    }

    /// Grid height `W`.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid width `L`.
    #[inline]
    pub fn length(&self) -> usize {
        self.length
    }

    /// The packed channel word at flat position `pos = w·L + l`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[inline]
    pub fn word(&self, pos: usize) -> u64 {
        self.words[pos]
    }

    /// The packed channel word at grid coordinates, or `None` out of
    /// bounds — boundary probes during convolution use this.
    #[inline]
    pub fn word_at(&self, w: isize, l: isize) -> Option<u64> {
        if w < 0 || l < 0 || w >= self.width as isize || l >= self.length as isize {
            None
        } else {
            Some(self.words[w as usize * self.length + l as usize])
        }
    }

    /// Bipolar channel value (`±1`) of channel `c` at flat position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` or `c` is out of range.
    pub fn bipolar(&self, pos: usize, c: usize) -> i32 {
        assert!(c < self.d_h, "channel {c} out of range");
        if (self.words[pos] >> c) & 1 == 1 {
            1
        } else {
            -1
        }
    }
}

/// Mask with the low `bits` bits set (`bits ≤ 64`).
fn word_mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tables(seed: u64, m: usize, d_h: usize, d_l: usize) -> (BitMatrix, BitMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            BitMatrix::random(m, d_h, &mut rng),
            BitMatrix::random(m, d_l, &mut rng),
        )
    }

    #[test]
    fn high_features_use_vh() {
        let (vh, vl) = tables(0, 4, 8, 2);
        let mask = Mask::all_high(4);
        let vm = ValueMap::build(&[0, 1, 2, 3], &mask, &vh, &vl, 2, 2).unwrap();
        for pos in 0..4 {
            assert_eq!(vm.word(pos), vh.row(pos).as_words()[0]);
        }
    }

    #[test]
    fn low_features_pad_with_plus_one() {
        let (vh, vl) = tables(1, 4, 8, 2);
        let mask = Mask::from_bits(vec![false; 4]);
        let vm = ValueMap::build(&[0, 1, 2, 3], &mask, &vh, &vl, 2, 2).unwrap();
        for pos in 0..4 {
            // low 2 bits from VB_L
            let expect_low = vl.row(pos).as_words()[0] & 0b11;
            assert_eq!(vm.word(pos) & 0b11, expect_low);
            // channels 2..8 all +1
            for c in 2..8 {
                assert_eq!(vm.bipolar(pos, c), 1);
            }
            // channels 8..64 untouched (zero)
            assert_eq!(vm.word(pos) >> 8, 0);
        }
    }

    #[test]
    fn word_at_boundary() {
        let (vh, vl) = tables(2, 2, 4, 2);
        let mask = Mask::all_high(4);
        let vm = ValueMap::build(&[0, 1, 0, 1], &mask, &vh, &vl, 2, 2).unwrap();
        assert!(vm.word_at(-1, 0).is_none());
        assert!(vm.word_at(0, 2).is_none());
        assert_eq!(vm.word_at(1, 1), Some(vm.word(3)));
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let (vh, vl) = tables(3, 4, 4, 2);
        let mask = Mask::all_high(4);
        assert!(ValueMap::build(&[0, 1], &mask, &vh, &vl, 2, 2).is_err());
        let short_mask = Mask::all_high(2);
        assert!(ValueMap::build(&[0, 1, 2, 3], &short_mask, &vh, &vl, 2, 2).is_err());
    }

    #[test]
    fn rejects_level_out_of_range() {
        let (vh, vl) = tables(4, 2, 4, 2);
        let mask = Mask::all_high(1);
        assert!(ValueMap::build(&[5], &mask, &vh, &vl, 1, 1).is_err());
    }

    #[test]
    fn rejects_dl_above_dh() {
        let mut rng = StdRng::seed_from_u64(5);
        let vh = BitMatrix::random(2, 2, &mut rng);
        let vl = BitMatrix::random(2, 4, &mut rng);
        let mask = Mask::all_high(1);
        assert!(ValueMap::build(&[0], &mask, &vh, &vl, 1, 1).is_err());
    }

    #[test]
    fn full_width_dl_no_fill() {
        let (vh, vl) = tables(6, 4, 8, 8);
        let mask = Mask::from_bits(vec![false; 1]);
        let vm = ValueMap::build(&[2], &mask, &vh, &vl, 1, 1).unwrap();
        assert_eq!(vm.word(0), vl.row(2).as_words()[0]);
    }
}
