//! LDC-style training of the UniVSA partial BNN.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use univsa_bits::{BitMatrix, BitVec};
use univsa_data::Dataset;
use univsa_nn::{softmax_cross_entropy, Adam, BatchIter, BinaryConv2d, BinaryLinear, Optimizer};
use univsa_tensor::Tensor;

use crate::observe::{EpochObserver, EpochStats};
use crate::{EncodingLayer, Mask, UniVsaConfig, UniVsaError, UniVsaModel, ValueBox};

/// Hyperparameters of the training loop.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOptions {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Hidden width of the ValueBox MLPs.
    pub hidden: usize,
    /// Logit scale applied to the averaged similarity scores before the
    /// softmax; `None` picks `4/√D`, which keeps the softmax out of
    /// saturation across the paper's dimension range.
    pub logit_scale: Option<f32>,
    /// Latent-weight clip bound for the binary layers (keeps the STE
    /// window populated).
    pub weight_clip: f32,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 32,
            learning_rate: 0.01,
            hidden: 16,
            logit_scale: None,
            weight_clip: 1.0,
        }
    }
}

/// Per-epoch training curve.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainHistory {
    /// Mean cross-entropy per epoch.
    pub epoch_loss: Vec<f32>,
    /// Training accuracy per epoch (from the training-time logits).
    pub epoch_accuracy: Vec<f64>,
}

/// The result of [`UniVsaTrainer::fit`]: the packed deployment model and
/// its training curve.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The frozen packed model.
    pub model: UniVsaModel,
    /// Loss/accuracy history.
    pub history: TrainHistory,
}

/// Trains UniVSA models with the LDC strategy: the model runs as a float
/// partial BNN with straight-through estimators during training, and only
/// the binarized weight sets are exported.
///
/// See the crate-level quickstart for an end-to-end example.
#[derive(Debug, Clone)]
pub struct UniVsaTrainer {
    config: UniVsaConfig,
    options: TrainOptions,
}

impl UniVsaTrainer {
    /// Creates a trainer for the given configuration and hyperparameters.
    pub fn new(config: UniVsaConfig, options: TrainOptions) -> Self {
        Self { config, options }
    }

    /// The configuration this trainer targets.
    #[inline]
    pub fn config(&self) -> &UniVsaConfig {
        &self.config
    }

    /// The training hyperparameters.
    #[inline]
    pub fn options(&self) -> &TrainOptions {
        &self.options
    }

    /// Trains on the given split with a fixed seed and exports the packed
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`UniVsaError::Input`] if the dataset is empty or its
    /// geometry disagrees with the configuration, and propagates any
    /// internal shape error (which would indicate a bug in the wiring).
    pub fn fit(&self, train: &Dataset, seed: u64) -> Result<TrainOutcome, UniVsaError> {
        self.fit_observed(train, seed, &mut ())
    }

    /// [`fit`](Self::fit) with an [`EpochObserver`] receiving per-epoch
    /// loss/accuracy/duration and the total fit wall time. Telemetry
    /// spans (`train.epoch`, `train.fit`) are emitted alongside whenever
    /// the global registry is enabled.
    ///
    /// # Errors
    ///
    /// Same conditions as [`fit`](Self::fit).
    pub fn fit_observed(
        &self,
        train: &Dataset,
        seed: u64,
        observer: &mut dyn EpochObserver,
    ) -> Result<TrainOutcome, UniVsaError> {
        let fit_start = Instant::now();
        let cfg = &self.config;
        let opt = &self.options;
        self.check_dataset(train)?;
        // RAII span held for the whole fit so per-epoch spans (and the
        // pool regions they dispatch) causally nest under it in a trace
        let fit_span = univsa_telemetry::span("train", "fit")
            .field("epochs", opt.epochs)
            .field("samples", train.len())
            .field("seed", seed);

        let mut rng = StdRng::seed_from_u64(seed);
        let d = cfg.vsa_dim();
        let channels = cfg.encoding_channels();
        let voters = cfg.effective_voters();
        let scale = opt.logit_scale.unwrap_or_else(|| 4.0 / (d as f32).sqrt());

        // DVP mask (all-high when the enhancement is off).
        let mask = if cfg.enhancements.dvp {
            Mask::learn(train, cfg.high_fraction)?
        } else {
            Mask::all_high(cfg.features())
        };

        // Assemble the partial BNN.
        let mut vb_h = ValueBox::new(cfg.levels, cfg.d_h, opt.hidden, &mut rng);
        let mut vb_l = if cfg.enhancements.dvp {
            Some(ValueBox::new(cfg.levels, cfg.d_l, opt.hidden, &mut rng))
        } else {
            None
        };
        let mut conv = if cfg.enhancements.biconv {
            Some(BinaryConv2d::new(cfg.conv_spec(), &mut rng)?)
        } else {
            None
        };
        let mut enc = EncodingLayer::new(channels, d, &mut rng);
        let mut heads: Vec<BinaryLinear> = (0..voters)
            .map(|_| BinaryLinear::new(d, cfg.classes, &mut rng))
            .collect();
        let mut adam = Adam::new(opt.learning_rate);

        let n = train.len();
        let mut history = TrainHistory {
            epoch_loss: Vec::with_capacity(opt.epochs),
            epoch_accuracy: Vec::with_capacity(opt.epochs),
        };

        for epoch in 0..opt.epochs {
            let epoch_start = Instant::now();
            let epoch_span = univsa_telemetry::span("train", "epoch");
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            let mut correct = 0usize;
            for batch in BatchIter::new(n, opt.batch_size, &mut rng) {
                let labels: Vec<usize> = batch.iter().map(|&i| train.samples()[i].label).collect();

                // 1. Value tables over the level grid.
                let th = vb_h.forward_table()?;
                let tl = match vb_l.as_mut() {
                    Some(vb) => Some(vb.forward_table()?),
                    None => None,
                };

                // 2. Per-sample value maps (D_H, W, L), built on the
                //    worker pool (independent per sample, collected in
                //    sample order).
                let xs: Vec<Tensor> =
                    univsa_par::map_indexed("train.value_maps", batch.len(), |bi| {
                        self.build_value_map(train, batch[bi], &mask, &th, tl.as_ref())
                    })
                    .into_iter()
                    .collect::<Result<_, _>>()?;

                // 3. BiConv (or passthrough) to channel maps (channels, D).
                let (a_maps, conv_inputs): (Vec<Tensor>, bool) = match conv.as_mut() {
                    Some(conv) => {
                        let outs = conv.forward(&xs)?;
                        (
                            outs.into_iter()
                                .map(|t| t.reshape(&[channels, d]))
                                .collect::<Result<_, _>>()?,
                            true,
                        )
                    }
                    None => (
                        xs.iter()
                            .map(|x| x.clone().reshape(&[channels, d]))
                            .collect::<Result<_, _>>()?,
                        false,
                    ),
                };

                // 4. Encoding to sample vectors s.
                let s_vecs = enc.forward(&a_maps)?;
                let mut s_flat = Vec::with_capacity(batch.len() * d);
                for s in &s_vecs {
                    s_flat.extend_from_slice(s.as_slice());
                }
                let s_batch = Tensor::from_vec(s_flat, &[batch.len(), d])?;

                // 5. Soft-voting similarity heads.
                let mut sum_logits = Tensor::zeros(&[batch.len(), cfg.classes]);
                for head in &mut heads {
                    let logits = head.forward(&s_batch)?;
                    sum_logits.axpy(1.0, &logits)?;
                }
                let avg_logits = sum_logits.scale(scale / voters as f32);

                // 6. Loss.
                let (loss, grad_logits) = softmax_cross_entropy(&avg_logits, &labels)?;
                epoch_loss += f64::from(loss);
                batches += 1;
                for (row, &label) in avg_logits.as_slice().chunks(cfg.classes).zip(labels.iter()) {
                    let pred = row
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    if pred == label {
                        correct += 1;
                    }
                }

                // 7. Backward.
                vb_h.zero_grad();
                if let Some(vb) = vb_l.as_mut() {
                    vb.zero_grad();
                }
                if let Some(conv) = conv.as_mut() {
                    conv.zero_grad();
                }
                enc.zero_grad();
                for head in &mut heads {
                    head.zero_grad();
                }

                let grad_heads = grad_logits.scale(scale / voters as f32);
                let mut grad_s = Tensor::zeros(&[batch.len(), d]);
                for head in &mut heads {
                    grad_s.axpy(1.0, &head.backward(&grad_heads)?)?;
                }
                let grad_s_rows: Vec<Tensor> = grad_s
                    .as_slice()
                    .chunks(d)
                    .map(|row| Tensor::from_vec(row.to_vec(), &[d]))
                    .collect::<Result<_, _>>()?;
                let grad_a = enc.backward(&grad_s_rows)?;
                let grad_x: Vec<Tensor> = if conv_inputs {
                    let conv = conv.as_mut().expect("conv_inputs implies conv");
                    let ga3: Vec<Tensor> = grad_a
                        .into_iter()
                        .map(|g| g.reshape(&[channels, cfg.width, cfg.length]))
                        .collect::<Result<_, _>>()?;
                    conv.backward(&ga3)?
                } else {
                    grad_a
                        .into_iter()
                        .map(|g| g.reshape(&[cfg.d_h, cfg.width, cfg.length]))
                        .collect::<Result<_, _>>()?
                };

                // 8. Scatter grads back into the value tables.
                let mut grad_th = Tensor::zeros(&[cfg.levels, cfg.d_h]);
                let mut grad_tl = Tensor::zeros(&[cfg.levels, cfg.d_l]);
                for (bi, &i) in batch.iter().enumerate() {
                    let sample = &train.samples()[i];
                    let gx = grad_x[bi].as_slice();
                    for pos in 0..d {
                        let level = sample.values[pos] as usize;
                        if mask.is_high(pos) {
                            let dst =
                                &mut grad_th.as_mut_slice()[level * cfg.d_h..(level + 1) * cfg.d_h];
                            for (c, slot) in dst.iter_mut().enumerate() {
                                *slot += gx[c * d + pos];
                            }
                        } else {
                            let dst =
                                &mut grad_tl.as_mut_slice()[level * cfg.d_l..(level + 1) * cfg.d_l];
                            for (c, slot) in dst.iter_mut().enumerate() {
                                *slot += gx[c * d + pos];
                            }
                        }
                    }
                }
                vb_h.backward_table(&grad_th)?;
                if let Some(vb) = vb_l.as_mut() {
                    vb.backward_table(&grad_tl)?;
                }

                // 9. Optimizer steps + latent clipping.
                vb_h.step(&mut adam);
                if let Some(vb) = vb_l.as_mut() {
                    vb.step(&mut adam);
                }
                if let Some(conv) = conv.as_mut() {
                    adam.step(conv.kernel_mut());
                    conv.kernel_mut().clip(opt.weight_clip);
                }
                adam.step(enc.f_latent_mut());
                enc.f_latent_mut().clip(opt.weight_clip);
                for head in &mut heads {
                    adam.step(head.weight_mut());
                    head.weight_mut().clip(opt.weight_clip);
                }
            }
            let loss = (epoch_loss / batches.max(1) as f64) as f32;
            let accuracy = correct as f64 / n as f64;
            history.epoch_loss.push(loss);
            history.epoch_accuracy.push(accuracy);
            drop(
                epoch_span
                    .field("epoch", epoch)
                    .field("loss", loss)
                    .field("accuracy", accuracy),
            );
            observer.on_epoch(&EpochStats {
                epoch,
                epochs: opt.epochs,
                loss,
                accuracy,
                duration: epoch_start.elapsed(),
            });
        }

        // Export the packed deployment model.
        let v_h = vb_h.export_table()?;
        let v_l = match vb_l.as_ref() {
            Some(vb) => vb.export_table()?,
            // DVP off: VB_L is never consulted (mask is all-high); reuse
            // VB_H so dimensions validate.
            None => v_h.clone(),
        };
        let kernel = match conv.as_ref() {
            Some(conv) => pack_kernel(&conv.binary_kernel(), cfg),
            None => vec![],
        };
        let f = pack_rows(&enc.binary_f(), channels, d)?;
        let c = heads
            .iter()
            .map(|h| pack_rows(&h.binary_weight(), cfg.classes, d))
            .collect::<Result<Vec<_>, _>>()?;
        let model = UniVsaModel::from_parts(cfg.clone(), mask, v_h, v_l, kernel, f, c)?;
        let total = fit_start.elapsed();
        drop(fit_span);
        observer.on_fit_done(opt.epochs, total);
        Ok(TrainOutcome { model, history })
    }

    /// Builds one training sample's value map `(D_H, W, L)` from the
    /// current float value tables, mirroring [`crate::ValueMap`]'s packed
    /// layout (low-importance fill is constant `+1`).
    fn build_value_map(
        &self,
        train: &Dataset,
        index: usize,
        mask: &Mask,
        th: &Tensor,
        tl: Option<&Tensor>,
    ) -> Result<Tensor, UniVsaError> {
        let cfg = &self.config;
        let d = cfg.vsa_dim();
        let mut x = vec![1.0f32; cfg.d_h * d];
        let sample = &train.samples()[index];
        for pos in 0..d {
            let level = sample.values[pos] as usize;
            if mask.is_high(pos) {
                let row = &th.as_slice()[level * cfg.d_h..(level + 1) * cfg.d_h];
                for (c, &v) in row.iter().enumerate() {
                    x[c * d + pos] = v;
                }
            } else {
                let tl = tl.expect("low-importance feature requires VB_L");
                let row = &tl.as_slice()[level * cfg.d_l..(level + 1) * cfg.d_l];
                for (c, &v) in row.iter().enumerate() {
                    x[c * d + pos] = v;
                }
                // channels d_l.. stay at the +1 fill
            }
        }
        Tensor::from_vec(x, &[cfg.d_h, cfg.width, cfg.length]).map_err(UniVsaError::from)
    }

    fn check_dataset(&self, train: &Dataset) -> Result<(), UniVsaError> {
        if train.is_empty() {
            return Err(UniVsaError::Input(
                "cannot train on an empty dataset".into(),
            ));
        }
        let spec = train.spec();
        let cfg = &self.config;
        if spec.width != cfg.width
            || spec.length != cfg.length
            || spec.classes != cfg.classes
            || spec.levels != cfg.levels
        {
            return Err(UniVsaError::Input(format!(
                "dataset geometry ({}, {}, {} classes, {} levels) disagrees with config ({}, {}, {}, {})",
                spec.width,
                spec.length,
                spec.classes,
                spec.levels,
                cfg.width,
                cfg.length,
                cfg.classes,
                cfg.levels
            )));
        }
        Ok(())
    }
}

/// Packs a binarized `(O, D_H, K, K)` kernel tensor into per-tap channel
/// words (bit `c` set when `kernel[o, c, ky, kx] > 0`).
fn pack_kernel(kernel: &Tensor, cfg: &UniVsaConfig) -> Vec<u64> {
    let (o_count, d_h, k) = (cfg.out_channels, cfg.d_h, cfg.d_k);
    let buf = kernel.as_slice();
    let mut words = vec![0u64; o_count * k * k];
    for o in 0..o_count {
        for c in 0..d_h {
            for ky in 0..k {
                for kx in 0..k {
                    let v = buf[((o * d_h + c) * k + ky) * k + kx];
                    if v > 0.0 {
                        words[o * k * k + ky * k + kx] |= 1 << c;
                    }
                }
            }
        }
    }
    words
}

/// Packs a binarized `(rows, dim)` tensor into a [`BitMatrix`].
fn pack_rows(t: &Tensor, rows: usize, dim: usize) -> Result<BitMatrix, UniVsaError> {
    let buf = t.as_slice();
    let packed = (0..rows)
        .map(|r| {
            let mut v = BitVec::zeros(dim);
            for (i, &x) in buf[r * dim..(r + 1) * dim].iter().enumerate() {
                if x > 0.0 {
                    v.set(i, true);
                }
            }
            v
        })
        .collect();
    BitMatrix::from_rows(packed).map_err(UniVsaError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Enhancements;
    use univsa_data::{GeneratorParams, SyntheticGenerator, TaskSpec};

    fn tiny_task(seed: u64) -> (Dataset, Dataset) {
        let spec = TaskSpec {
            name: "tiny".into(),
            width: 4,
            length: 8,
            classes: 2,
            levels: 256,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = GeneratorParams::new(spec);
        // keep the smoke-test task easy: strong, dense linear signal
        params.linear_bias = 0.9;
        params.informative_fraction = 0.5;
        params.noise = 0.25;
        params.texture = 0.4;
        let generator = SyntheticGenerator::new(params, &mut rng);
        (
            generator.dataset(&[30, 30], &mut rng),
            generator.dataset(&[15, 15], &mut rng),
        )
    }

    fn tiny_options() -> TrainOptions {
        TrainOptions {
            epochs: 8,
            batch_size: 16,
            ..TrainOptions::default()
        }
    }

    fn tiny_config(enhancements: Enhancements) -> UniVsaConfig {
        let spec = TaskSpec {
            name: "tiny".into(),
            width: 4,
            length: 8,
            classes: 2,
            levels: 256,
        };
        UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(2)
            .d_k(3)
            .out_channels(8)
            .voters(2)
            .enhancements(enhancements)
            .build()
            .unwrap()
    }

    #[test]
    fn trains_above_chance_full() {
        let (train, test) = tiny_task(0);
        let trainer = UniVsaTrainer::new(tiny_config(Enhancements::all()), tiny_options());
        let outcome = trainer.fit(&train, 7).unwrap();
        let acc = outcome.model.evaluate(&test).unwrap();
        assert!(acc > 0.6, "test accuracy {acc} not above chance");
        assert_eq!(outcome.history.epoch_loss.len(), 8);
        // loss should broadly decrease
        assert!(
            outcome.history.epoch_loss.last().unwrap()
                < outcome.history.epoch_loss.first().unwrap()
        );
    }

    #[test]
    fn trains_with_all_enhancements_off() {
        let (train, test) = tiny_task(1);
        let trainer = UniVsaTrainer::new(tiny_config(Enhancements::none()), tiny_options());
        let outcome = trainer.fit(&train, 7).unwrap();
        let acc = outcome.model.evaluate(&test).unwrap();
        assert!(acc > 0.5, "baseline accuracy {acc} at or below chance");
        // no kernel, single voter, single value table
        assert!(outcome.model.kernel_words().is_empty());
        assert_eq!(outcome.model.class_sets().len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, _) = tiny_task(2);
        let trainer = UniVsaTrainer::new(tiny_config(Enhancements::all()), tiny_options());
        let a = trainer.fit(&train, 11).unwrap();
        let b = trainer.fit(&train, 11).unwrap();
        assert_eq!(a.model, b.model);
    }

    /// The data-parallel fan-outs (value maps, BiConv, encoding,
    /// evaluation) must reduce in strict sample order: training and
    /// evaluation are bit-identical at every worker-pool width.
    #[test]
    fn fit_independent_of_thread_count() {
        let (train, test) = tiny_task(5);
        let trainer = UniVsaTrainer::new(tiny_config(Enhancements::all()), tiny_options());
        let serial = univsa_par::with_threads(1, || trainer.fit(&train, 13)).unwrap();
        let parallel = univsa_par::with_threads(4, || trainer.fit(&train, 13)).unwrap();
        assert_eq!(serial.model, parallel.model);
        assert_eq!(serial.history.epoch_loss, parallel.history.epoch_loss);
        assert_eq!(
            serial.history.epoch_accuracy,
            parallel.history.epoch_accuracy
        );
        let acc_serial = univsa_par::with_threads(1, || serial.model.evaluate(&test)).unwrap();
        let acc_parallel = univsa_par::with_threads(4, || parallel.model.evaluate(&test)).unwrap();
        assert_eq!(acc_serial, acc_parallel);
    }

    #[test]
    fn rejects_geometry_mismatch() {
        let (train, _) = tiny_task(3);
        let spec = TaskSpec {
            name: "other".into(),
            width: 5,
            length: 8,
            classes: 2,
            levels: 256,
        };
        let cfg = UniVsaConfig::for_task(&spec).build().unwrap();
        let trainer = UniVsaTrainer::new(cfg, tiny_options());
        assert!(trainer.fit(&train, 0).is_err());
    }

    #[test]
    fn rejects_empty_dataset() {
        let spec = TaskSpec {
            name: "tiny".into(),
            width: 4,
            length: 8,
            classes: 2,
            levels: 256,
        };
        let empty = Dataset::new(spec, vec![]).unwrap();
        let trainer = UniVsaTrainer::new(tiny_config(Enhancements::all()), tiny_options());
        assert!(trainer.fit(&empty, 0).is_err());
    }

    #[test]
    fn observer_sees_every_epoch() {
        struct Recorder {
            epochs: Vec<usize>,
            losses: Vec<f32>,
            total: Option<std::time::Duration>,
        }
        impl crate::EpochObserver for Recorder {
            fn on_epoch(&mut self, stats: &crate::EpochStats) {
                assert_eq!(stats.epochs, 8);
                self.epochs.push(stats.epoch);
                self.losses.push(stats.loss);
            }
            fn on_fit_done(&mut self, epochs: usize, total: std::time::Duration) {
                assert_eq!(epochs, 8);
                self.total = Some(total);
            }
        }
        let (train, _) = tiny_task(6);
        let trainer = UniVsaTrainer::new(tiny_config(Enhancements::all()), tiny_options());
        let mut rec = Recorder {
            epochs: Vec::new(),
            losses: Vec::new(),
            total: None,
        };
        let outcome = trainer.fit_observed(&train, 3, &mut rec).unwrap();
        assert_eq!(rec.epochs, (0..8).collect::<Vec<_>>());
        assert_eq!(rec.losses, outcome.history.epoch_loss);
        assert!(rec.total.is_some());
    }

    #[test]
    fn closure_observer_matches_history() {
        let (train, _) = tiny_task(7);
        let trainer = UniVsaTrainer::new(tiny_config(Enhancements::all()), tiny_options());
        let mut accs = Vec::new();
        let outcome = trainer
            .fit_observed(&train, 3, &mut |s: &crate::EpochStats| {
                accs.push(s.accuracy)
            })
            .unwrap();
        assert_eq!(accs, outcome.history.epoch_accuracy);
    }

    /// The exported packed model must reproduce the float network's
    /// predictions (the training path and the packed path implement the
    /// same arithmetic).
    #[test]
    fn packed_model_memory_matches_eq5() {
        let (train, _) = tiny_task(4);
        let trainer = UniVsaTrainer::new(tiny_config(Enhancements::all()), tiny_options());
        let outcome = trainer.fit(&train, 5).unwrap();
        assert_eq!(
            outcome.model.storage_bits(),
            outcome.model.memory_report().total_bits()
        );
    }
}
