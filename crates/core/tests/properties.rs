//! Property-based tests of the packed UniVSA model: the packed inference
//! pipeline must agree with naive ±1 integer arithmetic on arbitrary
//! models and inputs, and model invariants must hold across random
//! configurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use univsa::{
    Enhancements, FaultModel, FaultSpec, FaultTarget, Mask, MemoryReport, UniVsaConfig, UniVsaModel,
};
use univsa_bits::BitMatrix;
use univsa_data::TaskSpec;

#[derive(Debug, Clone)]
struct Case {
    config: UniVsaConfig,
    seed: u64,
    values: Vec<u8>,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        2usize..6,     // width
        3usize..7,     // length
        2usize..5,     // classes
        1usize..9,     // d_h
        1usize..5,     // voters
        2usize..9,     // out_channels
        0u64..1000,    // seed
        any::<bool>(), // dvp
        any::<bool>(), // biconv
        any::<bool>(), // soft voting
    )
        .prop_flat_map(|(w, l, c, d_h, voters, o, seed, dvp, biconv, sv)| {
            let levels = 8usize;
            let spec = TaskSpec {
                name: "prop".into(),
                width: w,
                length: l,
                classes: c,
                levels,
            };
            let d_k = if w.min(l) >= 3 { 3 } else { 1 };
            let config = UniVsaConfig::for_task(&spec)
                .d_h(d_h)
                .d_l(1.max(d_h / 2))
                .d_k(d_k)
                .out_channels(o)
                .voters(voters)
                .enhancements(Enhancements {
                    dvp,
                    biconv,
                    soft_voting: sv,
                })
                .build()
                .expect("generated config is valid");
            let n = w * l;
            proptest::collection::vec(0u8..levels as u8, n).prop_map(move |values| Case {
                config: config.clone(),
                seed,
                values,
            })
        })
}

fn random_model(case: &Case) -> UniVsaModel {
    let cfg = &case.config;
    let mut rng = StdRng::seed_from_u64(case.seed);
    let mask = if cfg.enhancements.dvp {
        Mask::from_bits((0..cfg.features()).map(|_| rng.gen::<bool>()).collect())
    } else {
        Mask::all_high(cfg.features())
    };
    let v_h = BitMatrix::random(cfg.levels, cfg.d_h, &mut rng);
    let v_l = BitMatrix::random(cfg.levels, cfg.effective_d_l(), &mut rng);
    let kernel = if cfg.enhancements.biconv {
        (0..cfg.out_channels * cfg.d_k * cfg.d_k)
            .map(|_| rng.gen::<u64>())
            .collect()
    } else {
        vec![]
    };
    let f = BitMatrix::random(cfg.encoding_channels(), cfg.vsa_dim(), &mut rng);
    let c = (0..cfg.effective_voters())
        .map(|_| BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng))
        .collect();
    UniVsaModel::from_parts(cfg.clone(), mask, v_h, v_l, kernel, f, c)
        .expect("random parts are consistent")
}

/// Naive reference implementation of the whole pipeline in ±1 integers.
fn naive_infer(model: &UniVsaModel, values: &[u8]) -> usize {
    let cfg = model.config();
    let (w, l, d_h) = (cfg.width, cfg.length, cfg.d_h);
    let d = cfg.vsa_dim();
    // 1. value map
    let mut x = vec![vec![0i64; d]; d_h];
    for pos in 0..d {
        let level = values[pos] as usize;
        for (c, row) in x.iter_mut().enumerate() {
            row[pos] = if model.mask().is_high(pos) {
                if model.v_h().row(level).get(c) == Some(true) {
                    1
                } else {
                    -1
                }
            } else if c < model.v_l().dim() {
                if model.v_l().row(level).get(c) == Some(true) {
                    1
                } else {
                    -1
                }
            } else {
                1 // constant fill
            };
        }
    }
    // 2. conv (or passthrough)
    let channels = cfg.encoding_channels();
    let mut a = vec![vec![0i64; d]; channels];
    if cfg.enhancements.biconv {
        let k = cfg.d_k;
        let pad = (k / 2) as isize;
        for (o, arow) in a.iter_mut().enumerate() {
            for y in 0..w {
                for xx in 0..l {
                    let mut acc = 0i64;
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = y as isize + ky as isize - pad;
                            let ix = xx as isize + kx as isize - pad;
                            if iy < 0 || ix < 0 || iy >= w as isize || ix >= l as isize {
                                continue;
                            }
                            let pos = iy as usize * l + ix as usize;
                            let kw = model.kernel_word(o, ky, kx);
                            for (c, xrow) in x.iter().enumerate().take(d_h) {
                                let kv = if (kw >> c) & 1 == 1 { 1 } else { -1 };
                                acc += xrow[pos] * kv;
                            }
                        }
                    }
                    arow[y * l + xx] = if acc >= 0 { 1 } else { -1 };
                }
            }
        }
    } else {
        for (c, arow) in a.iter_mut().enumerate() {
            arow.copy_from_slice(&x[c]);
        }
    }
    // 3. encoding
    let mut s = vec![0i64; d];
    for (pos, slot) in s.iter_mut().enumerate() {
        let mut acc = 0i64;
        for (o, arow) in a.iter().enumerate() {
            let fv = if model.f().row(o).get(pos) == Some(true) {
                1
            } else {
                -1
            };
            acc += arow[pos] * fv;
        }
        *slot = if acc >= 0 { 1 } else { -1 };
    }
    // 4. similarity
    let mut totals = vec![0i64; cfg.classes];
    for set in model.class_sets() {
        for (j, total) in totals.iter_mut().enumerate() {
            let mut dot = 0i64;
            for (pos, &sv) in s.iter().enumerate().take(d) {
                let cv = if set.row(j).get(pos) == Some(true) {
                    1
                } else {
                    -1
                };
                dot += cv * sv;
            }
            *total += dot;
        }
    }
    totals
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
        .map(|(i, _)| i)
        .expect("classes nonempty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_pipeline_matches_naive_reference(case in arb_case()) {
        let model = random_model(&case);
        let packed = model.infer(&case.values).unwrap();
        let naive = naive_infer(&model, &case.values);
        prop_assert_eq!(packed, naive);
    }

    #[test]
    fn inference_is_deterministic(case in arb_case()) {
        let model = random_model(&case);
        prop_assert_eq!(
            model.infer(&case.values).unwrap(),
            model.infer(&case.values).unwrap()
        );
    }

    #[test]
    fn encoded_vector_has_model_dimension(case in arb_case()) {
        let model = random_model(&case);
        let s = model.encode(&case.values).unwrap();
        prop_assert_eq!(s.dim(), case.config.vsa_dim());
    }

    #[test]
    fn storage_matches_eq5(case in arb_case()) {
        let model = random_model(&case);
        prop_assert_eq!(
            model.storage_bits(),
            MemoryReport::for_config(&case.config).total_bits()
        );
    }

    #[test]
    fn serialization_roundtrips(case in arb_case()) {
        let model = random_model(&case);
        let bytes = univsa::save_model(&model).unwrap();
        let restored = univsa::load_model(&bytes).unwrap();
        prop_assert_eq!(&restored, &model);
        prop_assert_eq!(
            restored.infer(&case.values).unwrap(),
            model.infer(&case.values).unwrap()
        );
    }

    #[test]
    fn similarity_totals_bounded_by_dimension(case in arb_case()) {
        let model = random_model(&case);
        let trace = model.trace(&case.values).unwrap();
        let bound = (case.config.vsa_dim() * model.class_sets().len()) as i64;
        for &t in &trace.totals {
            prop_assert!(t.abs() <= bound);
        }
    }

    #[test]
    fn rate_zero_faults_are_identity(case in arb_case()) {
        let model = random_model(&case);
        for fm in [
            FaultModel::BitFlip { rate: 0.0 },
            FaultModel::StuckAt0 { rate: 0.0 },
            FaultModel::StuckAt1 { rate: 0.0 },
            FaultModel::WordBurst { bursts: 0 },
        ] {
            let spec = FaultSpec { model: fm, target: FaultTarget::All, seed: case.seed };
            let outcome = spec.inject(&model).unwrap();
            prop_assert_eq!(outcome.disturbed_bits, 0);
            prop_assert_eq!(&outcome.model, &model);
            prop_assert!(outcome.model.verify_integrity(&model.integrity()).is_clean());
        }
    }

    #[test]
    fn v1_and_v2_containers_roundtrip_identically(case in arb_case()) {
        let model = random_model(&case);
        let v1 = univsa::save_model_v1(&model).unwrap();
        let v2 = univsa::save_model(&model).unwrap();
        prop_assert_ne!(&v1, &v2);
        let from_v1 = univsa::load_model(&v1).unwrap();
        let from_v2 = univsa::load_model(&v2).unwrap();
        prop_assert_eq!(&from_v1, &model);
        prop_assert_eq!(&from_v1, &from_v2);
    }

    #[test]
    fn tmr_repair_is_exact_with_one_corrupted_copy(
        case in arb_case(),
        corrupted_slot in 0usize..3,
        bursts in 1usize..5,
    ) {
        let model = random_model(&case);
        let spec = FaultSpec {
            model: FaultModel::WordBurst { bursts },
            target: FaultTarget::All,
            seed: case.seed ^ 0xDEAD,
        };
        let copies: Vec<UniVsaModel> = (0..3)
            .map(|slot| {
                if slot == corrupted_slot {
                    spec.inject(&model).unwrap().model
                } else {
                    model.clone()
                }
            })
            .collect();
        let repaired = UniVsaModel::repair_from_copies(&copies).unwrap();
        prop_assert_eq!(&repaired, &model);
        prop_assert!(repaired.verify_integrity(&model.integrity()).is_clean());
    }
}
