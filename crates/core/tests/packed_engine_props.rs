//! Property-based bit-identity suite for the compiled packed inference
//! engine: on arbitrary models and inputs, [`PackedModel`] must produce
//! the same predictions *and* the same summed similarity totals as the
//! reference stage-by-stage path — at every SIMD dispatch tier the host
//! can run, not just the one `kernels::active()` picked.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use univsa::{Enhancements, Mask, PackedModel, UniVsaConfig, UniVsaModel};
use univsa_bits::{kernels::KernelTier, BitMatrix};
use univsa_data::TaskSpec;

#[derive(Debug, Clone)]
struct Case {
    config: UniVsaConfig,
    seed: u64,
    samples: Vec<Vec<u8>>,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        2usize..6,     // width
        3usize..7,     // length
        2usize..5,     // classes
        1usize..9,     // d_h
        1usize..5,     // voters
        2usize..9,     // out_channels
        0u64..1000,    // seed
        any::<bool>(), // dvp
        any::<bool>(), // biconv
        any::<bool>(), // soft voting
    )
        .prop_flat_map(|(w, l, c, d_h, voters, o, seed, dvp, biconv, sv)| {
            let levels = 8usize;
            let spec = TaskSpec {
                name: "prop".into(),
                width: w,
                length: l,
                classes: c,
                levels,
            };
            let d_k = if w.min(l) >= 3 { 3 } else { 1 };
            let config = UniVsaConfig::for_task(&spec)
                .d_h(d_h)
                .d_l(1.max(d_h / 2))
                .d_k(d_k)
                .out_channels(o)
                .voters(voters)
                .enhancements(Enhancements {
                    dvp,
                    biconv,
                    soft_voting: sv,
                })
                .build()
                .expect("generated config is valid");
            let n = w * l;
            proptest::collection::vec(proptest::collection::vec(0u8..levels as u8, n), 1usize..5)
                .prop_map(move |samples| Case {
                    config: config.clone(),
                    seed,
                    samples,
                })
        })
}

fn random_model(case: &Case) -> UniVsaModel {
    let cfg = &case.config;
    let mut rng = StdRng::seed_from_u64(case.seed);
    let mask = if cfg.enhancements.dvp {
        Mask::from_bits((0..cfg.features()).map(|_| rng.gen::<bool>()).collect())
    } else {
        Mask::all_high(cfg.features())
    };
    let v_h = BitMatrix::random(cfg.levels, cfg.d_h, &mut rng);
    let v_l = BitMatrix::random(cfg.levels, cfg.effective_d_l(), &mut rng);
    let kernel = if cfg.enhancements.biconv {
        // deliberately unmasked words: the compiler must absorb the
        // channel mask without changing any decision
        (0..cfg.out_channels * cfg.d_k * cfg.d_k)
            .map(|_| rng.gen::<u64>())
            .collect()
    } else {
        vec![]
    };
    let f = BitMatrix::random(cfg.encoding_channels(), cfg.vsa_dim(), &mut rng);
    let c = (0..cfg.effective_voters())
        .map(|_| BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng))
        .collect();
    UniVsaModel::from_parts(cfg.clone(), mask, v_h, v_l, kernel, f, c)
        .expect("random parts are consistent")
}

/// Every tier the host CPU can actually execute (portable always can).
fn runnable_tiers() -> Vec<KernelTier> {
    KernelTier::ALL
        .iter()
        .copied()
        .filter(|t| t.is_available())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_engine_is_bit_identical_at_every_tier(case in arb_case()) {
        let model = random_model(&case);
        for tier in runnable_tiers() {
            let packed = PackedModel::compile_with_kernel(&model, tier);
            for values in &case.samples {
                let reference = model.trace(values).unwrap();
                let lowered = packed.infer_detailed(values).unwrap();
                prop_assert_eq!(
                    lowered.label, reference.label,
                    "label diverged at tier {}", tier
                );
                prop_assert_eq!(
                    &lowered.totals, &reference.totals,
                    "similarity totals diverged at tier {}", tier
                );
            }
        }
    }

    #[test]
    fn batch_api_matches_serial_inference(case in arb_case()) {
        let model = random_model(&case);
        let packed = PackedModel::compile(&model);
        let batch = packed.infer_batch(&case.samples).unwrap();
        prop_assert_eq!(batch.len(), case.samples.len());
        for (values, label) in case.samples.iter().zip(&batch) {
            prop_assert_eq!(*label, model.infer(values).unwrap());
        }
    }

    #[test]
    fn artifact_round_trip_preserves_predictions(case in arb_case()) {
        let model = random_model(&case);
        let packed = PackedModel::compile(&model);
        let bytes = univsa::save_packed(&packed).unwrap();
        prop_assert!(univsa::is_packed_artifact(&bytes));
        let restored = univsa::load_packed(&bytes).unwrap();
        for values in &case.samples {
            prop_assert_eq!(
                restored.infer(values).unwrap(),
                model.infer(values).unwrap()
            );
        }
    }
}
