//! Fixed-bucket latency histogram.

/// Upper bucket bounds in nanoseconds (inclusive), covering 1 µs … 60 s in
/// a 1-2-5 progression; values above the last bound land in the overflow
/// bucket. The bounds are compile-time constants so every histogram in a
/// process shares one layout and merging is index-wise addition.
pub const BUCKET_BOUNDS_NS: [u64; 24] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    30_000_000_000,
    60_000_000_000,
];

/// A fixed-bucket histogram of durations (nanoseconds). Buckets follow
/// [`BUCKET_BOUNDS_NS`] plus one overflow bucket; exact `count`/`sum`/
/// `min`/`max` ride alongside so means stay precise even though
/// percentiles are bucket-resolution estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKET_BOUNDS_NS.len() + 1],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Index of the bucket a value falls into (last index = overflow).
    pub fn bucket_index(value_ns: u64) -> usize {
        BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| value_ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len())
    }

    /// Records one duration.
    pub fn record(&mut self, value_ns: u64) {
        self.counts[Self::bucket_index(value_ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(value_ns);
        self.min_ns = self.min_ns.min(value_ns);
        self.max_ns = self.max_ns.max(value_ns);
    }

    /// Total recorded observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket observation counts (overflow last).
    #[inline]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Exact sum of all observations, in nanoseconds.
    #[inline]
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Exact mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Largest observation (`None` when empty).
    pub fn max_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ns)
    }

    /// Merges another histogram into this one: buckets add index-wise
    /// (every histogram shares the [`BUCKET_BOUNDS_NS`] layout), exact
    /// `count`/`sum` add, and `min`/`max` fold. Merging an empty
    /// histogram is a no-op (its `u64::MAX` min sentinel folds away).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Bucket-resolution percentile estimate: the upper bound of the
    /// bucket containing the `q`-quantile observation (clamped to the
    /// exact max for the overflow bucket). `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile_ns(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        // rank of the q-quantile observation, 1-based
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(self.max_ns);
                return Some(bound.min(self.max_ns));
            }
        }
        Some(self.max_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        // exactly on a bound -> that bucket; one past -> the next
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1_000), 0);
        assert_eq!(Histogram::bucket_index(1_001), 1);
        assert_eq!(Histogram::bucket_index(2_000), 1);
        assert_eq!(Histogram::bucket_index(5_000), 2);
        assert_eq!(Histogram::bucket_index(1_000_000), 9);
        assert_eq!(Histogram::bucket_index(60_000_000_000), 23);
        // past the last bound -> overflow bucket
        assert_eq!(Histogram::bucket_index(60_000_000_001), 24);
        assert_eq!(Histogram::bucket_index(u64::MAX), 24);
    }

    #[test]
    fn bounds_strictly_increase() {
        for pair in BUCKET_BOUNDS_NS.windows(2) {
            assert!(pair[0] < pair[1], "bounds must increase: {pair:?}");
        }
    }

    #[test]
    fn record_updates_exact_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), None);
        assert_eq!(h.percentile_ns(0.5), None);
        h.record(1_500);
        h.record(900);
        h.record(7_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 9_400);
        assert_eq!(h.min_ns(), Some(900));
        assert_eq!(h.max_ns(), Some(7_000));
        assert!((h.mean_ns() - 9_400.0 / 3.0).abs() < 1e-9);
        // buckets: 900 -> 0, 1_500 -> 1, 7_000 -> 3
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.bucket_counts()[3], 1);
    }

    #[test]
    fn percentile_is_bucket_resolution() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1_500); // bucket (1µs, 2µs]
        }
        h.record(400_000); // bucket (200µs, 500µs]
        assert_eq!(h.percentile_ns(0.5), Some(2_000));
        // the p100 observation sits in the 500µs bucket, clamped to max
        assert_eq!(h.percentile_ns(1.0), Some(400_000));
    }

    #[test]
    fn overflow_percentile_clamps_to_max() {
        let mut h = Histogram::new();
        h.record(90_000_000_000);
        assert_eq!(h.bucket_counts()[BUCKET_BOUNDS_NS.len()], 1);
        assert_eq!(h.percentile_ns(0.5), Some(90_000_000_000));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn percentile_rejects_bad_quantile() {
        Histogram::new().percentile_ns(1.5);
    }

    #[test]
    fn merge_adds_buckets_and_folds_extremes() {
        let mut a = Histogram::new();
        a.record(1_500);
        a.record(900);
        let mut b = Histogram::new();
        b.record(7_000);
        b.record(400_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum_ns(), 1_500 + 900 + 7_000 + 400_000);
        assert_eq!(a.min_ns(), Some(900));
        assert_eq!(a.max_ns(), Some(400_000));
        assert_eq!(a.bucket_counts()[0], 1); // 900
        assert_eq!(a.bucket_counts()[1], 1); // 1_500
        assert_eq!(a.bucket_counts()[3], 1); // 7_000
        assert_eq!(a.bucket_counts()[8], 1); // 400_000
                                             // merging must equal recording the union directly
        let mut direct = Histogram::new();
        for v in [1_500, 900, 7_000, 400_000] {
            direct.record(v);
        }
        assert_eq!(a, direct);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        a.record(2_500);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before, "merging an empty histogram changes nothing");
        // the empty side's u64::MAX min sentinel must not leak through
        assert_eq!(a.min_ns(), Some(2_500));
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn merge_preserves_upper_edge_percentile() {
        // p100 must clamp to the merged exact max, including when the
        // max lives in the overflow bucket of only one side
        let mut a = Histogram::new();
        for _ in 0..10 {
            a.record(1_500);
        }
        let mut b = Histogram::new();
        b.record(90_000_000_000); // overflow bucket
        a.merge(&b);
        assert_eq!(a.percentile_ns(1.0), Some(90_000_000_000));
        assert_eq!(a.percentile_ns(0.5), Some(2_000));
        // and merging the other direction agrees
        let mut c = Histogram::new();
        c.record(90_000_000_000);
        let mut d = Histogram::new();
        for _ in 0..10 {
            d.record(1_500);
        }
        c.merge(&d);
        assert_eq!(c.percentile_ns(1.0), Some(90_000_000_000));
    }
}
