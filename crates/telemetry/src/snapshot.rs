//! Point-in-time registry snapshots and their JSON rendering — the body
//! the live exporter serves at `/snapshot.json` and the wire format
//! `univsa top` polls.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::Histogram;
use crate::mem::MemStats;
use crate::quality::QualityStats;
use crate::registry::{write_json_string, MemAgg};

/// Schema identifier embedded in every snapshot JSON document, bumped on
/// breaking layout changes so pollers can refuse mismatched servers.
/// v2 added the `quality` section (margin sketch, per-class prediction
/// counts, confusion/calibration).
pub const SNAPSHOT_SCHEMA: &str = "univsa-metrics/v2";

/// A consistent point-in-time copy of a registry's aggregates, taken
/// under one lock acquisition by [`crate::Registry::snapshot`]. All maps
/// are `BTreeMap`s, so iteration (and the JSON rendering) is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Nanoseconds since the registry was created.
    pub uptime_ns: u64,
    /// The process-global allocation ledger, sampled with the aggregates.
    pub mem: MemStats,
    /// All monotonic counters, including the fleet's `worker.<slot>.*`
    /// and `fleet.*` rollups.
    pub counters: BTreeMap<String, u64>,
    /// All latency histograms, keyed `layer.name`.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-span allocation aggregates (empty unless memory tracking was
    /// on while spans closed).
    pub mem_aggregates: BTreeMap<String, MemAgg>,
    /// Prediction-quality aggregates (margin sketch, per-class counts,
    /// confusion), including fleet-merged worker contributions.
    pub quality: QualityStats,
}

impl Snapshot {
    /// An empty snapshot (what a just-created registry would return).
    pub fn empty() -> Self {
        Self {
            uptime_ns: 0,
            mem: MemStats::default(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            mem_aggregates: BTreeMap::new(),
            quality: QualityStats::default(),
        }
    }

    /// Renders the snapshot as one JSON document (schema
    /// [`SNAPSHOT_SCHEMA`]). Histograms carry exact count/sum/min/max,
    /// the bucket-resolution p50/p90/p99 estimates, and the raw
    /// per-bucket counts (overflow last) so pollers can compute their own
    /// delta percentiles via [`Histogram::merge`]-style arithmetic.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"uptime_ns\":{},",
            self.uptime_ns
        );
        let _ = write!(
            out,
            "\"mem\":{{\"live_bytes\":{},\"peak_bytes\":{},\"alloc_count\":{},\"dealloc_count\":{}}},",
            self.mem.live_bytes, self.mem.peak_bytes, self.mem.alloc_count, self.mem.dealloc_count
        );
        out.push_str("\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"buckets\":[",
                h.count(),
                h.sum_ns(),
                h.min_ns().unwrap_or(0),
                h.max_ns().unwrap_or(0),
                h.mean_ns() as u64,
                h.percentile_ns(0.5).unwrap_or(0),
                h.percentile_ns(0.9).unwrap_or(0),
                h.percentile_ns(0.99).unwrap_or(0),
            );
            for (j, c) in h.bucket_counts().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        out.push_str("},\"mem_spans\":{");
        for (i, (name, agg)) in self.mem_aggregates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            let _ = write!(
                out,
                ":{{\"spans\":{},\"net_bytes\":{},\"alloc_count\":{},\"max_peak_bytes\":{}}}",
                agg.spans, agg.net_bytes, agg.alloc_count, agg.max_peak_bytes
            );
        }
        out.push_str("},\"quality\":{\"task\":");
        match &self.quality.task {
            Some(task) => write_json_string(&mut out, task),
            None => out.push_str("null"),
        }
        let m = &self.quality.margins;
        let _ = write!(
            out,
            ",\"margin\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            m.count(),
            m.sum(),
            m.min().unwrap_or(0),
            m.max().unwrap_or(0),
            m.mean() as u64,
            m.quantile(0.5).unwrap_or(0),
            m.quantile(0.9).unwrap_or(0),
            m.quantile(0.99).unwrap_or(0),
        );
        for (j, c) in m.bucket_counts().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        out.push_str("]},\"predictions\":{");
        for (i, (class, n)) in self.quality.predictions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, class);
            let _ = write!(out, ":{n}");
        }
        let c = &self.quality.confusion;
        let _ = write!(
            out,
            "}},\"confusion\":{{\"labeled\":{},\"correct\":{},\"accuracy\":",
            c.labeled(),
            c.correct()
        );
        match c.accuracy() {
            Some(acc) => {
                let _ = write!(out, "{acc}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"calibration_gap\":");
        match c.calibration_gap() {
            Some(gap) => {
                let _ = write!(out, "{gap}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"pairs\":[");
        for (i, (&(truth, predicted), &n)) in c.pairs().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{truth},{predicted},{n}]");
        }
        out.push_str("]}}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_renders_schema_and_empty_maps() {
        let json = Snapshot::empty().to_json();
        assert!(json.contains("\"schema\":\"univsa-metrics/v2\""), "{json}");
        assert!(json.contains("\"counters\":{}"), "{json}");
        assert!(json.contains("\"histograms\":{}"), "{json}");
        assert!(json.contains("\"mem_spans\":{}"), "{json}");
        assert!(json.contains("\"quality\":{\"task\":null"), "{json}");
        assert!(json.contains("\"predictions\":{}"), "{json}");
        assert!(json.contains("\"accuracy\":null"), "{json}");
    }

    #[test]
    fn quality_section_renders_sketch_predictions_and_confusion() {
        let mut snap = Snapshot::empty();
        snap.quality.task = Some("har".into());
        snap.quality.record_prediction(1, 40);
        snap.quality.record_prediction(1, 60);
        snap.quality.record_prediction(0, 0);
        snap.quality.record_outcome(1, 1, 40);
        snap.quality.record_outcome(0, 1, 60);
        let json = snap.to_json();
        assert!(json.contains("\"task\":\"har\""), "{json}");
        assert!(json.contains("\"margin\":{\"count\":3,\"sum\":100"), "{json}");
        assert!(json.contains("\"predictions\":{\"0\":1,\"1\":2}"), "{json}");
        assert!(json.contains("\"labeled\":2,\"correct\":1"), "{json}");
        assert!(json.contains("\"accuracy\":0.5"), "{json}");
        assert!(json.contains("[0,1,1]"), "{json}");
        // 18 margin bucket entries: 17 bounds + overflow
        let buckets = json
            .split("\"margin\":")
            .nth(1)
            .unwrap()
            .split("\"buckets\":[")
            .nth(1)
            .unwrap();
        let list = &buckets[..buckets.find(']').unwrap()];
        assert_eq!(list.split(',').count(), crate::MARGIN_BUCKETS);
    }

    #[test]
    fn snapshot_json_carries_counters_and_histogram_stats() {
        let mut snap = Snapshot::empty();
        snap.uptime_ns = 42;
        snap.counters.insert("fleet.jobs".into(), 9);
        let mut h = Histogram::new();
        h.record(1_500);
        h.record(7_000);
        snap.histograms.insert("train.epoch".into(), h);
        snap.mem_aggregates.insert(
            "train.epoch".into(),
            MemAgg {
                spans: 2,
                net_bytes: -64,
                alloc_count: 5,
                max_peak_bytes: 4096,
            },
        );
        let json = snap.to_json();
        assert!(json.contains("\"uptime_ns\":42"), "{json}");
        assert!(json.contains("\"fleet.jobs\":9"), "{json}");
        assert!(json.contains("\"count\":2"), "{json}");
        assert!(json.contains("\"sum_ns\":8500"), "{json}");
        assert!(json.contains("\"min_ns\":1500"), "{json}");
        assert!(json.contains("\"max_ns\":7000"), "{json}");
        assert!(json.contains("\"net_bytes\":-64"), "{json}");
        // 25 bucket entries: 24 bounds + overflow
        let buckets = json.split("\"buckets\":[").nth(1).unwrap();
        let list = &buckets[..buckets.find(']').unwrap()];
        assert_eq!(list.split(',').count(), crate::BUCKET_BOUNDS_NS.len() + 1);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let mut a = Snapshot::empty();
        a.counters.insert("zulu".into(), 1);
        a.counters.insert("alpha".into(), 2);
        let mut b = Snapshot::empty();
        b.counters.insert("alpha".into(), 2);
        b.counters.insert("zulu".into(), 1);
        assert_eq!(a.to_json(), b.to_json());
        let alpha = a.to_json().find("alpha").unwrap();
        let zulu = a.to_json().find("zulu").unwrap();
        assert!(alpha < zulu, "keys render sorted");
    }
}
