//! Point-in-time registry snapshots and their JSON rendering — the body
//! the live exporter serves at `/snapshot.json` and the wire format
//! `univsa top` polls.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::Histogram;
use crate::mem::MemStats;
use crate::registry::{write_json_string, MemAgg};

/// Schema identifier embedded in every snapshot JSON document, bumped on
/// breaking layout changes so pollers can refuse mismatched servers.
pub const SNAPSHOT_SCHEMA: &str = "univsa-metrics/v1";

/// A consistent point-in-time copy of a registry's aggregates, taken
/// under one lock acquisition by [`crate::Registry::snapshot`]. All maps
/// are `BTreeMap`s, so iteration (and the JSON rendering) is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Nanoseconds since the registry was created.
    pub uptime_ns: u64,
    /// The process-global allocation ledger, sampled with the aggregates.
    pub mem: MemStats,
    /// All monotonic counters, including the fleet's `worker.<slot>.*`
    /// and `fleet.*` rollups.
    pub counters: BTreeMap<String, u64>,
    /// All latency histograms, keyed `layer.name`.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-span allocation aggregates (empty unless memory tracking was
    /// on while spans closed).
    pub mem_aggregates: BTreeMap<String, MemAgg>,
}

impl Snapshot {
    /// An empty snapshot (what a just-created registry would return).
    pub fn empty() -> Self {
        Self {
            uptime_ns: 0,
            mem: MemStats::default(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            mem_aggregates: BTreeMap::new(),
        }
    }

    /// Renders the snapshot as one JSON document (schema
    /// [`SNAPSHOT_SCHEMA`]). Histograms carry exact count/sum/min/max,
    /// the bucket-resolution p50/p90/p99 estimates, and the raw
    /// per-bucket counts (overflow last) so pollers can compute their own
    /// delta percentiles via [`Histogram::merge`]-style arithmetic.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"uptime_ns\":{},",
            self.uptime_ns
        );
        let _ = write!(
            out,
            "\"mem\":{{\"live_bytes\":{},\"peak_bytes\":{},\"alloc_count\":{},\"dealloc_count\":{}}},",
            self.mem.live_bytes, self.mem.peak_bytes, self.mem.alloc_count, self.mem.dealloc_count
        );
        out.push_str("\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"buckets\":[",
                h.count(),
                h.sum_ns(),
                h.min_ns().unwrap_or(0),
                h.max_ns().unwrap_or(0),
                h.mean_ns() as u64,
                h.percentile_ns(0.5).unwrap_or(0),
                h.percentile_ns(0.9).unwrap_or(0),
                h.percentile_ns(0.99).unwrap_or(0),
            );
            for (j, c) in h.bucket_counts().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        out.push_str("},\"mem_spans\":{");
        for (i, (name, agg)) in self.mem_aggregates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            let _ = write!(
                out,
                ":{{\"spans\":{},\"net_bytes\":{},\"alloc_count\":{},\"max_peak_bytes\":{}}}",
                agg.spans, agg.net_bytes, agg.alloc_count, agg.max_peak_bytes
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_renders_schema_and_empty_maps() {
        let json = Snapshot::empty().to_json();
        assert!(json.contains("\"schema\":\"univsa-metrics/v1\""), "{json}");
        assert!(json.contains("\"counters\":{}"), "{json}");
        assert!(json.contains("\"histograms\":{}"), "{json}");
        assert!(json.contains("\"mem_spans\":{}"), "{json}");
    }

    #[test]
    fn snapshot_json_carries_counters_and_histogram_stats() {
        let mut snap = Snapshot::empty();
        snap.uptime_ns = 42;
        snap.counters.insert("fleet.jobs".into(), 9);
        let mut h = Histogram::new();
        h.record(1_500);
        h.record(7_000);
        snap.histograms.insert("train.epoch".into(), h);
        snap.mem_aggregates.insert(
            "train.epoch".into(),
            MemAgg {
                spans: 2,
                net_bytes: -64,
                alloc_count: 5,
                max_peak_bytes: 4096,
            },
        );
        let json = snap.to_json();
        assert!(json.contains("\"uptime_ns\":42"), "{json}");
        assert!(json.contains("\"fleet.jobs\":9"), "{json}");
        assert!(json.contains("\"count\":2"), "{json}");
        assert!(json.contains("\"sum_ns\":8500"), "{json}");
        assert!(json.contains("\"min_ns\":1500"), "{json}");
        assert!(json.contains("\"max_ns\":7000"), "{json}");
        assert!(json.contains("\"net_bytes\":-64"), "{json}");
        // 25 bucket entries: 24 bounds + overflow
        let buckets = json.split("\"buckets\":[").nth(1).unwrap();
        let list = &buckets[..buckets.find(']').unwrap()];
        assert_eq!(list.split(',').count(), crate::BUCKET_BOUNDS_NS.len() + 1);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let mut a = Snapshot::empty();
        a.counters.insert("zulu".into(), 1);
        a.counters.insert("alpha".into(), 2);
        let mut b = Snapshot::empty();
        b.counters.insert("alpha".into(), 2);
        b.counters.insert("zulu".into(), 1);
        assert_eq!(a.to_json(), b.to_json());
        let alpha = a.to_json().find("alpha").unwrap();
        let zulu = a.to_json().find("zulu").unwrap();
        assert!(alpha < zulu, "keys render sorted");
    }
}
