//! Compact binary codec for worker-side telemetry batches.
//!
//! A fleet worker accumulates spans, counters, and allocation deltas in
//! its own (process-local) registry and periodically drains them into a
//! [`WorkerBatch`], which travels back to the supervisor as an opaque
//! byte string inside one IPC message. The codec mirrors the dist
//! crate's framing discipline: fixed-width little-endian fields,
//! `u32`-length-prefixed strings, and a **total** decoder — every
//! malformed input maps to `Err(String)`, never a panic or an oversized
//! allocation — because the batch crosses the same untrusted pipe the
//! chaos harness corrupts.
//!
//! Timestamps in a batch are nanoseconds since the *worker's* registry
//! epoch; the supervisor aligns them onto its own timeline using the
//! clock offset it estimated during the ping/pong handshake (see the
//! dist crate's supervisor).

use crate::quality::{CalibrationBin, QualityStats};

/// Codec version stamped on every encoded batch. Version 2 appended the
/// quality-stats section; version-1 batches (no quality payload) still
/// decode, so a fleet can mix old workers with a new supervisor.
const VERSION: u8 = 2;

/// One completed span captured inside a worker process.
///
/// Ids (and parent ids) are only unique within the worker's own
/// registry; the supervisor re-maps them into its id space when
/// absorbing the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSpan {
    /// Span id in the worker's id space.
    pub id: u64,
    /// Causal parent in the worker's id space, if any.
    pub parent: Option<u64>,
    /// Lane label the span was recorded on (usually `main`).
    pub lane: String,
    /// Layer label (`worker`, `infer`, …).
    pub layer: String,
    /// Span name within the layer.
    pub name: String,
    /// Nanoseconds since the worker's registry epoch at span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Everything a worker forwards in one flush: spans, counters, and
/// allocation statistics since the previous flush.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerBatch {
    /// Nanoseconds since the worker's registry epoch when the batch was
    /// drained (lets the supervisor sanity-check its offset estimate).
    pub clock_ns: u64,
    /// Events the worker's flight recorder dropped after filling up.
    pub dropped: u64,
    /// Net heap bytes (allocated − freed) since the previous flush.
    pub net_bytes: i64,
    /// Allocations made since the previous flush.
    pub alloc_count: u64,
    /// The worker process's peak live heap bytes so far (absolute, not
    /// a delta — the supervisor folds it in with `max`).
    pub peak_bytes: u64,
    /// Counter deltas accumulated since the previous flush.
    pub counters: Vec<(String, u64)>,
    /// Spans completed since the previous flush.
    pub spans: Vec<WorkerSpan>,
    /// Prediction-quality stats accumulated since the previous flush
    /// (codec v2; decodes empty from a v1 batch).
    pub quality: QualityStats,
}

impl WorkerBatch {
    /// Whether the batch carries any information worth shipping.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.spans.is_empty()
            && self.dropped == 0
            && self.net_bytes == 0
            && self.alloc_count == 0
            && self.peak_bytes == 0
            && self.quality.is_empty()
    }

    /// Serializes the batch into its compact binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.counters.len() * 24 + self.spans.len() * 64);
        out.push(VERSION);
        out.extend_from_slice(&self.clock_ns.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&self.net_bytes.to_le_bytes());
        out.extend_from_slice(&self.alloc_count.to_le_bytes());
        out.extend_from_slice(&self.peak_bytes.to_le_bytes());
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (name, value) in &self.counters {
            put_str(&mut out, name);
            out.extend_from_slice(&value.to_le_bytes());
        }
        out.extend_from_slice(&(self.spans.len() as u32).to_le_bytes());
        for span in &self.spans {
            out.extend_from_slice(&span.id.to_le_bytes());
            match span.parent {
                Some(parent) => {
                    out.push(1);
                    out.extend_from_slice(&parent.to_le_bytes());
                }
                None => out.push(0),
            }
            put_str(&mut out, &span.lane);
            put_str(&mut out, &span.layer);
            put_str(&mut out, &span.name);
            out.extend_from_slice(&span.start_ns.to_le_bytes());
            out.extend_from_slice(&span.dur_ns.to_le_bytes());
        }
        // v2 quality section
        let q = &self.quality;
        match &q.task {
            Some(task) => {
                out.push(1);
                put_str(&mut out, task);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&q.margins.count.to_le_bytes());
        out.extend_from_slice(&q.margins.sum.to_le_bytes());
        out.extend_from_slice(&q.margins.min.to_le_bytes());
        out.extend_from_slice(&q.margins.max.to_le_bytes());
        for c in &q.margins.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&(q.predictions.len() as u32).to_le_bytes());
        for (class, n) in &q.predictions {
            put_str(&mut out, class);
            out.extend_from_slice(&n.to_le_bytes());
        }
        out.extend_from_slice(&q.confusion.labeled.to_le_bytes());
        out.extend_from_slice(&q.confusion.correct.to_le_bytes());
        for bin in &q.confusion.bins {
            out.extend_from_slice(&bin.total.to_le_bytes());
            out.extend_from_slice(&bin.correct.to_le_bytes());
        }
        out.extend_from_slice(&(q.confusion.pairs.len() as u32).to_le_bytes());
        for (&(truth, predicted), &n) in &q.confusion.pairs {
            out.extend_from_slice(&truth.to_le_bytes());
            out.extend_from_slice(&predicted.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
        out
    }

    /// Deserializes a batch.
    ///
    /// # Errors
    ///
    /// A human-readable message for any malformed input: wrong version,
    /// truncated field, element count exceeding the remaining bytes
    /// (rejected *before* allocating), invalid UTF-8, or trailing
    /// garbage.
    pub fn decode(bytes: &[u8]) -> Result<WorkerBatch, String> {
        let mut r = Reader { bytes, pos: 0 };
        let version = r.u8()?;
        if version != 1 && version != VERSION {
            return Err(format!("unsupported telemetry batch version {version}"));
        }
        let clock_ns = r.u64()?;
        let dropped = r.u64()?;
        let net_bytes = r.i64()?;
        let alloc_count = r.u64()?;
        let peak_bytes = r.u64()?;
        // smallest possible encodings: an empty-named counter is 4+8
        // bytes, a parentless span with three empty strings is
        // 8+1+4+4+4+8+8 bytes
        let n_counters = r.count("counters", 12)?;
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            let name = r.string("counter name")?;
            counters.push((name, r.u64()?));
        }
        let n_spans = r.count("spans", 37)?;
        let mut spans = Vec::with_capacity(n_spans);
        for _ in 0..n_spans {
            let id = r.u64()?;
            let parent = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                other => return Err(format!("invalid parent flag {other}")),
            };
            spans.push(WorkerSpan {
                id,
                parent,
                lane: r.string("span lane")?,
                layer: r.string("span layer")?,
                name: r.string("span name")?,
                start_ns: r.u64()?,
                dur_ns: r.u64()?,
            });
        }
        let quality = if version >= 2 {
            let task = match r.u8()? {
                0 => None,
                1 => Some(r.string("quality task")?),
                other => return Err(format!("invalid quality task flag {other}")),
            };
            let mut margins = crate::quality::MarginSketch::new();
            margins.count = r.u64()?;
            margins.sum = r.u128()?;
            margins.min = r.u64()?;
            margins.max = r.u64()?;
            for c in margins.counts.iter_mut() {
                *c = r.u64()?;
            }
            let n_classes = r.count("quality classes", 12)?;
            let mut predictions = std::collections::BTreeMap::new();
            for _ in 0..n_classes {
                let class = r.string("quality class")?;
                predictions.insert(class, r.u64()?);
            }
            let mut confusion = crate::quality::Confusion::new();
            confusion.labeled = r.u64()?;
            confusion.correct = r.u64()?;
            for bin in confusion.bins.iter_mut() {
                *bin = CalibrationBin {
                    total: r.u64()?,
                    correct: r.u64()?,
                };
            }
            let n_pairs = r.count("confusion pairs", 16)?;
            for _ in 0..n_pairs {
                let truth = r.u32()?;
                let predicted = r.u32()?;
                confusion.pairs.insert((truth, predicted), r.u64()?);
            }
            QualityStats {
                task,
                margins,
                predictions,
                confusion,
            }
        } else {
            QualityStats::default()
        };
        if r.pos != r.bytes.len() {
            return Err(format!(
                "{} trailing bytes after telemetry batch",
                r.bytes.len() - r.pos
            ));
        }
        Ok(WorkerBatch {
            clock_ns,
            dropped,
            net_bytes,
            alloc_count,
            peak_bytes,
            counters,
            spans,
            quality,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err(format!(
                "telemetry batch truncated: needed {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an element count and rejects it if even minimally-sized
    /// elements could not fit in the remaining bytes — so a corrupted
    /// count cannot drive a huge `Vec::with_capacity`.
    fn count(&mut self, what: &str, min_element_bytes: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(min_element_bytes) > remaining {
            return Err(format!(
                "telemetry batch claims {n} {what} but only {remaining} bytes remain"
            ));
        }
        Ok(n)
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?.to_vec();
        String::from_utf8(raw).map_err(|_| format!("{what} field is not valid UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> WorkerBatch {
        WorkerBatch {
            clock_ns: 123_456_789,
            dropped: 2,
            net_bytes: -4096,
            alloc_count: 17,
            peak_bytes: 1 << 20,
            counters: vec![("jobs".into(), 3), ("busy_ns".into(), 9_999)],
            spans: vec![
                WorkerSpan {
                    id: 1,
                    parent: None,
                    lane: "main".into(),
                    layer: "worker".into(),
                    name: "task".into(),
                    start_ns: 10,
                    dur_ns: 500,
                },
                WorkerSpan {
                    id: 2,
                    parent: Some(1),
                    lane: "main".into(),
                    layer: "infer".into(),
                    name: "encoding".into(),
                    start_ns: 20,
                    dur_ns: 100,
                },
            ],
            quality: {
                let mut q = QualityStats {
                    task: Some("bci3v".into()),
                    ..QualityStats::default()
                };
                q.record_prediction(0, 12);
                q.record_prediction(2, 0);
                q.record_prediction(2, 70_000);
                q.record_outcome(2, 2, 70_000);
                q.record_outcome(1, 2, 0);
                q
            },
        }
    }

    #[test]
    fn batches_round_trip() {
        for batch in [WorkerBatch::default(), example()] {
            assert_eq!(WorkerBatch::decode(&batch.encode()).unwrap(), batch);
        }
    }

    #[test]
    fn empty_batch_knows_it_is_empty() {
        assert!(WorkerBatch::default().is_empty());
        assert!(!example().is_empty());
        let mem_only = WorkerBatch {
            alloc_count: 1,
            ..WorkerBatch::default()
        };
        assert!(!mem_only.is_empty());
    }

    #[test]
    fn every_truncation_is_an_error() {
        let full = example().encode();
        for cut in 0..full.len() {
            assert!(
                WorkerBatch::decode(&full[..cut]).is_err(),
                "cut to {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = example().encode();
        bytes.push(0);
        let err = WorkerBatch::decode(&bytes).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = example().encode();
        bytes[0] = 99;
        let err = WorkerBatch::decode(&bytes).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocating() {
        // header + a counter count of u32::MAX and nothing else
        let mut bytes = vec![VERSION];
        bytes.extend_from_slice(&[0u8; 40]); // clock/dropped/net/alloc/peak
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = WorkerBatch::decode(&bytes).unwrap_err();
        assert!(err.contains("bytes remain"), "{err}");
    }

    #[test]
    fn invalid_parent_flag_is_rejected() {
        let batch = WorkerBatch {
            spans: vec![WorkerSpan {
                id: 1,
                parent: None,
                lane: String::new(),
                layer: String::new(),
                name: String::new(),
                start_ns: 0,
                dur_ns: 0,
            }],
            ..WorkerBatch::default()
        };
        let mut bytes = batch.encode();
        // the parent flag sits after the 41-byte header, the (empty)
        // counter section's count, the span count, and the span id
        let flag_pos = 41 + 4 + 4 + 8;
        assert_eq!(bytes[flag_pos], 0);
        bytes[flag_pos] = 7;
        let err = WorkerBatch::decode(&bytes).unwrap_err();
        assert!(err.contains("parent flag"), "{err}");
    }

    #[test]
    fn version_one_batches_still_decode_with_empty_quality() {
        // hand-built v1 frame: header, one counter, no spans, no quality
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&77u64.to_le_bytes()); // clock_ns
        bytes.extend_from_slice(&1u64.to_le_bytes()); // dropped
        bytes.extend_from_slice(&(-8i64).to_le_bytes()); // net_bytes
        bytes.extend_from_slice(&3u64.to_le_bytes()); // alloc_count
        bytes.extend_from_slice(&4096u64.to_le_bytes()); // peak_bytes
        bytes.extend_from_slice(&1u32.to_le_bytes()); // counters
        put_str(&mut bytes, "jobs");
        bytes.extend_from_slice(&5u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // spans
        let batch = WorkerBatch::decode(&bytes).unwrap();
        assert_eq!(batch.clock_ns, 77);
        assert_eq!(batch.counters, vec![("jobs".to_string(), 5)]);
        assert!(batch.quality.is_empty());
        // a v1 frame with trailing garbage is still rejected
        bytes.push(0);
        assert!(WorkerBatch::decode(&bytes).unwrap_err().contains("trailing"));
    }

    #[test]
    fn quality_section_round_trips_exactly() {
        let batch = example();
        let decoded = WorkerBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded.quality, batch.quality);
        assert_eq!(decoded.quality.task.as_deref(), Some("bci3v"));
        assert_eq!(decoded.quality.margins.count(), 3);
        assert_eq!(decoded.quality.confusion.labeled(), 2);
        assert_eq!(decoded.quality.confusion.pairs()[&(1, 2)], 1);
    }

    #[test]
    fn invalid_quality_task_flag_is_rejected() {
        let batch = WorkerBatch::default();
        let mut bytes = batch.encode();
        // the task flag is the first byte of the quality section, right
        // after the header and the two (empty) counter/span counts
        let flag_pos = 41 + 4 + 4;
        assert_eq!(bytes[flag_pos], 0);
        bytes[flag_pos] = 9;
        let err = WorkerBatch::decode(&bytes).unwrap_err();
        assert!(err.contains("task flag"), "{err}");
    }
}
