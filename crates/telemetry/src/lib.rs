//! # univsa-telemetry
//!
//! Dependency-free observability for the UniVSA stack: wall-clock spans,
//! monotonic counters, and fixed-bucket latency histograms behind one
//! global, environment-gated registry.
//!
//! ## Gating
//!
//! The global registry is configured once, from `UNIVSA_TELEMETRY`:
//!
//! | value | behaviour |
//! |---|---|
//! | unset / `off` | everything is a no-op (one atomic load per call) |
//! | `summary` | aggregates kept in memory; [`flush`] prints a table to stderr |
//! | `jsonl:<path>` | every span/event appended to `<path>` as JSON lines |
//! | `trace:<path>` | causal flight recorder on; [`flush`] writes a Chrome trace to `<path>` |
//!
//! Instrumented hot paths (per-sample inference, per-epoch training, the
//! cycle-level hardware schedule) therefore cost nothing in production:
//! when the mode is `off` no clock is read and no lock is taken.
//!
//! ## Live metrics
//!
//! Independently of the sink mode, `UNIVSA_METRICS_ADDR=127.0.0.1:PORT`
//! (or [`start_exporter`]) spawns a background HTTP exporter serving
//! `/metrics` (Prometheus text), `/snapshot.json`, and `/healthz` from a
//! consistent registry [`Snapshot`]. When the variable is unset no
//! thread is spawned and no socket is opened.
//!
//! ## Usage
//!
//! ```
//! // a timed span: records a `layer.name` histogram entry on drop
//! {
//!     let _span = univsa_telemetry::span("train", "epoch").field("epoch", 3u64);
//!     // ... work ...
//! }
//! univsa_telemetry::counter("train.samples", 128);
//! univsa_telemetry::event("bench", "starting sweep", &[]);
//! univsa_telemetry::flush().unwrap();
//! ```
//!
//! Library code uses the free functions above (they hit the global
//! registry); tests construct private [`Registry`] instances directly so
//! they stay independent of the process environment.

// `deny` (not `forbid`) so the one module that must talk to the global
// allocator API can opt back in; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod exporter;
mod forward;
mod histogram;
mod mem;
pub mod prometheus;
mod quality;
mod registry;
mod snapshot;
mod trace;

pub use exporter::{live_server_count, MetricsServer, METRICS_ENV_VAR};
pub use forward::{WorkerBatch, WorkerSpan};
pub use histogram::{Histogram, BUCKET_BOUNDS_NS};
pub use mem::{
    absorb_worker_alloc, enable_mem_tracking, mem_stats, mem_tracking_enabled, reset_peak,
    suspend_attribution, AllocDelta, AllocMark, AttributionPause, CountingAllocator, MemStats,
};
pub use quality::{
    CalibrationBin, Confusion, DriftConfig, DriftDetector, DriftEvent, MarginSketch,
    QualityObserver, QualityStats, MARGIN_BUCKETS, MARGIN_BUCKET_BOUNDS,
};
pub use registry::{MemAgg, Mode, Registry, Span, TraceRegion, Value};
pub use snapshot::{Snapshot, SNAPSHOT_SCHEMA};
pub use trace::{
    chrome_trace_json, current_context, current_lane, enter_context, enter_lane, ContextGuard,
    CounterSample, LaneGuard, Recorder, TraceContext, TraceEvent, VirtualEvent, WorkerTraceEvent,
    DEFAULT_TRACE_CAPACITY,
};

use std::sync::OnceLock;
use std::time::Duration;

/// The environment variable gating the global registry.
pub const ENV_VAR: &str = "UNIVSA_TELEMETRY";

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Builds a registry from an `UNIVSA_TELEMETRY`-style value.
///
/// # Errors
///
/// Returns a user-facing message for an unrecognized mode or an
/// uncreatable JSONL path.
pub fn registry_from_spec(spec: &str) -> Result<Registry, String> {
    let spec = spec.trim();
    if spec.is_empty() || spec.eq_ignore_ascii_case("off") {
        return Ok(Registry::disabled());
    }
    if spec.eq_ignore_ascii_case("summary") {
        return Ok(Registry::summary());
    }
    if let Some(path) = spec.strip_prefix("jsonl:") {
        if path.is_empty() {
            return Err("jsonl mode needs a path: UNIVSA_TELEMETRY=jsonl:<path>".into());
        }
        return Registry::jsonl_file(path)
            .map_err(|e| format!("cannot open telemetry sink {path:?}: {e}"));
    }
    if let Some(path) = spec.strip_prefix("trace:") {
        if path.is_empty() {
            return Err("trace mode needs a path: UNIVSA_TELEMETRY=trace:<path>".into());
        }
        return Registry::trace_file(path)
            .map_err(|e| format!("cannot open trace sink {path:?}: {e}"));
    }
    Err(format!(
        "unrecognized {ENV_VAR} value {spec:?} (expected off | summary | jsonl:<path> | trace:<path>)"
    ))
}

/// The process-wide registry, initialized from [`ENV_VAR`] on first use.
/// A malformed value disables telemetry with one warning on stderr rather
/// than failing the host program.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(|| {
        let reg = match std::env::var(ENV_VAR) {
            Err(_) => Registry::disabled(),
            Ok(spec) => registry_from_spec(&spec).unwrap_or_else(|msg| {
                eprintln!("warning: telemetry disabled: {msg}");
                Registry::disabled()
            }),
        };
        // with telemetry on, spans also carry allocation deltas
        if reg.is_enabled() {
            mem::enable_mem_tracking();
        }
        reg
    })
}

/// Whether the global registry records anything (one atomic load).
#[inline]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Opens a timed span on the global registry (inert when telemetry is
/// off). The span records a `layer.name` latency histogram entry — and in
/// JSONL mode one line — when dropped.
#[must_use = "a span measures until it is dropped"]
pub fn span(layer: &'static str, name: &'static str) -> Span<'static> {
    global().span(layer, name)
}

/// Adds `delta` to a named counter on the global registry.
pub fn counter(name: &str, delta: u64) {
    global().counter(name, delta);
}

/// Raises a named counter on the global registry to at least `value`
/// (the high-water-mark shape; see [`Registry::counter_max`]).
pub fn counter_max(name: &str, value: u64) {
    global().counter_max(name, value);
}

/// Value of a counter on the global registry (0 when never written).
pub fn counter_value(name: &str) -> u64 {
    global().counter_value(name)
}

/// Records one prediction (winning class + similarity margin) into the
/// global quality stats (see [`Registry::record_prediction`]).
pub fn record_prediction(class: u32, margin: u64) {
    global().record_prediction(class, margin);
}

/// Records one labelled prediction outcome into the global quality stats
/// (see [`Registry::record_outcome`]).
pub fn record_outcome(truth: u32, predicted: u32, margin: u64) {
    global().record_outcome(truth, predicted, margin);
}

/// Declares the task the global quality stream belongs to (first
/// declaration wins).
pub fn set_quality_task(task: &str) {
    global().set_quality_task(task);
}

/// A clone of the global registry's aggregated quality stats.
pub fn quality() -> QualityStats {
    global().quality()
}

/// Reports one drift detection on the global registry: bumps the
/// `quality.drift_detected` counter and emits a point-in-time event
/// carrying the sample index and measured divergence, so the detection
/// shows up on `/metrics`, in JSONL sinks, and in causal traces alike.
pub fn drift_detected(event: &DriftEvent) {
    counter("quality.drift_detected", 1);
    global().event(
        "quality",
        "drift detected",
        &[
            ("sample", Value::U64(event.sample_index)),
            ("divergence", Value::F64(event.divergence)),
        ],
    );
}

/// Nanoseconds since the global registry was created (the clock worker
/// telemetry batches and fleet handshake offsets are expressed in).
pub fn clock_ns() -> u64 {
    global().clock_ns()
}

/// Drains the global registry's accumulated counters and spans into a
/// forwardable [`WorkerBatch`] (see [`Registry::take_worker_batch`]).
pub fn take_worker_batch() -> WorkerBatch {
    global().take_worker_batch()
}

/// Merges a fleet worker's forwarded batch into the global registry
/// (see [`Registry::absorb_worker_batch`]).
pub fn absorb_worker_batch(
    slot: u32,
    batch: &WorkerBatch,
    clock_offset_ns: i64,
    parent: Option<u64>,
) {
    global().absorb_worker_batch(slot, batch, clock_offset_ns, parent);
}

/// Records a duration into a named histogram on the global registry.
pub fn record_duration(name: &str, duration: Duration) {
    global().record_duration(name, duration);
}

/// Records an already-measured span on the global registry.
pub fn record_span(
    layer: &'static str,
    name: &'static str,
    duration: Duration,
    fields: &[(&'static str, Value)],
) {
    global().record_span(layer, name, duration, fields);
}

/// Records an already-measured span carrying allocation deltas (the
/// rolling-timer shape of the staged inference path: the caller laps one
/// [`AllocMark`] alongside its [`std::time::Instant`]).
pub fn record_span_mem(
    layer: &'static str,
    name: &'static str,
    duration: Duration,
    fields: &[(&'static str, Value)],
    mem: AllocDelta,
) {
    global().record_span_mem(layer, name, duration, fields, mem);
}

/// Per-span-name allocation aggregates from the global registry (the
/// `univsa profile --mem` table), keyed `layer.name`.
pub fn mem_aggregates() -> Vec<(String, MemAgg)> {
    global().mem_aggregates()
}

/// Emits a point-in-time event on the global registry.
pub fn event(layer: &'static str, message: &str, fields: &[(&'static str, Value)]) {
    global().event(layer, message, fields);
}

/// Whether the global causal flight recorder is collecting (one atomic
/// load).
#[inline]
pub fn trace_enabled() -> bool {
    global().is_tracing()
}

/// Switches the global causal flight recorder on, bounded to `capacity`
/// retained events (see [`Registry::enable_tracing`]).
pub fn enable_tracing(capacity: usize) {
    global().enable_tracing(capacity);
}

/// Stops the global flight recorder and returns everything it held.
pub fn take_recorder() -> Recorder {
    global().take_recorder()
}

/// Opens a trace-only region on the global registry: flight recorder
/// only, no histogram/JSONL traffic. Inert and free when tracing is off.
#[must_use = "a region measures until it is dropped"]
pub fn trace_region(layer: &'static str, name: &'static str) -> TraceRegion<'static> {
    global().trace_region(layer, name)
}

/// Records a virtual-time event (tick clock, e.g. hardware cycles) on the
/// global registry. No-op when tracing is off.
pub fn virtual_span(
    track: &str,
    name: &str,
    start: u64,
    dur: u64,
    fields: &[(&'static str, Value)],
) {
    global().virtual_span(track, name, start, dur, fields);
}

/// Writes the global flight recorder's contents to `path` as Chrome
/// trace-event JSON (recording continues).
///
/// # Errors
///
/// Propagates I/O errors from writing the file.
pub fn export_chrome_trace(path: &str) -> std::io::Result<()> {
    std::fs::write(path, global().chrome_trace_json())
}

/// Flushes the global registry (writes JSONL aggregates / prints the
/// summary table).
///
/// # Errors
///
/// Propagates I/O errors from the JSONL sink.
pub fn flush() -> std::io::Result<()> {
    global().flush()
}

/// Upgrades the global registry from off to silent in-memory aggregation
/// (see [`Registry::enable_aggregation`]) and switches memory tracking on
/// so heap gauges have data. Called by the metrics exporter so `/metrics`
/// serves real figures even when [`ENV_VAR`] is unset; a registry already
/// recording is left untouched.
pub fn enable_aggregation() {
    global().enable_aggregation();
    mem::enable_mem_tracking();
}

/// A consistent point-in-time snapshot of the global registry (see
/// [`Registry::snapshot`]).
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Starts the live metrics exporter on `addr` (`HOST:PORT`, or `:PORT`
/// for loopback), serving the global registry. Enables silent
/// aggregation first so the endpoint has data regardless of
/// [`ENV_VAR`].
///
/// # Errors
///
/// Returns the I/O error from address resolution or bind (`AddrInUse` on
/// a port conflict).
pub fn start_exporter(addr: &str) -> std::io::Result<MetricsServer> {
    enable_aggregation();
    MetricsServer::bind(addr, global())
}

/// Starts the exporter iff [`METRICS_ENV_VAR`] is set, returning `None`
/// (and doing nothing — no thread, no socket) when it is not.
///
/// # Errors
///
/// Propagates bind failures for a set-but-unbindable address, so a typo'd
/// port fails loudly at startup instead of silently serving nothing.
pub fn exporter_from_env() -> std::io::Result<Option<MetricsServer>> {
    match std::env::var(METRICS_ENV_VAR) {
        Err(_) => Ok(None),
        Ok(spec) if spec.trim().is_empty() => Ok(None),
        Ok(spec) => start_exporter(&spec).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        assert_eq!(registry_from_spec("off").unwrap().mode(), Mode::Off);
        assert_eq!(registry_from_spec("").unwrap().mode(), Mode::Off);
        assert_eq!(registry_from_spec("OFF").unwrap().mode(), Mode::Off);
        assert_eq!(registry_from_spec("summary").unwrap().mode(), Mode::Summary);
        assert!(registry_from_spec("jsonl:").is_err());
        assert!(registry_from_spec("trace:").is_err());
        assert!(registry_from_spec("csv:/tmp/x").is_err());
    }

    #[test]
    fn unwritable_jsonl_path_is_an_error_not_a_panic() {
        let err = registry_from_spec("jsonl:/nonexistent-dir/telemetry.jsonl").unwrap_err();
        assert!(err.contains("cannot open telemetry sink"), "{err}");
        let err = registry_from_spec("trace:/nonexistent-dir/trace.json").unwrap_err();
        assert!(err.contains("cannot open trace sink"), "{err}");
    }

    #[test]
    fn trace_spec_enables_recorder_and_flush_writes_chrome_json() {
        let path = std::env::temp_dir().join(format!("univsa_trace_{}.json", std::process::id()));
        let spec = format!("trace:{}", path.display());
        let reg = registry_from_spec(&spec).unwrap();
        assert!(reg.is_tracing());
        assert!(reg.is_enabled());
        {
            let _s = reg.span("train", "epoch");
        }
        reg.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"traceEvents\""), "{text}");
        assert!(text.contains("\"name\":\"epoch\""), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_spec_opens_file() {
        let path = std::env::temp_dir().join(format!("univsa_tel_{}.jsonl", std::process::id()));
        let spec = format!("jsonl:{}", path.display());
        let reg = registry_from_spec(&spec).unwrap();
        assert_eq!(reg.mode(), Mode::Jsonl);
        {
            let _s = reg.span("t", "s");
        }
        reg.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"type\":\"span\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn global_defaults_off_without_env() {
        // The test harness does not set UNIVSA_TELEMETRY, so the global
        // registry must be inert and free to call.
        if std::env::var(ENV_VAR).is_err() {
            assert!(!enabled());
            let _s = span("t", "noop");
            counter("c", 1);
            flush().unwrap();
        }
    }
}
