//! Prometheus text exposition (version 0.0.4) encoding of a registry
//! [`Snapshot`], plus a tiny parser for the same format so tests (and
//! future multi-replica scrapers) can round-trip the output without an
//! external dependency.
//!
//! Metric names are fixed families with the UniVSA-specific identity in
//! labels, so one scrape config covers every counter and span:
//!
//! | family | type | labels |
//! |---|---|---|
//! | `univsa_counter_total` | counter | `name` (raw registry key, e.g. `worker.0.jobs`) |
//! | `univsa_latency_ns` | histogram | `span` (`layer.name`); buckets are **cumulative** with nanosecond `le` bounds ending in `+Inf` |
//! | `univsa_mem_live_bytes` / `univsa_mem_peak_bytes` | gauge | — |
//! | `univsa_mem_alloc_total` / `univsa_mem_dealloc_total` | counter | — |
//! | `univsa_uptime_seconds` | gauge | — |
//! | `univsa_drift_events_total` | counter | — (mirrors the `quality.drift_detected` registry counter) |
//! | `univsa_predictions_total` | counter | `task`, `class` |
//! | `univsa_margin` | histogram | `task`; cumulative `le` bounds in raw similarity units ending in `+Inf` |

use std::fmt::Write as _;

use crate::histogram::BUCKET_BOUNDS_NS;
use crate::quality::MARGIN_BUCKET_BOUNDS;
use crate::snapshot::Snapshot;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn write_label_value(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a snapshot as Prometheus text exposition. Output order is
/// deterministic (families in a fixed order, series sorted by the
/// snapshot's `BTreeMap` keys).
pub fn encode_text(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(
        "# HELP univsa_uptime_seconds Seconds since the telemetry registry was created.\n",
    );
    out.push_str("# TYPE univsa_uptime_seconds gauge\n");
    let _ = writeln!(out, "univsa_uptime_seconds {}", snap.uptime_ns as f64 / 1e9);
    out.push_str("# HELP univsa_mem_live_bytes Heap bytes currently live.\n");
    out.push_str("# TYPE univsa_mem_live_bytes gauge\n");
    let _ = writeln!(out, "univsa_mem_live_bytes {}", snap.mem.live_bytes);
    out.push_str("# HELP univsa_mem_peak_bytes High-water mark of live heap bytes.\n");
    out.push_str("# TYPE univsa_mem_peak_bytes gauge\n");
    let _ = writeln!(out, "univsa_mem_peak_bytes {}", snap.mem.peak_bytes);
    out.push_str("# HELP univsa_mem_alloc_total Heap allocations observed.\n");
    out.push_str("# TYPE univsa_mem_alloc_total counter\n");
    let _ = writeln!(out, "univsa_mem_alloc_total {}", snap.mem.alloc_count);
    out.push_str("# HELP univsa_mem_dealloc_total Heap deallocations observed.\n");
    out.push_str("# TYPE univsa_mem_dealloc_total counter\n");
    let _ = writeln!(out, "univsa_mem_dealloc_total {}", snap.mem.dealloc_count);
    out.push_str("# HELP univsa_drift_events_total Prediction-quality drift detections.\n");
    out.push_str("# TYPE univsa_drift_events_total counter\n");
    let _ = writeln!(
        out,
        "univsa_drift_events_total {}",
        snap.counters.get("quality.drift_detected").unwrap_or(&0)
    );
    let task = snap.quality.task.as_deref().unwrap_or("");
    if !snap.quality.predictions.is_empty() {
        out.push_str("# HELP univsa_predictions_total Predictions per winning class.\n");
        out.push_str("# TYPE univsa_predictions_total counter\n");
        for (class, value) in &snap.quality.predictions {
            out.push_str("univsa_predictions_total{task=");
            write_label_value(&mut out, task);
            out.push_str(",class=");
            write_label_value(&mut out, class);
            let _ = writeln!(out, "}} {value}");
        }
    }
    if snap.quality.margins.count() > 0 {
        out.push_str(
            "# HELP univsa_margin Winning-vs-runner-up similarity margin of predictions.\n",
        );
        out.push_str("# TYPE univsa_margin histogram\n");
        let m = &snap.quality.margins;
        let mut cumulative = 0u64;
        for (i, &count) in m.bucket_counts().iter().enumerate() {
            cumulative += count;
            out.push_str("univsa_margin_bucket{task=");
            write_label_value(&mut out, task);
            match MARGIN_BUCKET_BOUNDS.get(i) {
                Some(bound) => {
                    let _ = writeln!(out, ",le=\"{bound}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, ",le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        out.push_str("univsa_margin_sum{task=");
        write_label_value(&mut out, task);
        let _ = writeln!(out, "}} {}", m.sum());
        out.push_str("univsa_margin_count{task=");
        write_label_value(&mut out, task);
        let _ = writeln!(out, "}} {}", m.count());
    }
    if !snap.counters.is_empty() {
        out.push_str("# HELP univsa_counter_total Registry counters, one series per name.\n");
        out.push_str("# TYPE univsa_counter_total counter\n");
        for (name, value) in &snap.counters {
            out.push_str("univsa_counter_total{name=");
            write_label_value(&mut out, name);
            let _ = writeln!(out, "}} {value}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str(
            "# HELP univsa_latency_ns Span latency histograms in nanoseconds, one series per span.\n",
        );
        out.push_str("# TYPE univsa_latency_ns histogram\n");
        for (span, h) in &snap.histograms {
            // the exposition format wants cumulative bucket counts; the
            // registry stores per-bucket counts, so accumulate here
            let mut cumulative = 0u64;
            for (i, &count) in h.bucket_counts().iter().enumerate() {
                cumulative += count;
                out.push_str("univsa_latency_ns_bucket{span=");
                write_label_value(&mut out, span);
                match BUCKET_BOUNDS_NS.get(i) {
                    Some(bound) => {
                        let _ = writeln!(out, ",le=\"{bound}\"}} {cumulative}");
                    }
                    None => {
                        let _ = writeln!(out, ",le=\"+Inf\"}} {cumulative}");
                    }
                }
            }
            out.push_str("univsa_latency_ns_sum{span=");
            write_label_value(&mut out, span);
            let _ = writeln!(out, "}} {}", h.sum_ns());
            out.push_str("univsa_latency_ns_count{span=");
            write_label_value(&mut out, span);
            let _ = writeln!(out, "}} {}", h.count());
        }
    }
    out
}

/// One parsed sample line: metric name, labels in source order, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus text exposition into samples. Comment (`#`) and
/// blank lines are skipped; anything else must be a well-formed
/// `name{labels} value` or `name value` line.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_text(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_end, labels, rest) = match line.find('{') {
        Some(brace) => {
            let (labels, after) = parse_labels(&line[brace + 1..])?;
            (brace, labels, after)
        }
        None => {
            let space = line
                .find(char::is_whitespace)
                .ok_or("missing value after metric name")?;
            (space, Vec::new(), &line[space..])
        }
    };
    let name = line[..name_end].trim().to_string();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    let value_text = rest.trim();
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("invalid sample value {v:?}"))?,
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Parses `key="value",…}` (the text after the opening brace), returning
/// the pairs and the remainder of the line after the closing brace.
#[allow(clippy::type_complexity)]
fn parse_labels(mut text: &str) -> Result<(Vec<(String, String)>, &str), String> {
    let mut labels = Vec::new();
    loop {
        text = text.trim_start();
        if let Some(rest) = text.strip_prefix('}') {
            return Ok((labels, rest));
        }
        let eq = text.find('=').ok_or("label missing '='")?;
        let key = text[..eq].trim().to_string();
        text = text[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value missing opening quote")?;
        let mut value = String::new();
        let mut chars = text.char_indices();
        let after_quote = loop {
            let (i, ch) = chars.next().ok_or("unterminated label value")?;
            match ch {
                '"' => break i + 1,
                '\\' => {
                    let (_, esc) = chars.next().ok_or("dangling escape")?;
                    match esc {
                        'n' => value.push('\n'),
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => value.push(c),
            }
        };
        labels.push((key, value));
        text = text[after_quote..].trim_start();
        if let Some(rest) = text.strip_prefix(',') {
            text = rest;
        } else if !text.starts_with('}') {
            return Err("expected ',' or '}' after label".into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::empty();
        snap.uptime_ns = 2_000_000_000;
        snap.mem.live_bytes = 1024;
        snap.mem.peak_bytes = 4096;
        snap.mem.alloc_count = 10;
        snap.mem.dealloc_count = 7;
        snap.counters.insert("worker.0.jobs".into(), 5);
        snap.counters.insert("fleet.jobs".into(), 5);
        let mut h = Histogram::new();
        h.record(1_500);
        h.record(1_500);
        h.record(7_000);
        snap.histograms.insert("infer.encode".into(), h);
        snap
    }

    #[test]
    fn buckets_are_cumulative_and_end_in_inf() {
        let text = encode_text(&sample_snapshot());
        let samples = parse_text(&text).unwrap();
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "univsa_latency_ns_bucket")
            .collect();
        assert_eq!(buckets.len(), BUCKET_BOUNDS_NS.len() + 1);
        // cumulative counts never decrease
        let counts: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        // the +Inf bucket equals the count series
        let last = buckets.last().unwrap();
        assert_eq!(last.label("le"), Some("+Inf"));
        let count = samples
            .iter()
            .find(|s| s.name == "univsa_latency_ns_count")
            .unwrap();
        assert_eq!(last.value, count.value);
        assert_eq!(count.value, 3.0);
        // the 2µs bucket holds both 1.5µs observations cumulatively
        let two_us = buckets
            .iter()
            .find(|s| s.label("le") == Some("2000"))
            .unwrap();
        assert_eq!(two_us.value, 2.0);
        let sum = samples
            .iter()
            .find(|s| s.name == "univsa_latency_ns_sum")
            .unwrap();
        assert_eq!(sum.value, 10_000.0);
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let snap = sample_snapshot();
        let samples = parse_text(&encode_text(&snap)).unwrap();
        let find = |name: &str, label: Option<(&str, &str)>| {
            samples
                .iter()
                .find(|s| s.name == name && label.is_none_or(|(k, v)| s.label(k) == Some(v)))
                .unwrap_or_else(|| panic!("missing {name} {label:?}"))
                .value
        };
        assert_eq!(
            find("univsa_counter_total", Some(("name", "worker.0.jobs"))),
            5.0
        );
        assert_eq!(
            find("univsa_counter_total", Some(("name", "fleet.jobs"))),
            5.0
        );
        assert_eq!(find("univsa_mem_live_bytes", None), 1024.0);
        assert_eq!(find("univsa_mem_peak_bytes", None), 4096.0);
        assert_eq!(find("univsa_mem_alloc_total", None), 10.0);
        assert_eq!(find("univsa_mem_dealloc_total", None), 7.0);
        assert_eq!(find("univsa_uptime_seconds", None), 2.0);
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let mut snap = Snapshot::empty();
        snap.counters.insert("weird\"name\\with\nstuff".into(), 1);
        let text = encode_text(&snap);
        let samples = parse_text(&text).unwrap();
        let s = samples
            .iter()
            .find(|s| s.name == "univsa_counter_total")
            .unwrap();
        assert_eq!(s.label("name"), Some("weird\"name\\with\nstuff"));
    }

    #[test]
    fn quality_families_encode_margins_predictions_and_drift() {
        let mut snap = sample_snapshot();
        snap.quality.task = Some("bci3v".into());
        snap.quality.record_prediction(0, 7);
        snap.quality.record_prediction(2, 7);
        snap.quality.record_prediction(2, 90);
        snap.counters.insert("quality.drift_detected".into(), 3);
        let samples = parse_text(&encode_text(&snap)).unwrap();
        let drift = samples
            .iter()
            .find(|s| s.name == "univsa_drift_events_total")
            .unwrap();
        assert_eq!(drift.value, 3.0);
        let class2 = samples
            .iter()
            .find(|s| s.name == "univsa_predictions_total" && s.label("class") == Some("2"))
            .unwrap();
        assert_eq!(class2.value, 2.0);
        assert_eq!(class2.label("task"), Some("bci3v"));
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "univsa_margin_bucket")
            .collect();
        assert_eq!(buckets.len(), MARGIN_BUCKET_BOUNDS.len() + 1);
        let counts: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        assert_eq!(buckets.last().unwrap().value, 3.0);
        // both 7s land cumulatively at the le="10" bound
        let ten = buckets.iter().find(|s| s.label("le") == Some("10")).unwrap();
        assert_eq!(ten.value, 2.0);
        let sum = samples
            .iter()
            .find(|s| s.name == "univsa_margin_sum")
            .unwrap();
        assert_eq!(sum.value, 104.0);
    }

    #[test]
    fn drift_counter_is_emitted_even_when_zero() {
        let samples = parse_text(&encode_text(&Snapshot::empty())).unwrap();
        let drift = samples
            .iter()
            .find(|s| s.name == "univsa_drift_events_total")
            .unwrap();
        assert_eq!(drift.value, 0.0);
    }

    #[test]
    fn hostile_task_and_class_labels_round_trip() {
        // label values exercising every escape the 0.0.4 text format
        // defines: backslash, double quote, and newline
        let task = "task\\with\"quotes\"\nand newline";
        let class = "cls\"0\\end\n";
        let mut snap = Snapshot::empty();
        snap.quality.task = Some(task.into());
        snap.quality.predictions.insert(class.into(), 4);
        snap.quality.margins.record(11);
        let text = encode_text(&snap);
        assert!(text.contains("task\\\\with\\\"quotes\\\"\\nand newline"));
        let samples = parse_text(&text).unwrap();
        let pred = samples
            .iter()
            .find(|s| s.name == "univsa_predictions_total")
            .unwrap();
        assert_eq!(pred.label("task"), Some(task));
        assert_eq!(pred.label("class"), Some(class));
        let margin_count = samples
            .iter()
            .find(|s| s.name == "univsa_margin_count")
            .unwrap();
        assert_eq!(margin_count.label("task"), Some(task));
        assert_eq!(margin_count.value, 1.0);
    }

    #[test]
    fn every_type_line_names_an_emitted_family() {
        let text = encode_text(&sample_snapshot());
        for line in text.lines().filter(|l| l.starts_with("# TYPE")) {
            let family = line.split_whitespace().nth(2).unwrap();
            assert!(
                text.lines()
                    .any(|l| !l.starts_with('#') && l.starts_with(family)),
                "family {family} declared but never emitted"
            );
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_text("metric_without_value").is_err());
        assert!(parse_text("bad name 1").is_err());
        assert!(parse_text("m{unterminated=\"x} 1").is_err());
        assert!(parse_text("m{k=\"v\"} notanumber").is_err());
        // special values parse
        let inf = parse_text("m +Inf").unwrap();
        assert!(inf[0].value.is_infinite());
    }
}
