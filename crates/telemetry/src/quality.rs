//! Prediction-quality streaming structures: a mergeable fixed-bucket
//! margin sketch, an online confusion/calibration accumulator, and a
//! windowed drift detector.
//!
//! In a binary VSA the native quality signal is the *similarity margin* —
//! the gap between the winning and runner-up class similarity totals. The
//! structures here observe that signal (and the predicted class stream)
//! with the same discipline as the latency histograms: fixed compile-time
//! bucket layouts so merging is index-wise addition, exact integer
//! side-stats, `BTreeMap` keying so every rendering is deterministic, and
//! no dependencies. Sketches recorded on fleet workers ride the
//! [`crate::WorkerBatch`] codec and merge supervisor-side exactly like
//! counters; the merged result is what `/snapshot.json` and `/metrics`
//! serve.
//!
//! The [`DriftDetector`] is deliberately *not* part of the global
//! registry: divergence between a reference window and the current window
//! is order-sensitive, so the detector is owned by whoever can feed it
//! predictions in sample order (the `univsa quality` CLI, perf_baseline).
//! Its threshold is derived deterministically from a seed, so a drift
//! event fires at the same sample index on every thread count and fleet
//! width.

use std::collections::BTreeMap;

/// Upper bucket bounds (inclusive) for similarity margins, in raw
/// similarity units (the same integer scale as the voter-summed class
/// totals), covering 0 … 10⁵ in a 1-2-5 progression; larger margins land
/// in the overflow bucket. A dedicated `0` bucket keeps exact ties
/// distinguishable from near-ties.
pub const MARGIN_BUCKET_BOUNDS: [u64; 17] = [
    0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
];

/// Number of buckets in every margin sketch (bounds plus overflow).
pub const MARGIN_BUCKETS: usize = MARGIN_BUCKET_BOUNDS.len() + 1;

/// A mergeable fixed-bucket quantile sketch of similarity margins.
/// Mirrors [`crate::Histogram`]: every sketch shares the
/// [`MARGIN_BUCKET_BOUNDS`] layout, so merging is index-wise addition and
/// is associative and commutative; exact `count`/`sum`/`min`/`max` ride
/// alongside so means stay precise while quantiles are bucket-resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarginSketch {
    pub(crate) counts: [u64; MARGIN_BUCKETS],
    pub(crate) count: u64,
    pub(crate) sum: u128,
    pub(crate) min: u64,
    pub(crate) max: u64,
}

impl Default for MarginSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl MarginSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            counts: [0; MARGIN_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket a margin falls into (last index = overflow).
    pub fn bucket_index(margin: u64) -> usize {
        MARGIN_BUCKET_BOUNDS
            .iter()
            .position(|&bound| margin <= bound)
            .unwrap_or(MARGIN_BUCKET_BOUNDS.len())
    }

    /// Records one margin observation.
    pub fn record(&mut self, margin: u64) {
        self.counts[Self::bucket_index(margin)] += 1;
        self.count += 1;
        self.sum += u128::from(margin);
        self.min = self.min.min(margin);
        self.max = self.max.max(margin);
    }

    /// Total recorded observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket observation counts (overflow last).
    #[inline]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Exact sum of all observed margins.
    #[inline]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean margin (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observed margin (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed margin (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another sketch into this one: buckets add index-wise,
    /// exact stats add, `min`/`max` fold. Merging an empty sketch is a
    /// no-op (the `u64::MAX` min sentinel folds away).
    pub fn merge(&mut self, other: &MarginSketch) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket-resolution quantile estimate: the upper bound of the bucket
    /// holding the `q`-quantile observation, clamped to the exact max.
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = MARGIN_BUCKET_BOUNDS.get(i).copied().unwrap_or(self.max);
                return Some(bound.min(self.max));
            }
        }
        Some(self.max)
    }
}

/// One calibration bin: predictions whose margin fell in this margin
/// bucket, and how many of them were correct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CalibrationBin {
    /// Labelled predictions in this margin bucket.
    pub total: u64,
    /// Correct predictions in this margin bucket.
    pub correct: u64,
}

/// Online per-class confusion and ECE-style calibration accumulator, fed
/// only when true labels are available. Confusion pairs are keyed
/// `(true, predicted)`; calibration bins share the margin sketch's bucket
/// layout, so "is a big margin actually more trustworthy?" is answerable
/// from the same stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Confusion {
    pub(crate) labeled: u64,
    pub(crate) correct: u64,
    pub(crate) pairs: BTreeMap<(u32, u32), u64>,
    pub(crate) bins: [CalibrationBin; MARGIN_BUCKETS],
}

impl Confusion {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one labelled prediction with its margin.
    pub fn record(&mut self, truth: u32, predicted: u32, margin: u64) {
        self.labeled += 1;
        let hit = truth == predicted;
        if hit {
            self.correct += 1;
        }
        *self.pairs.entry((truth, predicted)).or_insert(0) += 1;
        let bin = &mut self.bins[MarginSketch::bucket_index(margin)];
        bin.total += 1;
        bin.correct += u64::from(hit);
    }

    /// Labelled predictions observed.
    #[inline]
    pub fn labeled(&self) -> u64 {
        self.labeled
    }

    /// Correct predictions observed.
    #[inline]
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Accuracy over the labelled stream (`None` when nothing labelled).
    pub fn accuracy(&self) -> Option<f64> {
        (self.labeled > 0).then(|| self.correct as f64 / self.labeled as f64)
    }

    /// `(true, predicted) → count` confusion pairs, deterministically
    /// ordered.
    pub fn pairs(&self) -> &BTreeMap<(u32, u32), u64> {
        &self.pairs
    }

    /// Calibration bins, indexed like the margin sketch's buckets.
    pub fn bins(&self) -> &[CalibrationBin] {
        &self.bins
    }

    /// ECE-style calibration gap: the bin-population-weighted mean
    /// absolute deviation of per-margin-bucket accuracy from the overall
    /// accuracy. 0 means the margin carries no miscalibration signal;
    /// large values mean some margin range is much less trustworthy than
    /// the aggregate accuracy suggests. `None` when nothing labelled.
    pub fn calibration_gap(&self) -> Option<f64> {
        let overall = self.accuracy()?;
        let mut gap = 0.0;
        for bin in &self.bins {
            if bin.total == 0 {
                continue;
            }
            let acc = bin.correct as f64 / bin.total as f64;
            gap += (bin.total as f64 / self.labeled as f64) * (acc - overall).abs();
        }
        Some(gap)
    }

    /// Merges another accumulator into this one (all counts add).
    pub fn merge(&mut self, other: &Confusion) {
        self.labeled += other.labeled;
        self.correct += other.correct;
        for (&key, &n) in &other.pairs {
            *self.pairs.entry(key).or_insert(0) += n;
        }
        for (mine, theirs) in self.bins.iter_mut().zip(other.bins.iter()) {
            mine.total += theirs.total;
            mine.correct += theirs.correct;
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.labeled == 0
    }
}

/// Everything the registry aggregates about prediction quality: the
/// margin sketch, per-class prediction counts, the labelled confusion
/// accumulator, and the task name the stream belongs to. This is the unit
/// that drains into a [`crate::WorkerBatch`] and merges supervisor-side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QualityStats {
    /// Task the predictions belong to, when a caller declared one (first
    /// writer wins on merge).
    pub task: Option<String>,
    /// Similarity-margin sketch over every observed prediction.
    pub margins: MarginSketch,
    /// Predictions per class label (keys are decimal class indices for
    /// engine-tapped streams, but arbitrary labels are representable).
    pub predictions: BTreeMap<String, u64>,
    /// Labelled confusion/calibration accumulator.
    pub confusion: Confusion,
}

impl QualityStats {
    /// Records one prediction (class index + margin) from an engine tap.
    pub fn record_prediction(&mut self, class: u32, margin: u64) {
        self.margins.record(margin);
        *self.predictions.entry(class.to_string()).or_insert(0) += 1;
    }

    /// Records one labelled outcome.
    pub fn record_outcome(&mut self, truth: u32, predicted: u32, margin: u64) {
        self.confusion.record(truth, predicted, margin);
    }

    /// Merges another stats block into this one (sketches and counts add;
    /// the first non-empty task name wins).
    pub fn merge(&mut self, other: &QualityStats) {
        if self.task.is_none() {
            self.task.clone_from(&other.task);
        }
        self.margins.merge(&other.margins);
        for (class, n) in &other.predictions {
            *self.predictions.entry(class.clone()).or_insert(0) += n;
        }
        self.confusion.merge(&other.confusion);
    }

    /// Whether the block carries any information worth shipping.
    pub fn is_empty(&self) -> bool {
        self.task.is_none()
            && self.margins.count() == 0
            && self.predictions.is_empty()
            && self.confusion.is_empty()
    }
}

/// Drift-detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Samples per window. The first `window` samples freeze the
    /// reference; each subsequent full window is compared against it.
    pub window: usize,
    /// Seed the detection threshold is derived from (a deterministic
    /// jitter on top of `sensitivity`, so reruns and re-deployments can
    /// de-correlate thresholds without losing reproducibility).
    pub seed: u64,
    /// Base divergence threshold in `[0, 2]` (the L1 range). The
    /// effective threshold is `sensitivity + jitter(seed)` with jitter in
    /// `[0, 0.05)`.
    pub sensitivity: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 128,
            seed: 0,
            sensitivity: 0.75,
        }
    }
}

/// One detected drift event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// 0-based index of the sample whose arrival completed the diverging
    /// window.
    pub sample_index: u64,
    /// The measured divergence (max of margin-histogram L1 and
    /// class-frequency L1 between reference and current window).
    pub divergence: f64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Window {
    margin_buckets: [u64; MARGIN_BUCKETS],
    classes: BTreeMap<u32, u64>,
    n: u64,
}

impl Window {
    fn observe(&mut self, class: u32, margin: u64) {
        self.margin_buckets[MarginSketch::bucket_index(margin)] += 1;
        *self.classes.entry(class).or_insert(0) += 1;
        self.n += 1;
    }
}

/// L1 distance between two normalized count distributions over the union
/// of their supports. Both iterations are over deterministic layouts, so
/// the float accumulation order (and therefore the result) is identical
/// on every run.
fn l1(a_counts: impl Iterator<Item = (u64, u64)>, a_n: u64, b_n: u64) -> f64 {
    let mut dist = 0.0;
    for (a, b) in a_counts {
        dist += (a as f64 / a_n as f64 - b as f64 / b_n as f64).abs();
    }
    dist
}

/// Reference-window vs current-window drift detector over the
/// (margin, predicted class) stream. Feed it predictions **in sample
/// order**; it is a pure function of the fed sequence and its config, so
/// detection indices are reproducible across thread counts and fleet
/// widths as long as the sequence itself is.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftDetector {
    config: DriftConfig,
    threshold: f64,
    reference: Option<Window>,
    current: Window,
    seen: u64,
    events: Vec<DriftEvent>,
}

impl DriftDetector {
    /// Creates a detector; the effective threshold is fixed here from the
    /// config's seed.
    pub fn new(config: DriftConfig) -> Self {
        let window = config.window.max(2);
        let jitter = (splitmix64(config.seed) >> 11) as f64 / (1u64 << 53) as f64 * 0.05;
        Self {
            config: DriftConfig { window, ..config },
            threshold: config.sensitivity + jitter,
            reference: None,
            current: Window::default(),
            seen: 0,
            events: Vec::new(),
        }
    }

    /// The effective (seed-jittered) divergence threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Samples observed so far.
    pub fn samples_seen(&self) -> u64 {
        self.seen
    }

    /// Every drift event fired so far, in order.
    pub fn events(&self) -> &[DriftEvent] {
        &self.events
    }

    /// Index of the first drift event, if any — the "samples-to-detect"
    /// figure detection-latency reporting is built on.
    pub fn first_detection(&self) -> Option<u64> {
        self.events.first().map(|e| e.sample_index)
    }

    /// Feeds one prediction; returns the drift event if this sample
    /// completed a window that diverged from the reference.
    pub fn observe(&mut self, class: u32, margin: u64) -> Option<DriftEvent> {
        let index = self.seen;
        self.seen += 1;
        let window = self.config.window as u64;
        match &mut self.reference {
            None => {
                self.current.observe(class, margin);
                if self.current.n == window {
                    self.reference = Some(std::mem::take(&mut self.current));
                }
                None
            }
            Some(reference) => {
                self.current.observe(class, margin);
                if self.current.n < window {
                    return None;
                }
                let margin_l1 = l1(
                    reference
                        .margin_buckets
                        .iter()
                        .zip(self.current.margin_buckets.iter())
                        .map(|(&a, &b)| (a, b)),
                    reference.n,
                    self.current.n,
                );
                // union of class supports, in sorted order
                let mut keys: Vec<u32> = reference.classes.keys().copied().collect();
                for k in self.current.classes.keys() {
                    if !reference.classes.contains_key(k) {
                        keys.push(*k);
                    }
                }
                keys.sort_unstable();
                let class_l1 = l1(
                    keys.iter().map(|k| {
                        (
                            reference.classes.get(k).copied().unwrap_or(0),
                            self.current.classes.get(k).copied().unwrap_or(0),
                        )
                    }),
                    reference.n,
                    self.current.n,
                );
                let divergence = margin_l1.max(class_l1);
                self.current = Window::default();
                if divergence > self.threshold {
                    let event = DriftEvent {
                        sample_index: index,
                        divergence,
                    };
                    self.events.push(event);
                    Some(event)
                } else {
                    None
                }
            }
        }
    }
}

/// The sequential quality-observation layer: a local margin sketch,
/// confusion accumulator, and drift detector fed together, one prediction
/// at a time, in sample order. This is what `univsa quality` and
/// perf_baseline fold the (deterministically ordered) engine output into;
/// the global registry's [`QualityStats`] is fed separately by the engine
/// taps.
#[derive(Debug, Clone)]
pub struct QualityObserver {
    /// Margin sketch over the observed stream.
    pub margins: MarginSketch,
    /// Labelled confusion accumulator.
    pub confusion: Confusion,
    /// Per-predicted-class counts.
    pub predictions: BTreeMap<u32, u64>,
    /// The windowed drift detector.
    pub drift: DriftDetector,
}

impl QualityObserver {
    /// Creates an observer with the given drift configuration.
    pub fn new(drift: DriftConfig) -> Self {
        Self {
            margins: MarginSketch::new(),
            confusion: Confusion::new(),
            predictions: BTreeMap::new(),
            drift: DriftDetector::new(drift),
        }
    }

    /// Observes one prediction (with its true label when known);
    /// returns a drift event if this sample triggered one.
    pub fn observe(
        &mut self,
        truth: Option<u32>,
        predicted: u32,
        margin: u64,
    ) -> Option<DriftEvent> {
        self.margins.record(margin);
        *self.predictions.entry(predicted).or_insert(0) += 1;
        if let Some(truth) = truth {
            self.confusion.record(truth, predicted, margin);
        }
        self.drift.observe(predicted, margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_bucket_boundaries_are_inclusive_upper_bounds() {
        assert_eq!(MarginSketch::bucket_index(0), 0);
        assert_eq!(MarginSketch::bucket_index(1), 1);
        assert_eq!(MarginSketch::bucket_index(2), 2);
        assert_eq!(MarginSketch::bucket_index(3), 3);
        assert_eq!(MarginSketch::bucket_index(5), 3);
        assert_eq!(MarginSketch::bucket_index(100_000), 16);
        assert_eq!(MarginSketch::bucket_index(100_001), 17);
        assert_eq!(MarginSketch::bucket_index(u64::MAX), 17);
        for pair in MARGIN_BUCKET_BOUNDS.windows(2) {
            assert!(pair[0] < pair[1], "bounds must increase: {pair:?}");
        }
    }

    #[test]
    fn sketch_records_exact_stats_and_quantiles() {
        let mut s = MarginSketch::new();
        assert_eq!(s.quantile(0.5), None);
        for m in [0, 3, 3, 40, 700] {
            s.record(m);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 746);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(700));
        assert!((s.mean() - 149.2).abs() < 1e-9);
        // rank 3 of 5 at q=0.5 → the two 3s live in bucket (2,5]
        assert_eq!(s.quantile(0.5), Some(5));
        assert_eq!(s.quantile(1.0), Some(700));
    }

    #[test]
    fn sketch_merge_equals_direct_recording_and_is_commutative() {
        let values_a = [0u64, 7, 7, 900];
        let values_b = [2u64, 2_000_000, 15];
        let mut a = MarginSketch::new();
        let mut b = MarginSketch::new();
        for v in values_a {
            a.record(v);
        }
        for v in values_b {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut direct = MarginSketch::new();
        for v in values_a.iter().chain(values_b.iter()) {
            direct.record(*v);
        }
        assert_eq!(ab, direct);
        // empty-merge identity both ways
        let mut with_empty = ab.clone();
        with_empty.merge(&MarginSketch::new());
        assert_eq!(with_empty, ab);
        let mut empty = MarginSketch::new();
        empty.merge(&ab);
        assert_eq!(empty, ab);
        assert_eq!(ab.min(), Some(0));
        assert_eq!(ab.quantile(1.0), Some(2_000_000));
    }

    #[test]
    fn confusion_tracks_accuracy_pairs_and_calibration() {
        let mut c = Confusion::new();
        assert!(c.is_empty());
        assert_eq!(c.accuracy(), None);
        assert_eq!(c.calibration_gap(), None);
        // big margins always right, tiny margins always wrong
        for _ in 0..8 {
            c.record(1, 1, 400);
        }
        for _ in 0..2 {
            c.record(1, 0, 0);
        }
        assert_eq!(c.labeled(), 10);
        assert_eq!(c.correct(), 8);
        assert_eq!(c.accuracy(), Some(0.8));
        assert_eq!(c.pairs()[&(1, 1)], 8);
        assert_eq!(c.pairs()[&(1, 0)], 2);
        // gap = 0.8·|1.0−0.8| + 0.2·|0.0−0.8| = 0.32
        assert!((c.calibration_gap().unwrap() - 0.32).abs() < 1e-12);
        let mut d = Confusion::new();
        d.record(0, 0, 400);
        c.merge(&d);
        assert_eq!(c.labeled(), 11);
        assert_eq!(c.pairs()[&(0, 0)], 1);
    }

    #[test]
    fn quality_stats_merge_and_emptiness() {
        let mut a = QualityStats::default();
        assert!(a.is_empty());
        a.record_prediction(2, 40);
        a.record_outcome(2, 2, 40);
        assert!(!a.is_empty());
        let mut b = QualityStats {
            task: Some("HAR".into()),
            ..QualityStats::default()
        };
        b.record_prediction(2, 10);
        b.record_prediction(0, 3);
        a.merge(&b);
        assert_eq!(a.task.as_deref(), Some("HAR"));
        assert_eq!(a.margins.count(), 3);
        assert_eq!(a.predictions["2"], 2);
        assert_eq!(a.predictions["0"], 1);
        // first task wins over later merges
        let c = QualityStats {
            task: Some("other".into()),
            ..QualityStats::default()
        };
        a.merge(&c);
        assert_eq!(a.task.as_deref(), Some("HAR"));
    }

    #[test]
    fn drift_threshold_is_seeded_and_deterministic() {
        let a = DriftDetector::new(DriftConfig {
            seed: 7,
            ..DriftConfig::default()
        });
        let b = DriftDetector::new(DriftConfig {
            seed: 7,
            ..DriftConfig::default()
        });
        let c = DriftDetector::new(DriftConfig {
            seed: 8,
            ..DriftConfig::default()
        });
        assert_eq!(a.threshold(), b.threshold());
        assert_ne!(a.threshold(), c.threshold());
        let base = DriftConfig::default().sensitivity;
        for d in [&a, &c] {
            assert!(d.threshold() >= base && d.threshold() < base + 0.05);
        }
    }

    #[test]
    fn stationary_stream_never_fires_and_shifted_stream_fires_once_per_window() {
        let config = DriftConfig {
            window: 32,
            seed: 1,
            sensitivity: 0.75,
        };
        // stationary: a fixed repeating pattern of classes and margins
        let mut detector = DriftDetector::new(config);
        for i in 0..512u64 {
            let class = (i % 3) as u32;
            let margin = 40 + (i % 5) * 3;
            assert_eq!(detector.observe(class, margin), None, "sample {i}");
        }
        assert!(detector.events().is_empty());
        // drifted: margins collapse to ~0 and classes collapse to one
        let mut detector = DriftDetector::new(config);
        let mut fired_at = None;
        for i in 0..512u64 {
            let (class, margin) = if i < 200 {
                ((i % 3) as u32, 40 + (i % 5) * 3)
            } else {
                (0, i % 2)
            };
            if let Some(e) = detector.observe(class, margin) {
                fired_at.get_or_insert(e.sample_index);
                assert!(e.divergence > detector.threshold());
            }
        }
        let fired_at = fired_at.expect("drift must be detected");
        assert!(fired_at >= 200, "cannot fire before the drift point");
        assert!(
            fired_at < 200 + 2 * 32,
            "detection latency {} exceeds two windows",
            fired_at - 200
        );
        assert_eq!(detector.first_detection(), Some(fired_at));
        // identical feed → identical event indices
        let mut replay = DriftDetector::new(config);
        for i in 0..512u64 {
            let (class, margin) = if i < 200 {
                ((i % 3) as u32, 40 + (i % 5) * 3)
            } else {
                (0, i % 2)
            };
            replay.observe(class, margin);
        }
        assert_eq!(replay.events(), detector.events());
    }

    #[test]
    fn observer_combines_sketch_confusion_and_drift() {
        let mut obs = QualityObserver::new(DriftConfig {
            window: 8,
            seed: 0,
            sensitivity: 0.75,
        });
        for i in 0..32u64 {
            obs.observe(Some((i % 2) as u32), (i % 2) as u32, 25);
        }
        assert_eq!(obs.margins.count(), 32);
        assert_eq!(obs.confusion.accuracy(), Some(1.0));
        assert_eq!(obs.predictions[&0], 16);
        assert!(obs.drift.events().is_empty());
        // unlabelled observations skip confusion
        obs.observe(None, 1, 25);
        assert_eq!(obs.confusion.labeled(), 32);
        assert_eq!(obs.margins.count(), 33);
    }
}
