//! Counting global allocator: live/peak heap bytes and allocation counts,
//! globally and attributed per-thread so spans can carry allocation
//! deltas.
//!
//! The workspace installs [`CountingAllocator`] as the
//! `#[global_allocator]` (it wraps [`std::alloc::System`]). Counting is
//! **off by default**: until [`enable_mem_tracking`] flips one process
//! -wide flag, every allocation pays exactly one relaxed atomic load on
//! top of the system allocator — the same discipline as the rest of the
//! telemetry stack. The flag is set when the global registry comes up
//! enabled (`UNIVSA_TELEMETRY` != off), when the flight recorder is
//! switched on, or explicitly (the `univsa profile --mem` path).
//!
//! Two ledgers are kept:
//!
//! - **global**: live bytes, peak bytes, alloc/dealloc counts — process
//!   truth, reported by [`mem_stats`] and sampled into Chrome trace
//!   counter tracks.
//! - **per-thread**: net bytes + allocation count in thread-local cells,
//!   snapshot by [`AllocMark`] so a span measures exactly the
//!   allocations of the work it encloses. The registry *suspends* this
//!   attribution around its own internals (recorder pushes, histogram
//!   inserts), so measurement never measures itself — which is what
//!   keeps per-span deltas deterministic across `UNIVSA_THREADS`
//!   settings.
//!
//! `univsa-par` bridges worker attribution back to the dispatching
//! thread with [`absorb_worker_alloc`], so an enclosing `train.epoch`
//! span sees the allocations of the fan-out it dispatched.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Process-wide switch; one relaxed load per allocation while off.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Live heap bytes (signed: deallocations of memory allocated before
/// tracking started may drive the raw counter negative; reporting clamps).
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`LIVE_BYTES`] since tracking (or the last
/// [`reset_peak`]).
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static DEALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Net bytes allocated by this thread while attribution was active.
    static TL_NET: Cell<i64> = const { Cell::new(0) };
    /// Allocations made by this thread while attribution was active.
    static TL_COUNT: Cell<u64> = const { Cell::new(0) };
    /// While true, this thread's allocations update the global ledger
    /// only — the telemetry internals run under this so they do not
    /// pollute span attribution.
    static TL_SUSPENDED: Cell<bool> = const { Cell::new(false) };
}

/// The counting allocator installed as the workspace `#[global_allocator]`.
///
/// Delegates every operation to [`System`]; when tracking is enabled it
/// additionally maintains the global and per-thread ledgers with relaxed
/// atomics and const-initialized thread-local cells (no allocation happens
/// on the counting path itself, so the wrapper cannot recurse).
pub struct CountingAllocator;

#[global_allocator]
static GLOBAL_ALLOCATOR: CountingAllocator = CountingAllocator;

#[inline]
fn note_alloc(size: usize) {
    let size = size as i64;
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    let mut peak = PEAK_BYTES.load(Ordering::Relaxed);
    while live > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(cur) => peak = cur,
        }
    }
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    // `try_with` so allocations during TLS teardown stay safe.
    let _ = TL_SUSPENDED.try_with(|s| {
        if !s.get() {
            let _ = TL_NET.try_with(|c| c.set(c.get() + size));
            let _ = TL_COUNT.try_with(|c| c.set(c.get() + 1));
        }
    });
}

#[inline]
fn note_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
    DEALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    let _ = TL_SUSPENDED.try_with(|s| {
        if !s.get() {
            let _ = TL_NET.try_with(|c| c.set(c.get() - size as i64));
        }
    });
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if ENABLED.load(Ordering::Relaxed) {
            note_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        new_ptr
    }
}

/// Switches allocation counting on for the rest of the process. Safe to
/// call repeatedly; there is deliberately no way to switch it back off
/// (deallocations of tracked memory must keep being tracked).
pub fn enable_mem_tracking() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether the counting allocator is recording (one relaxed load).
#[inline]
pub fn mem_tracking_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A snapshot of the global allocation ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Heap bytes currently live (allocated minus freed since tracking
    /// started; clamped at zero).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since tracking started or the last
    /// [`reset_peak`].
    pub peak_bytes: u64,
    /// Total allocations observed.
    pub alloc_count: u64,
    /// Total deallocations observed.
    pub dealloc_count: u64,
}

/// Reads the global allocation ledger (all zeros while tracking is off
/// and nothing was ever recorded).
pub fn mem_stats() -> MemStats {
    MemStats {
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed).max(0) as u64,
        alloc_count: ALLOC_COUNT.load(Ordering::Relaxed),
        dealloc_count: DEALLOC_COUNT.load(Ordering::Relaxed),
    }
}

/// Collapses the peak high-water mark to the current live figure, so the
/// next measurement window (e.g. one bench task) reports its own peak.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed).max(0), Ordering::Relaxed);
}

/// The allocation deltas measured over one span window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Net bytes allocated minus freed on the measuring thread (plus any
    /// worker attribution absorbed) over the window.
    pub net_bytes: i64,
    /// Allocations made over the window.
    pub alloc_count: u64,
    /// Global peak live bytes at the *end* of the window — a process
    /// figure, not a per-span one, so it is monotone within a run.
    pub peak_bytes: u64,
}

/// A snapshot of this thread's attribution counters; the difference
/// between two marks is what the enclosed code allocated.
#[derive(Debug, Clone, Copy)]
pub struct AllocMark {
    net: i64,
    count: u64,
}

impl AllocMark {
    /// Marks the calling thread's current attribution counters.
    pub fn now() -> Self {
        Self {
            net: TL_NET.with(Cell::get),
            count: TL_COUNT.with(Cell::get),
        }
    }

    /// The deltas accumulated since this mark (mark unchanged).
    pub fn delta(&self) -> AllocDelta {
        AllocDelta {
            net_bytes: TL_NET.with(Cell::get) - self.net,
            alloc_count: TL_COUNT.with(Cell::get) - self.count,
            peak_bytes: PEAK_BYTES.load(Ordering::Relaxed).max(0) as u64,
        }
    }

    /// The deltas since this mark, then re-marks at now — the rolling
    /// shape the staged inference path uses.
    pub fn lap(&mut self) -> AllocDelta {
        let d = self.delta();
        self.net += d.net_bytes;
        self.count += d.alloc_count;
        d
    }
}

/// Adds a worker thread's measured attribution onto the calling thread's
/// counters. `univsa-par` calls this after a fan-out joins, so spans open
/// on the dispatching thread include the allocations their workers made.
pub fn absorb_worker_alloc(net_bytes: i64, alloc_count: u64) {
    TL_NET.with(|c| c.set(c.get() + net_bytes));
    TL_COUNT.with(|c| c.set(c.get() + alloc_count));
}

/// Suspends per-thread attribution until the guard drops (the global
/// ledger keeps counting). The registry wraps its own bookkeeping in this
/// so recorder/histogram allocations never land in span deltas.
pub fn suspend_attribution() -> AttributionPause {
    let prev = TL_SUSPENDED.with(|s| s.replace(true));
    AttributionPause { prev }
}

/// Restores the previous attribution state when dropped. See
/// [`suspend_attribution`].
#[must_use = "attribution is suspended until the guard drops"]
pub struct AttributionPause {
    prev: bool,
}

impl Drop for AttributionPause {
    fn drop(&mut self) {
        TL_SUSPENDED.with(|s| s.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The switch is process-global and deliberately one-way, so every
    // test that needs it on shares this helper; tests that need it OFF
    // live in integration binaries with their own process.
    fn ensure_on() {
        enable_mem_tracking();
        assert!(mem_tracking_enabled());
    }

    #[test]
    fn global_ledger_counts_allocations() {
        ensure_on();
        let before = mem_stats();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let mid = mem_stats();
        assert!(mid.alloc_count > before.alloc_count);
        assert!(mid.live_bytes >= before.live_bytes.saturating_sub(1 << 20) + 4096);
        drop(v);
        let after = mem_stats();
        assert!(after.dealloc_count > mid.dealloc_count);
        assert!(after.peak_bytes >= 4096);
    }

    #[test]
    fn marks_measure_thread_local_deltas() {
        ensure_on();
        let mark = AllocMark::now();
        let v: Vec<u8> = Vec::with_capacity(1000);
        let d = mark.delta();
        assert!(d.net_bytes >= 1000, "net {} >= 1000", d.net_bytes);
        assert!(d.alloc_count >= 1);
        drop(v);
        let d2 = mark.delta();
        assert!(d2.net_bytes < d.net_bytes);
    }

    #[test]
    fn lap_rolls_the_mark_forward() {
        ensure_on();
        let mut mark = AllocMark::now();
        let a: Vec<u8> = Vec::with_capacity(512);
        let first = mark.lap();
        assert!(first.net_bytes >= 512);
        let second = mark.lap();
        assert!(second.net_bytes < 512, "second lap only sees new work");
        drop(a);
    }

    #[test]
    fn suspension_hides_work_from_attribution_but_not_globals() {
        ensure_on();
        let mark = AllocMark::now();
        let g_before = mem_stats();
        let hidden: Vec<u8>;
        {
            let _pause = suspend_attribution();
            hidden = Vec::with_capacity(2048);
        }
        let d = mark.delta();
        assert!(
            d.net_bytes < 2048,
            "suspended allocation attributed: {}",
            d.net_bytes
        );
        assert!(mem_stats().alloc_count > g_before.alloc_count);
        drop(hidden);
        // the unbalanced suspended free is also invisible to attribution
        let _pause = suspend_attribution();
    }

    #[test]
    fn absorb_adds_to_this_thread() {
        ensure_on();
        let mark = AllocMark::now();
        absorb_worker_alloc(12_345, 7);
        let d = mark.delta();
        assert!(d.net_bytes >= 12_345);
        assert!(d.alloc_count >= 7);
        absorb_worker_alloc(-12_345, 0);
    }

    #[test]
    fn reset_peak_collapses_to_live() {
        ensure_on();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        drop(v);
        reset_peak();
        let s = mem_stats();
        assert!(
            s.peak_bytes <= s.live_bytes + (1 << 16),
            "peak {} collapsed near live {}",
            s.peak_bytes,
            s.live_bytes
        );
    }
}
