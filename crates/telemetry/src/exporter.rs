//! The live introspection plane: an opt-in background thread serving the
//! registry over a minimal HTTP/1.1 listener on `std::net` — no
//! dependencies, no always-on cost.
//!
//! Routes:
//!
//! | path | body |
//! |---|---|
//! | `/metrics` | Prometheus text exposition of the full registry (see [`crate::prometheus`]) |
//! | `/snapshot.json` | the registry [`Snapshot`](crate::Snapshot) as JSON (what `univsa top` polls) |
//! | `/healthz` | `ok` — readiness probe |
//!
//! The exporter is started explicitly ([`MetricsServer::bind`]) or from
//! the `UNIVSA_METRICS_ADDR` environment variable
//! ([`crate::exporter_from_env`]). When neither is set, nothing here
//! runs: no thread is spawned and no socket is opened, preserving the
//! registry's zero-overhead-off guarantee (verified by
//! [`live_server_count`]).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::prometheus;
use crate::registry::Registry;

/// The environment variable that starts the exporter at process startup
/// (`UNIVSA_METRICS_ADDR=127.0.0.1:9188`, or `:9188` shorthand for
/// loopback).
pub const METRICS_ENV_VAR: &str = "UNIVSA_METRICS_ADDR";

/// Count of exporter threads currently holding an open listener — the
/// observable behind the "no socket when disabled" guarantee and its
/// regression test.
static LIVE_SERVERS: AtomicUsize = AtomicUsize::new(0);

/// Number of exporter listeners currently open in this process.
pub fn live_server_count() -> usize {
    LIVE_SERVERS.load(Ordering::SeqCst)
}

/// Resolves an `UNIVSA_METRICS_ADDR`-style spec: `HOST:PORT`, or `:PORT`
/// shorthand for `127.0.0.1:PORT`. Port 0 binds an ephemeral port
/// (reported by [`MetricsServer::local_addr`]).
fn parse_addr(spec: &str) -> std::io::Result<SocketAddr> {
    let spec = spec.trim();
    let full = if spec.starts_with(':') {
        format!("127.0.0.1{spec}")
    } else {
        spec.to_string()
    };
    full.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("no usable address in metrics spec {spec:?}"),
        )
    })
}

/// A running metrics exporter: one background thread accepting HTTP
/// connections and serving registry snapshots until
/// [`shutdown`](MetricsServer::shutdown) (or drop).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `spec` (see [`parse_addr`] forms) and spawns the exporter
    /// thread serving `registry`. The listener is nonblocking with a
    /// short poll interval, so shutdown is prompt and the port is
    /// released as soon as the thread exits.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from address resolution or `bind` — a port
    /// conflict surfaces here as `AddrInUse`, never a panic.
    pub fn bind(spec: &str, registry: &'static Registry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(parse_addr(spec)?)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        LIVE_SERVERS.fetch_add(1, Ordering::SeqCst);
        let handle = std::thread::Builder::new()
            .name("univsa-metrics".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_connection(stream, registry),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(15));
                        }
                        // transient accept errors (aborted handshakes);
                        // back off briefly and keep serving
                        Err(_) => std::thread::sleep(Duration::from_millis(15)),
                    }
                }
                drop(listener);
                LIVE_SERVERS.fetch_sub(1, Ordering::SeqCst);
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address actually bound (resolves port 0 to the ephemeral port
    /// the OS assigned).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the exporter thread and waits for it to release the port.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Answers one HTTP connection: read the request head, route, write one
/// `Connection: close` response. Serving is synchronous on the exporter
/// thread — polls arrive at human rates, not request floods.
fn serve_connection(mut stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 2048];
    let mut read = 0usize;
    while read < buf.len() {
        match stream.read(&mut buf[read..]) {
            Ok(0) => break,
            Ok(n) => {
                read += n;
                if buf[..read].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..read]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                prometheus::encode_text(&registry.snapshot()),
            ),
            "/snapshot.json" => (
                "200 OK",
                "application/json; charset=utf-8",
                registry.snapshot().to_json(),
            ),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found (try /metrics, /snapshot.json, /healthz)\n".to_string(),
            ),
        }
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal blocking HTTP GET against a local exporter, returning
    /// (status line, body).
    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        let status = head.lines().next().unwrap_or("").to_string();
        (status, body.to_string())
    }

    fn leaked_registry() -> &'static Registry {
        Box::leak(Box::new(Registry::aggregate()))
    }

    #[test]
    fn serves_healthz_metrics_and_snapshot() {
        let registry = leaked_registry();
        registry.counter("fleet.jobs", 4);
        registry.record_duration("train.epoch", Duration::from_micros(80));
        let server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        let samples = prometheus::parse_text(&body).expect("valid exposition");
        assert!(samples
            .iter()
            .any(|s| s.name == "univsa_counter_total" && s.label("name") == Some("fleet.jobs")));
        assert!(samples
            .iter()
            .any(|s| s.name == "univsa_latency_ns_bucket" && s.label("le") == Some("+Inf")));

        let (status, body) = http_get(addr, "/snapshot.json");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"schema\":\"univsa-metrics/v2\""), "{body}");
        assert!(body.contains("\"fleet.jobs\":4"), "{body}");

        let (status, _) = http_get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        server.shutdown();
    }

    #[test]
    fn bind_conflict_is_an_io_error_not_a_panic() {
        let registry = leaked_registry();
        let first = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let taken = first.local_addr();
        let err = MetricsServer::bind(&taken.to_string(), registry).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        first.shutdown();
    }

    #[test]
    fn shutdown_releases_the_port() {
        let registry = leaked_registry();
        let server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr();
        let before = live_server_count();
        assert!(before >= 1);
        server.shutdown();
        // the exact count races with other tests' servers; rebinding the
        // same port is the ground truth that ours is gone
        let rebound = MetricsServer::bind(&addr.to_string(), registry).unwrap();
        rebound.shutdown();
    }

    #[test]
    fn colon_port_shorthand_means_loopback() {
        let addr = parse_addr(":9188").unwrap();
        assert_eq!(addr.to_string(), "127.0.0.1:9188");
        assert!(parse_addr("nonsense").is_err());
    }

    #[test]
    fn non_get_is_rejected() {
        let registry = leaked_registry();
        let server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.shutdown();
    }
}
