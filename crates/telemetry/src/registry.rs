//! The telemetry registry: spans, counters, events, and export.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::histogram::Histogram;

/// What the registry does with recorded data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Nothing is recorded; every call is a no-op.
    Off,
    /// Aggregates (counters + histograms) are kept in memory and rendered
    /// as a human-readable table by [`Registry::flush`].
    Summary,
    /// Every span and event is appended to a JSONL sink as it completes;
    /// aggregates are additionally dumped at flush.
    Jsonl,
}

impl Mode {
    const OFF: u8 = 0;
    const SUMMARY: u8 = 1;
    const JSONL: u8 = 2;

    fn from_u8(v: u8) -> Mode {
        match v {
            Self::SUMMARY => Mode::Summary,
            Self::JSONL => Mode::Jsonl,
            _ => Mode::Off,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Mode::Off => Self::OFF,
            Mode::Summary => Self::SUMMARY,
            Mode::Jsonl => Self::JSONL,
        }
    }
}

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(f64::from(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => write_json_str(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn write_fields(out: &mut String, fields: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_str(out, k);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

/// Where JSONL lines go.
enum Sink {
    None,
    File(std::io::BufWriter<std::fs::File>),
    /// In-memory sink, for tests and round-trip validation.
    Buffer(Vec<u8>),
}

struct State {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    sink: Sink,
}

/// A telemetry registry: the sink for spans, counters, and events of one
/// process (usually accessed through [`crate::global`]).
///
/// When the mode is [`Mode::Off`] every entry point returns after a single
/// atomic load — no clocks are read and no locks are taken.
pub struct Registry {
    mode: AtomicU8,
    epoch: Instant,
    state: Mutex<State>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("mode", &self.mode())
            .finish_non_exhaustive()
    }
}

impl Registry {
    fn with_sink(mode: Mode, sink: Sink) -> Self {
        Self {
            mode: AtomicU8::new(mode.as_u8()),
            epoch: Instant::now(),
            state: Mutex::new(State {
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
                sink,
            }),
        }
    }

    /// A registry that records nothing.
    pub fn disabled() -> Self {
        Self::with_sink(Mode::Off, Sink::None)
    }

    /// A summary-mode registry (aggregates only).
    pub fn summary() -> Self {
        Self::with_sink(Mode::Summary, Sink::None)
    }

    /// A JSONL registry writing to an in-memory buffer (drain it with
    /// [`Registry::take_buffer`]).
    pub fn jsonl_buffer() -> Self {
        Self::with_sink(Mode::Jsonl, Sink::Buffer(Vec::new()))
    }

    /// A JSONL registry appending to the file at `path` (created or
    /// truncated).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn jsonl_file(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::with_sink(
            Mode::Jsonl,
            Sink::File(std::io::BufWriter::new(file)),
        ))
    }

    /// The active mode.
    #[inline]
    pub fn mode(&self) -> Mode {
        Mode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Whether any recording is active. One relaxed atomic load — cheap
    /// enough for per-sample hot paths.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.mode.load(Ordering::Relaxed) != Mode::OFF
    }

    /// Microseconds since the registry was created (span timestamps).
    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Opens a timed span. The span records a `layer.name` latency
    /// histogram entry on drop and, in JSONL mode, one line per span.
    /// No-op (no clock read) when the registry is off.
    #[must_use = "a span measures until it is dropped"]
    pub fn span(&self, layer: &'static str, name: &'static str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { inner: None };
        }
        Span {
            inner: Some(SpanInner {
                registry: self,
                layer,
                name,
                start_us: self.now_us(),
                start: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }

    /// Records an already-measured span (the span ended now and lasted
    /// `duration`). Hot paths that time stages with one rolling
    /// [`Instant`] use this instead of nesting RAII guards.
    pub fn record_span(
        &self,
        layer: &'static str,
        name: &'static str,
        duration: Duration,
        fields: &[(&'static str, Value)],
    ) {
        if !self.is_enabled() {
            return;
        }
        let dur_us = u64::try_from(duration.as_micros()).unwrap_or(u64::MAX);
        let start_us = self.now_us().saturating_sub(dur_us);
        self.finish_span(layer, name, start_us, duration, fields);
    }

    /// Adds `delta` to a named monotonic counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state poisoned");
        *state.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records a duration into the named latency histogram without a span.
    pub fn record_duration(&self, name: &str, duration: Duration) {
        if !self.is_enabled() {
            return;
        }
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let mut state = self.state.lock().expect("telemetry state poisoned");
        state
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(ns);
    }

    /// Emits a point-in-time event (a progress message with fields).
    pub fn event(&self, layer: &'static str, message: &str, fields: &[(&'static str, Value)]) {
        if !self.is_enabled() {
            return;
        }
        let ts = self.now_us();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        *state.counters.entry(format!("{layer}.events")).or_insert(0) += 1;
        if self.mode() == Mode::Jsonl {
            let mut line = String::with_capacity(96);
            let _ = write!(line, "{{\"type\":\"event\",\"ts_us\":{ts},\"layer\":");
            write_json_str(&mut line, layer);
            line.push_str(",\"message\":");
            write_json_str(&mut line, message);
            line.push_str(",\"fields\":");
            write_fields(&mut line, fields);
            line.push('}');
            Self::write_line(&mut state.sink, &line);
        }
    }

    fn finish_span(
        &self,
        layer: &'static str,
        name: &'static str,
        start_us: u64,
        elapsed: Duration,
        fields: &[(&'static str, Value)],
    ) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut state = self.state.lock().expect("telemetry state poisoned");
        state
            .histograms
            .entry(format!("{layer}.{name}"))
            .or_default()
            .record(ns);
        if self.mode() == Mode::Jsonl {
            let mut line = String::with_capacity(128);
            let _ = write!(
                line,
                "{{\"type\":\"span\",\"start_us\":{start_us},\"layer\":"
            );
            write_json_str(&mut line, layer);
            line.push_str(",\"name\":");
            write_json_str(&mut line, name);
            let _ = write!(line, ",\"dur_ns\":{ns},\"fields\":");
            write_fields(&mut line, fields);
            line.push('}');
            Self::write_line(&mut state.sink, &line);
        }
    }

    fn write_line(sink: &mut Sink, line: &str) {
        match sink {
            Sink::None => {}
            Sink::File(w) => {
                let _ = writeln!(w, "{line}");
            }
            Sink::Buffer(buf) => {
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
        }
    }

    /// Renders the aggregated counters and histograms as a human-readable
    /// table (empty string when nothing was recorded).
    pub fn summary_text(&self) -> String {
        let state = self.state.lock().expect("telemetry state poisoned");
        if state.counters.is_empty() && state.histograms.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        if !state.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>11} {:>11} {:>11} {:>11}",
                "span/duration", "count", "mean", "p50", "p99", "max"
            );
            for (name, h) in &state.histograms {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>11} {:>11} {:>11} {:>11}",
                    name,
                    h.count(),
                    fmt_ns(h.mean_ns() as u64),
                    fmt_ns(h.percentile_ns(0.5).unwrap_or(0)),
                    fmt_ns(h.percentile_ns(0.99).unwrap_or(0)),
                    fmt_ns(h.max_ns().unwrap_or(0)),
                );
            }
        }
        if !state.counters.is_empty() {
            let _ = writeln!(out, "{:<28} {:>8}", "counter", "value");
            for (name, v) in &state.counters {
                let _ = writeln!(out, "{:<28} {:>8}", name, v);
            }
        }
        out
    }

    /// Flushes the JSONL sink (appending one `counter` line per counter
    /// and one `histogram` line per histogram) and, in summary mode,
    /// prints the summary table to stderr.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file sink cannot be flushed.
    pub fn flush(&self) -> std::io::Result<()> {
        match self.mode() {
            Mode::Off => Ok(()),
            Mode::Summary => {
                let text = self.summary_text();
                if !text.is_empty() {
                    eprint!("--- telemetry summary ---\n{text}");
                }
                Ok(())
            }
            Mode::Jsonl => {
                let mut state = self.state.lock().expect("telemetry state poisoned");
                let counter_lines: Vec<String> = state
                    .counters
                    .iter()
                    .map(|(name, v)| {
                        let mut line = String::new();
                        line.push_str("{\"type\":\"counter\",\"name\":");
                        write_json_str(&mut line, name);
                        let _ = write!(line, ",\"value\":{v}}}");
                        line
                    })
                    .collect();
                let histogram_lines: Vec<String> = state
                    .histograms
                    .iter()
                    .map(|(name, h)| {
                        let mut line = String::new();
                        line.push_str("{\"type\":\"histogram\",\"name\":");
                        write_json_str(&mut line, name);
                        let _ = write!(
                            line,
                            ",\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                            h.count(),
                            h.sum_ns(),
                            h.mean_ns() as u64,
                            h.percentile_ns(0.5).unwrap_or(0),
                            h.percentile_ns(0.99).unwrap_or(0),
                            h.max_ns().unwrap_or(0),
                        );
                        line
                    })
                    .collect();
                for line in counter_lines.iter().chain(&histogram_lines) {
                    Self::write_line(&mut state.sink, line);
                }
                match &mut state.sink {
                    Sink::File(w) => w.flush(),
                    _ => Ok(()),
                }
            }
        }
    }

    /// Drains and returns the in-memory JSONL buffer (empty for other
    /// sinks). Useful in tests.
    pub fn take_buffer(&self) -> Vec<u8> {
        let mut state = self.state.lock().expect("telemetry state poisoned");
        match &mut state.sink {
            Sink::Buffer(buf) => std::mem::take(buf),
            _ => Vec::new(),
        }
    }

    /// Value of a counter (0 when never written).
    pub fn counter_value(&self, name: &str) -> u64 {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of a named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.histograms.get(name).cloned()
    }

    /// Names of all recorded histograms.
    pub fn histogram_names(&self) -> Vec<String> {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.histograms.keys().cloned().collect()
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

struct SpanInner<'a> {
    registry: &'a Registry,
    layer: &'static str,
    name: &'static str,
    start_us: u64,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
}

/// An open timed span; records itself when dropped. Obtained from
/// [`Registry::span`] (or [`crate::span`]). When telemetry is off the span
/// is inert and costs nothing.
#[must_use = "a span measures until it is dropped"]
pub struct Span<'a> {
    inner: Option<SpanInner<'a>>,
}

impl Span<'_> {
    /// Attaches a field to the span's JSONL record (no-op when inert).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
        self
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.registry.finish_span(
                inner.layer,
                inner.name,
                inner.start_us,
                inner.start.elapsed(),
                &inner.fields,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_is_a_no_op() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        {
            let span = reg.span("t", "x").field("k", 1u64);
            assert!(!span.is_recording());
        }
        reg.counter("c", 5);
        reg.record_duration("d", Duration::from_millis(1));
        reg.event("t", "hello", &[]);
        assert_eq!(reg.counter_value("c"), 0);
        assert!(reg.histogram_names().is_empty());
        assert!(reg.summary_text().is_empty());
        assert!(reg.take_buffer().is_empty());
        reg.flush().unwrap();
    }

    #[test]
    fn summary_aggregates_spans_and_counters() {
        let reg = Registry::summary();
        {
            let _s = reg.span("train", "epoch").field("epoch", 0u64);
        }
        reg.counter("train.samples", 32);
        reg.counter("train.samples", 8);
        let h = reg.histogram("train.epoch").expect("span recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(reg.counter_value("train.samples"), 40);
        let text = reg.summary_text();
        assert!(text.contains("train.epoch"), "{text}");
        assert!(text.contains("train.samples"), "{text}");
    }

    #[test]
    fn jsonl_lines_are_emitted_per_span_and_event() {
        let reg = Registry::jsonl_buffer();
        {
            let _s = reg
                .span("infer", "encoding")
                .field("sample", 3u64)
                .field("note", "x\"y");
        }
        reg.event("bench", "starting", &[("task", Value::Str("HAR".into()))]);
        reg.flush().unwrap();
        let buf = String::from_utf8(reg.take_buffer()).unwrap();
        let lines: Vec<&str> = buf.lines().collect();
        assert!(lines.iter().any(|l| l.contains("\"type\":\"span\"")
            && l.contains("\"layer\":\"infer\"")
            && l.contains("\"name\":\"encoding\"")
            && l.contains("\"sample\":3")
            && l.contains("x\\\"y")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"event\"") && l.contains("\"task\":\"HAR\"")));
        // flush dumps aggregates
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"histogram\"") && l.contains("infer.encoding")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"counter\"") && l.contains("bench.events")));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
