//! The telemetry registry: spans, counters, events, causal tracing, and
//! export.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::forward::{WorkerBatch, WorkerSpan};
use crate::histogram::Histogram;
use crate::mem::{self, AllocDelta, AllocMark};
use crate::quality::QualityStats;
use crate::trace::{
    self, CounterSample, Recorder, TraceEvent, VirtualEvent, WorkerTraceEvent,
    DEFAULT_TRACE_CAPACITY,
};

/// What the registry does with recorded data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Nothing is recorded; every call is a no-op.
    Off,
    /// Aggregates (counters + histograms) are kept in memory and rendered
    /// as a human-readable table by [`Registry::flush`].
    Summary,
    /// Every span and event is appended to a JSONL sink as it completes;
    /// aggregates are additionally dumped at flush.
    Jsonl,
    /// Aggregates are kept in memory like [`Mode::Summary`] but
    /// [`Registry::flush`] prints nothing — the silent collection mode the
    /// live metrics exporter uses when `UNIVSA_TELEMETRY` is unset.
    Aggregate,
}

impl Mode {
    const OFF: u8 = 0;
    const SUMMARY: u8 = 1;
    const JSONL: u8 = 2;
    const AGGREGATE: u8 = 3;

    fn from_u8(v: u8) -> Mode {
        match v {
            Self::SUMMARY => Mode::Summary,
            Self::JSONL => Mode::Jsonl,
            Self::AGGREGATE => Mode::Aggregate,
            _ => Mode::Off,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Mode::Off => Self::OFF,
            Mode::Summary => Self::SUMMARY,
            Mode::Jsonl => Self::JSONL,
            Mode::Aggregate => Self::AGGREGATE,
        }
    }
}

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(f64::from(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Writes `s` as a JSON string literal. The output is pure ASCII: control
/// characters (including DEL) and all non-ASCII code points are escaped
/// as `\uXXXX` (UTF-16 units, so astral-plane characters become surrogate
/// pairs), which keeps the JSONL stream robust against consumers that
/// mishandle raw multi-byte sequences.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || (c as u32) == 0x7f => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c if c.is_ascii() => out.push(c),
            c => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{:04x}", unit);
                }
            }
        }
    }
    out.push('"');
}

/// Writes a [`Value`] as a JSON value (non-finite floats become `null`).
pub(crate) fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => write_json_string(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn write_fields(out: &mut String, fields: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, k);
        out.push(':');
        write_json_value(out, v);
    }
    out.push('}');
}

/// Where JSONL lines go.
enum Sink {
    None,
    File(std::io::BufWriter<std::fs::File>),
    /// In-memory sink, for tests and round-trip validation.
    Buffer(Vec<u8>),
}

/// Aggregated allocation behaviour of one span name (`layer.name`),
/// accumulated whenever memory tracking is on — the rows of the
/// `univsa profile --mem` table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemAgg {
    /// Spans observed under this name.
    pub spans: u64,
    /// Summed net bytes (allocated − freed) across those spans.
    pub net_bytes: i64,
    /// Summed allocation counts.
    pub alloc_count: u64,
    /// Largest global peak observed at any of those spans' close.
    pub max_peak_bytes: u64,
}

struct State {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    mem_aggregates: BTreeMap<String, MemAgg>,
    quality: QualityStats,
    sink: Sink,
    /// First I/O error hit while writing JSONL lines; surfaced at flush
    /// instead of panicking mid-measurement.
    sink_error: Option<std::io::Error>,
    /// The causal flight recorder, present while tracing is enabled.
    recorder: Option<Recorder>,
    /// Where [`Registry::flush`] writes the Chrome trace, when configured
    /// via `UNIVSA_TELEMETRY=trace:<path>`.
    trace_path: Option<String>,
}

/// A telemetry registry: the sink for spans, counters, events, and causal
/// traces of one process (usually accessed through [`crate::global`]).
///
/// When the mode is [`Mode::Off`] and tracing is not enabled, every entry
/// point returns after a single atomic load — no clocks are read and no
/// locks are taken.
pub struct Registry {
    mode: AtomicU8,
    tracing: AtomicBool,
    next_span_id: AtomicU64,
    epoch: Instant,
    state: Mutex<State>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("mode", &self.mode())
            .field("tracing", &self.is_tracing())
            .finish_non_exhaustive()
    }
}

impl Drop for Registry {
    /// Best-effort flush of a buffered file sink so JSONL lines are not
    /// lost when a registry is dropped without an explicit
    /// [`flush`](Registry::flush) (the global registry never drops; this
    /// protects locally constructed registries).
    fn drop(&mut self) {
        if let Ok(mut state) = self.state.lock() {
            if let Sink::File(w) = &mut state.sink {
                let _ = w.flush();
            }
        }
    }
}

impl Registry {
    fn with_sink(mode: Mode, sink: Sink) -> Self {
        Self {
            mode: AtomicU8::new(mode.as_u8()),
            tracing: AtomicBool::new(false),
            next_span_id: AtomicU64::new(1),
            epoch: Instant::now(),
            state: Mutex::new(State {
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
                mem_aggregates: BTreeMap::new(),
                quality: QualityStats::default(),
                sink,
                sink_error: None,
                recorder: None,
                trace_path: None,
            }),
        }
    }

    /// A registry that records nothing.
    pub fn disabled() -> Self {
        Self::with_sink(Mode::Off, Sink::None)
    }

    /// A summary-mode registry (aggregates only).
    pub fn summary() -> Self {
        Self::with_sink(Mode::Summary, Sink::None)
    }

    /// A silent aggregation registry: counters and histograms collect in
    /// memory for [`Registry::snapshot`] consumers, nothing prints at
    /// flush.
    pub fn aggregate() -> Self {
        Self::with_sink(Mode::Aggregate, Sink::None)
    }

    /// Upgrades an [`Mode::Off`] registry to silent in-memory aggregation
    /// so live-metrics consumers (the `/metrics` exporter) have data to
    /// serve even when `UNIVSA_TELEMETRY` is unset. Registries already
    /// recording (summary/JSONL/aggregate) are left untouched.
    pub fn enable_aggregation(&self) {
        let _ = self.mode.compare_exchange(
            Mode::OFF,
            Mode::AGGREGATE,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// A JSONL registry writing to an in-memory buffer (drain it with
    /// [`Registry::take_buffer`]).
    pub fn jsonl_buffer() -> Self {
        Self::with_sink(Mode::Jsonl, Sink::Buffer(Vec::new()))
    }

    /// A JSONL registry appending to the file at `path` (created or
    /// truncated).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn jsonl_file(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::with_sink(
            Mode::Jsonl,
            Sink::File(std::io::BufWriter::new(file)),
        ))
    }

    /// A registry with causal tracing enabled whose [`Registry::flush`]
    /// writes the Chrome trace-event JSON to `path`
    /// (`UNIVSA_TELEMETRY=trace:<path>`).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if `path` cannot be created (probed eagerly
    /// so a typo fails at startup, not after the measured run).
    pub fn trace_file(path: &str) -> std::io::Result<Self> {
        // probe writability now; the real write happens at flush
        std::fs::File::create(path)?;
        let reg = Self::with_sink(Mode::Off, Sink::None);
        reg.enable_tracing(DEFAULT_TRACE_CAPACITY);
        reg.state
            .lock()
            .expect("telemetry state poisoned")
            .trace_path = Some(path.to_string());
        Ok(reg)
    }

    /// The active mode.
    #[inline]
    pub fn mode(&self) -> Mode {
        Mode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Whether any recording is active. One relaxed atomic load — cheap
    /// enough for per-sample hot paths.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.mode.load(Ordering::Relaxed) != Mode::OFF || self.is_tracing()
    }

    /// Whether the causal flight recorder is collecting (one atomic load).
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Switches the causal flight recorder on, bounded to `capacity`
    /// retained events (further events are counted and dropped). Spans
    /// recorded from now on carry ids, causal parents, and lane labels.
    pub fn enable_tracing(&self, capacity: usize) {
        let _pause = mem::suspend_attribution();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        if state.recorder.is_none() {
            state.recorder = Some(Recorder::with_capacity(capacity));
        }
        self.tracing.store(true, Ordering::Relaxed);
        // traces carry allocation deltas and heap counter tracks
        mem::enable_mem_tracking();
    }

    /// Stops the flight recorder and returns everything it held.
    pub fn take_recorder(&self) -> Recorder {
        self.tracing.store(false, Ordering::Relaxed);
        let mut state = self.state.lock().expect("telemetry state poisoned");
        state.recorder.take().unwrap_or_default()
    }

    /// A snapshot of the flight recorder (empty when tracing was never
    /// enabled); recording continues.
    pub fn recorder_snapshot(&self) -> Recorder {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.recorder.clone().unwrap_or_default()
    }

    /// Renders the current flight-recorder contents as Chrome trace-event
    /// JSON (see [`trace::chrome_trace_json`]).
    pub fn chrome_trace_json(&self) -> String {
        trace::chrome_trace_json(&self.recorder_snapshot())
    }

    /// Microseconds since the registry was created (span timestamps).
    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Nanoseconds since the registry was created (trace timestamps).
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Assigns a fresh span id and captures the causal parent (the
    /// innermost open span on this thread), pushing the new id onto the
    /// thread's span stack.
    fn open_trace_span(&self) -> (u64, Option<u64>) {
        let id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent = trace::current_parent();
        trace::push_span(id);
        (id, parent)
    }

    /// Opens a timed span. The span records a `layer.name` latency
    /// histogram entry on drop and, in JSONL mode, one line per span;
    /// while tracing it additionally lands in the flight recorder with a
    /// stable id, causal parent, and lane. No-op (no clock read) when the
    /// registry is off.
    #[must_use = "a span measures until it is dropped"]
    pub fn span(&self, layer: &'static str, name: &'static str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { inner: None };
        }
        let ids = {
            // the span-stack push must not land in the parent's window
            let _pause = mem::suspend_attribution();
            self.is_tracing().then(|| self.open_trace_span())
        };
        Span {
            inner: Some(SpanInner {
                registry: self,
                layer,
                name,
                start_us: self.now_us(),
                start_ns: self.now_ns(),
                start: Instant::now(),
                fields: Vec::new(),
                ids,
                mem: mem::mem_tracking_enabled().then(AllocMark::now),
            }),
        }
    }

    /// Records an already-measured span (the span ended now and lasted
    /// `duration`). Hot paths that time stages with one rolling
    /// [`Instant`] use this instead of nesting RAII guards. While tracing
    /// the span gets an id and attaches to the innermost open span.
    pub fn record_span(
        &self,
        layer: &'static str,
        name: &'static str,
        duration: Duration,
        fields: &[(&'static str, Value)],
    ) {
        self.record_span_inner(layer, name, duration, fields, None);
    }

    /// [`record_span`](Self::record_span) carrying allocation deltas the
    /// caller measured itself (by lapping an [`AllocMark`] alongside its
    /// rolling timer).
    pub fn record_span_mem(
        &self,
        layer: &'static str,
        name: &'static str,
        duration: Duration,
        fields: &[(&'static str, Value)],
        mem: AllocDelta,
    ) {
        self.record_span_inner(layer, name, duration, fields, Some(mem));
    }

    fn record_span_inner(
        &self,
        layer: &'static str,
        name: &'static str,
        duration: Duration,
        fields: &[(&'static str, Value)],
        mem: Option<AllocDelta>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let dur_us = u64::try_from(duration.as_micros()).unwrap_or(u64::MAX);
        let start_us = self.now_us().saturating_sub(dur_us);
        let ids = self.is_tracing().then(|| {
            let id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
            (id, trace::current_parent())
        });
        let dur_ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let start_ns = self.now_ns().saturating_sub(dur_ns);
        self.finish_span(layer, name, start_us, start_ns, duration, fields, ids, mem);
    }

    /// Opens a trace-only region: it lands in the flight recorder with an
    /// id/parent/lane like any span but skips the histogram and JSONL
    /// sinks — the shape `univsa-par` uses for per-chunk worker activity,
    /// which would otherwise flood the aggregate views. Inert (and free)
    /// when tracing is off.
    #[must_use = "a region measures until it is dropped"]
    pub fn trace_region(&self, layer: &'static str, name: &'static str) -> TraceRegion<'_> {
        if !self.is_tracing() {
            return TraceRegion { inner: None };
        }
        let (id, parent) = self.open_trace_span();
        TraceRegion {
            inner: Some(TraceRegionInner {
                registry: self,
                layer,
                name,
                id,
                parent,
                start_ns: self.now_ns(),
                start: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }

    /// Records one virtual-time event (a clock of ticks — e.g. hardware
    /// cycles — rather than nanoseconds) into the flight recorder, under
    /// the given track label. No-op when tracing is off.
    pub fn virtual_span(
        &self,
        track: &str,
        name: &str,
        start: u64,
        dur: u64,
        fields: &[(&'static str, Value)],
    ) {
        if !self.is_tracing() {
            return;
        }
        let _pause = mem::suspend_attribution();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        if let Some(rec) = state.recorder.as_mut() {
            rec.record_virtual(VirtualEvent {
                track: track.to_string(),
                name: name.to_string(),
                start,
                dur,
                fields: fields.to_vec(),
            });
        }
    }

    /// Adds `delta` to a named monotonic counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let _pause = mem::suspend_attribution();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        *state.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Raises a named counter to at least `value` — the high-water-mark
    /// shape (peak bytes, fleet size) where `+=` would be meaningless.
    pub fn counter_max(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let _pause = mem::suspend_attribution();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        let entry = state.counters.entry(name.to_string()).or_insert(0);
        *entry = (*entry).max(value);
    }

    /// Records one prediction (winning class + similarity margin) into
    /// the quality stats — the per-inference tap both engines call from
    /// their already-gated telemetry blocks.
    pub fn record_prediction(&self, class: u32, margin: u64) {
        if !self.is_enabled() {
            return;
        }
        let _pause = mem::suspend_attribution();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        state.quality.record_prediction(class, margin);
    }

    /// Records one labelled prediction outcome into the quality stats'
    /// confusion/calibration accumulator. Called by evaluation layers
    /// that know the true label; the margin sketch itself is fed by
    /// [`Registry::record_prediction`], so the two never double-count.
    pub fn record_outcome(&self, truth: u32, predicted: u32, margin: u64) {
        if !self.is_enabled() {
            return;
        }
        let _pause = mem::suspend_attribution();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        state.quality.record_outcome(truth, predicted, margin);
    }

    /// Declares which task the quality stream belongs to (first non-empty
    /// declaration wins; surfaces as the `task` label on `/metrics`).
    pub fn set_quality_task(&self, task: &str) {
        if !self.is_enabled() {
            return;
        }
        let _pause = mem::suspend_attribution();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        if state.quality.task.is_none() {
            state.quality.task = Some(task.to_string());
        }
    }

    /// A clone of the aggregated quality stats.
    pub fn quality(&self) -> QualityStats {
        let _pause = mem::suspend_attribution();
        let state = self.state.lock().expect("telemetry state poisoned");
        state.quality.clone()
    }

    /// Nanoseconds since this registry was created — the clock worker
    /// batch timestamps and handshake offset estimates are expressed in.
    pub fn clock_ns(&self) -> u64 {
        self.now_ns()
    }

    /// Drains everything a fleet worker accumulated since the previous
    /// drain into a forwardable [`WorkerBatch`]: counter deltas, the
    /// completed spans in the flight recorder, and the recorder's drop
    /// count. Recording continues — the next batch picks up where this
    /// one ended. Allocation fields come back zeroed; the worker loop
    /// fills them from its own allocator-ledger deltas.
    pub fn take_worker_batch(&self) -> WorkerBatch {
        let _pause = mem::suspend_attribution();
        let clock_ns = self.now_ns();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        let counters: Vec<(String, u64)> =
            std::mem::take(&mut state.counters).into_iter().collect();
        let mut spans = Vec::new();
        let mut dropped = 0;
        if let Some(rec) = state.recorder.as_mut() {
            let events = std::mem::take(&mut rec.events);
            spans.reserve(events.len());
            for e in events {
                spans.push(WorkerSpan {
                    id: e.id,
                    parent: e.parent,
                    lane: rec
                        .lanes
                        .get(e.lane as usize)
                        .cloned()
                        .unwrap_or_else(|| "main".to_string()),
                    layer: e.layer.to_string(),
                    name: e.name.to_string(),
                    start_ns: e.start_ns,
                    dur_ns: e.dur_ns,
                });
            }
            // batches carry wall-clock spans only; virtual/heap traffic
            // would duplicate what the supervisor already measures
            rec.virtual_events.clear();
            rec.counter_samples.clear();
            dropped = std::mem::take(&mut rec.dropped);
        }
        WorkerBatch {
            clock_ns,
            dropped,
            net_bytes: 0,
            alloc_count: 0,
            peak_bytes: 0,
            counters,
            spans,
            quality: std::mem::take(&mut state.quality),
        }
    }

    /// Merges a worker's forwarded batch into this (supervisor-side)
    /// registry. Counters are re-keyed under `worker.<slot>.` and rolled
    /// up under `fleet.`; allocation stats feed matching counters, with
    /// peaks folded in by `max`. While the flight recorder is collecting,
    /// spans are re-mapped into this registry's id space, shifted onto
    /// its clock by `clock_offset_ns` (the handshake estimate), and —
    /// when they had no in-worker parent — parented under `parent`, the
    /// supervisor's dispatching task region. No-op when telemetry is off.
    pub fn absorb_worker_batch(
        &self,
        slot: u32,
        batch: &WorkerBatch,
        clock_offset_ns: i64,
        parent: Option<u64>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let _pause = mem::suspend_attribution();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        for (name, delta) in &batch.counters {
            *state
                .counters
                .entry(format!("worker.{slot}.{name}"))
                .or_insert(0) += delta;
            *state.counters.entry(format!("fleet.{name}")).or_insert(0) += delta;
        }
        if batch.alloc_count > 0 {
            *state
                .counters
                .entry(format!("worker.{slot}.alloc_count"))
                .or_insert(0) += batch.alloc_count;
            *state
                .counters
                .entry("fleet.alloc_count".to_string())
                .or_insert(0) += batch.alloc_count;
        }
        if batch.peak_bytes > 0 {
            for key in [
                format!("worker.{slot}.peak_alloc_bytes"),
                "fleet.peak_alloc_bytes".to_string(),
            ] {
                let entry = state.counters.entry(key).or_insert(0);
                *entry = (*entry).max(batch.peak_bytes);
            }
        }
        state.quality.merge(&batch.quality);
        if let Some(rec) = state.recorder.as_mut() {
            let mut remap: BTreeMap<u64, u64> = BTreeMap::new();
            for span in &batch.spans {
                remap.insert(span.id, self.next_span_id.fetch_add(1, Ordering::Relaxed));
            }
            for span in &batch.spans {
                let start_ns = if clock_offset_ns >= 0 {
                    span.start_ns.saturating_add(clock_offset_ns as u64)
                } else {
                    span.start_ns.saturating_sub(clock_offset_ns.unsigned_abs())
                };
                rec.record_worker(WorkerTraceEvent {
                    slot,
                    id: remap[&span.id],
                    parent: span.parent.and_then(|p| remap.get(&p).copied()).or(parent),
                    lane: span.lane.clone(),
                    layer: span.layer.clone(),
                    name: span.name.clone(),
                    start_ns,
                    dur_ns: span.dur_ns,
                });
            }
            rec.dropped += batch.dropped;
        }
    }

    /// Records a duration into the named latency histogram without a span.
    pub fn record_duration(&self, name: &str, duration: Duration) {
        if !self.is_enabled() {
            return;
        }
        let _pause = mem::suspend_attribution();
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let mut state = self.state.lock().expect("telemetry state poisoned");
        state
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(ns);
    }

    /// Emits a point-in-time event (a progress message with fields).
    pub fn event(&self, layer: &'static str, message: &str, fields: &[(&'static str, Value)]) {
        if !self.is_enabled() {
            return;
        }
        let _pause = mem::suspend_attribution();
        let ts = self.now_us();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        *state.counters.entry(format!("{layer}.events")).or_insert(0) += 1;
        if self.mode() == Mode::Jsonl {
            let mut line = String::with_capacity(96);
            let _ = write!(line, "{{\"type\":\"event\",\"ts_us\":{ts},\"layer\":");
            write_json_string(&mut line, layer);
            line.push_str(",\"message\":");
            write_json_string(&mut line, message);
            line.push_str(",\"fields\":");
            write_fields(&mut line, fields);
            line.push('}');
            Self::write_line(&mut state, &line);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_span(
        &self,
        layer: &'static str,
        name: &'static str,
        start_us: u64,
        start_ns: u64,
        elapsed: Duration,
        fields: &[(&'static str, Value)],
        ids: Option<(u64, Option<u64>)>,
        mem: Option<AllocDelta>,
    ) {
        // the registry's own bookkeeping must not pollute span attribution
        let _pause = mem::suspend_attribution();
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        // allocation deltas ride along as ordinary span fields
        let with_mem: Option<Vec<(&'static str, Value)>> = mem.map(|d| {
            let mut all = Vec::with_capacity(fields.len() + 3);
            all.extend_from_slice(fields);
            all.push(("alloc_delta_bytes", Value::I64(d.net_bytes)));
            all.push(("peak_bytes", Value::U64(d.peak_bytes)));
            all.push(("alloc_count", Value::U64(d.alloc_count)));
            all
        });
        let fields: &[(&'static str, Value)] = with_mem.as_deref().unwrap_or(fields);
        let lane = ids.is_some().then(trace::current_lane);
        let mut state = self.state.lock().expect("telemetry state poisoned");
        state
            .histograms
            .entry(format!("{layer}.{name}"))
            .or_default()
            .record(ns);
        if let Some(d) = mem {
            let agg = state
                .mem_aggregates
                .entry(format!("{layer}.{name}"))
                .or_default();
            agg.spans += 1;
            agg.net_bytes += d.net_bytes;
            agg.alloc_count += d.alloc_count;
            agg.max_peak_bytes = agg.max_peak_bytes.max(d.peak_bytes);
        }
        if let (Some((id, parent)), Some(lane)) = (ids, lane.as_deref()) {
            if let Some(rec) = state.recorder.as_mut() {
                let lane = rec.lane_id(lane);
                rec.record(TraceEvent {
                    id,
                    parent,
                    lane,
                    layer,
                    name,
                    start_ns,
                    dur_ns: ns,
                    fields: fields.to_vec(),
                });
                // heap counter track: one sample at each span close
                if mem.is_some() {
                    let stats = mem::mem_stats();
                    rec.record_counter(CounterSample {
                        ts_ns: start_ns.saturating_add(ns),
                        live_bytes: stats.live_bytes,
                        peak_bytes: stats.peak_bytes,
                    });
                }
            }
        }
        if self.mode() == Mode::Jsonl {
            let mut line = String::with_capacity(128);
            let _ = write!(
                line,
                "{{\"type\":\"span\",\"start_us\":{start_us},\"layer\":"
            );
            write_json_string(&mut line, layer);
            line.push_str(",\"name\":");
            write_json_string(&mut line, name);
            if let Some((id, parent)) = ids {
                let _ = write!(line, ",\"id\":{id}");
                if let Some(parent) = parent {
                    let _ = write!(line, ",\"parent\":{parent}");
                }
            }
            let _ = write!(line, ",\"dur_ns\":{ns},\"fields\":");
            write_fields(&mut line, fields);
            line.push('}');
            Self::write_line(&mut state, &line);
        }
    }

    /// Records a finished trace-only region into the flight recorder.
    #[allow(clippy::too_many_arguments)]
    fn finish_trace_region(
        &self,
        layer: &'static str,
        name: &'static str,
        id: u64,
        parent: Option<u64>,
        start_ns: u64,
        elapsed: Duration,
        fields: Vec<(&'static str, Value)>,
    ) {
        let _pause = mem::suspend_attribution();
        let lane = trace::current_lane();
        let mut state = self.state.lock().expect("telemetry state poisoned");
        if let Some(rec) = state.recorder.as_mut() {
            let lane = rec.lane_id(&lane);
            rec.record(TraceEvent {
                id,
                parent,
                lane,
                layer,
                name,
                start_ns,
                dur_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
                fields,
            });
        }
    }

    fn write_line(state: &mut State, line: &str) {
        match &mut state.sink {
            Sink::None => {}
            Sink::File(w) => {
                if let Err(e) = writeln!(w, "{line}") {
                    if state.sink_error.is_none() {
                        state.sink_error = Some(e);
                    }
                }
            }
            Sink::Buffer(buf) => {
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
        }
    }

    /// Renders the aggregated counters and histograms as a human-readable
    /// table (empty string when nothing was recorded).
    pub fn summary_text(&self) -> String {
        let state = self.state.lock().expect("telemetry state poisoned");
        if state.counters.is_empty() && state.histograms.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        if !state.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>11} {:>11} {:>11} {:>11}",
                "span/duration", "count", "mean", "p50", "p99", "max"
            );
            for (name, h) in &state.histograms {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>11} {:>11} {:>11} {:>11}",
                    name,
                    h.count(),
                    fmt_ns(h.mean_ns() as u64),
                    fmt_ns(h.percentile_ns(0.5).unwrap_or(0)),
                    fmt_ns(h.percentile_ns(0.99).unwrap_or(0)),
                    fmt_ns(h.max_ns().unwrap_or(0)),
                );
            }
        }
        if !state.counters.is_empty() {
            let _ = writeln!(out, "{:<28} {:>8}", "counter", "value");
            for (name, v) in &state.counters {
                let _ = writeln!(out, "{:<28} {:>8}", name, v);
            }
        }
        out
    }

    /// Flushes the JSONL sink (appending one `counter` line per counter
    /// and one `histogram` line per histogram), prints the summary table
    /// to stderr in summary mode, and writes the Chrome trace file when
    /// one was configured (`UNIVSA_TELEMETRY=trace:<path>`).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error hit while writing or flushing a sink
    /// (deferred line-write errors surface here rather than panicking at
    /// the recording site).
    pub fn flush(&self) -> std::io::Result<()> {
        match self.mode() {
            // aggregate mode collects for live snapshot consumers only;
            // printing at exit would break the off-mode UX it rides on
            Mode::Off | Mode::Aggregate => {}
            Mode::Summary => {
                let text = self.summary_text();
                if !text.is_empty() {
                    eprint!("--- telemetry summary ---\n{text}");
                }
            }
            Mode::Jsonl => {
                let mut state = self.state.lock().expect("telemetry state poisoned");
                let counter_lines: Vec<String> = state
                    .counters
                    .iter()
                    .map(|(name, v)| {
                        let mut line = String::new();
                        line.push_str("{\"type\":\"counter\",\"name\":");
                        write_json_string(&mut line, name);
                        let _ = write!(line, ",\"value\":{v}}}");
                        line
                    })
                    .collect();
                let histogram_lines: Vec<String> = state
                    .histograms
                    .iter()
                    .map(|(name, h)| {
                        let mut line = String::new();
                        line.push_str("{\"type\":\"histogram\",\"name\":");
                        write_json_string(&mut line, name);
                        let _ = write!(
                            line,
                            ",\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                            h.count(),
                            h.sum_ns(),
                            h.mean_ns() as u64,
                            h.percentile_ns(0.5).unwrap_or(0),
                            h.percentile_ns(0.99).unwrap_or(0),
                            h.max_ns().unwrap_or(0),
                        );
                        line
                    })
                    .collect();
                for line in counter_lines.iter().chain(&histogram_lines) {
                    Self::write_line(&mut state, line);
                }
                if let Some(e) = state.sink_error.take() {
                    return Err(e);
                }
                if let Sink::File(w) = &mut state.sink {
                    w.flush()?;
                }
            }
        }
        let trace_path = {
            let state = self.state.lock().expect("telemetry state poisoned");
            state.trace_path.clone()
        };
        if let Some(path) = trace_path {
            std::fs::write(&path, self.chrome_trace_json())?;
        }
        Ok(())
    }

    /// Drains and returns the in-memory JSONL buffer (empty for other
    /// sinks). Useful in tests.
    pub fn take_buffer(&self) -> Vec<u8> {
        let mut state = self.state.lock().expect("telemetry state poisoned");
        match &mut state.sink {
            Sink::Buffer(buf) => std::mem::take(buf),
            _ => Vec::new(),
        }
    }

    /// Value of a counter (0 when never written).
    pub fn counter_value(&self, name: &str) -> u64 {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of a named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.histograms.get(name).cloned()
    }

    /// Names of all recorded histograms.
    pub fn histogram_names(&self) -> Vec<String> {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.histograms.keys().cloned().collect()
    }

    /// Per-span-name allocation aggregates (`layer.name` keyed), sorted
    /// by name. Empty unless memory tracking was on while spans closed.
    pub fn mem_aggregates(&self) -> Vec<(String, MemAgg)> {
        let state = self.state.lock().expect("telemetry state poisoned");
        state
            .mem_aggregates
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// A consistent point-in-time snapshot of everything the registry has
    /// aggregated: counters, histograms, and per-span allocation rows are
    /// all cloned under **one** lock acquisition, so the figures a
    /// `/metrics` scrape or `/snapshot.json` poll serves agree with each
    /// other even while other threads keep recording. The process-global
    /// allocation ledger is sampled in the same instant.
    pub fn snapshot(&self) -> crate::snapshot::Snapshot {
        let _pause = mem::suspend_attribution();
        let uptime_ns = self.now_ns();
        let state = self.state.lock().expect("telemetry state poisoned");
        crate::snapshot::Snapshot {
            uptime_ns,
            mem: mem::mem_stats(),
            counters: state.counters.clone(),
            histograms: state.histograms.clone(),
            mem_aggregates: state.mem_aggregates.clone(),
            quality: state.quality.clone(),
        }
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

struct SpanInner<'a> {
    registry: &'a Registry,
    layer: &'static str,
    name: &'static str,
    start_us: u64,
    start_ns: u64,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
    /// `(id, parent)` while tracing; the id sits on the thread's span
    /// stack until the span drops.
    ids: Option<(u64, Option<u64>)>,
    /// Thread-local allocation mark captured at open while memory
    /// tracking is on; its delta becomes the span's allocation fields.
    mem: Option<AllocMark>,
}

/// An open timed span; records itself when dropped. Obtained from
/// [`Registry::span`] (or [`crate::span`]). When telemetry is off the span
/// is inert and costs nothing.
#[must_use = "a span measures until it is dropped"]
pub struct Span<'a> {
    inner: Option<SpanInner<'a>>,
}

impl Span<'_> {
    /// Attaches a field to the span's JSONL record (no-op when inert).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
        self
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The span's trace id, while tracing.
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().and_then(|i| i.ids).map(|(id, _)| id)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            // measure before any bookkeeping below can allocate
            let mem = inner.mem.as_ref().map(AllocMark::delta);
            if let Some((id, _)) = inner.ids {
                trace::pop_span(id);
            }
            inner.registry.finish_span(
                inner.layer,
                inner.name,
                inner.start_us,
                inner.start_ns,
                inner.start.elapsed(),
                &inner.fields,
                inner.ids,
                mem,
            );
        }
    }
}

struct TraceRegionInner<'a> {
    registry: &'a Registry,
    layer: &'static str,
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start_ns: u64,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
}

/// An open trace-only region (flight recorder only — no histogram, no
/// JSONL line). Obtained from [`Registry::trace_region`]; inert and free
/// when tracing is off.
#[must_use = "a region measures until it is dropped"]
pub struct TraceRegion<'a> {
    inner: Option<TraceRegionInner<'a>>,
}

impl TraceRegion<'_> {
    /// Attaches a field to the recorded event (no-op when inert).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
        self
    }

    /// Whether this region is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The region's trace id, while recording.
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }
}

impl Drop for TraceRegion<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            trace::pop_span(inner.id);
            inner.registry.finish_trace_region(
                inner.layer,
                inner.name,
                inner.id,
                inner.parent,
                inner.start_ns,
                inner.start.elapsed(),
                inner.fields,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_is_a_no_op() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        {
            let span = reg.span("t", "x").field("k", 1u64);
            assert!(!span.is_recording());
        }
        {
            let region = reg.trace_region("t", "r");
            assert!(!region.is_recording());
        }
        reg.counter("c", 5);
        reg.record_duration("d", Duration::from_millis(1));
        reg.event("t", "hello", &[]);
        reg.virtual_span("track", "x", 0, 1, &[]);
        assert_eq!(reg.counter_value("c"), 0);
        assert!(reg.histogram_names().is_empty());
        assert!(reg.summary_text().is_empty());
        assert!(reg.take_buffer().is_empty());
        assert!(reg.recorder_snapshot().events.is_empty());
        reg.flush().unwrap();
    }

    #[test]
    fn summary_aggregates_spans_and_counters() {
        let reg = Registry::summary();
        {
            let _s = reg.span("train", "epoch").field("epoch", 0u64);
        }
        reg.counter("train.samples", 32);
        reg.counter("train.samples", 8);
        let h = reg.histogram("train.epoch").expect("span recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(reg.counter_value("train.samples"), 40);
        let text = reg.summary_text();
        assert!(text.contains("train.epoch"), "{text}");
        assert!(text.contains("train.samples"), "{text}");
    }

    #[test]
    fn jsonl_lines_are_emitted_per_span_and_event() {
        let reg = Registry::jsonl_buffer();
        {
            let _s = reg
                .span("infer", "encoding")
                .field("sample", 3u64)
                .field("note", "x\"y");
        }
        reg.event("bench", "starting", &[("task", Value::Str("HAR".into()))]);
        reg.flush().unwrap();
        let buf = String::from_utf8(reg.take_buffer()).unwrap();
        let lines: Vec<&str> = buf.lines().collect();
        assert!(lines.iter().any(|l| l.contains("\"type\":\"span\"")
            && l.contains("\"layer\":\"infer\"")
            && l.contains("\"name\":\"encoding\"")
            && l.contains("\"sample\":3")
            && l.contains("x\\\"y")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"event\"") && l.contains("\"task\":\"HAR\"")));
        // flush dumps aggregates
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"histogram\"") && l.contains("infer.encoding")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"counter\"") && l.contains("bench.events")));
    }

    #[test]
    fn json_strings_escape_control_and_non_ascii() {
        let mut out = String::new();
        write_json_string(&mut out, "a\u{1}b\u{7f}µ😀\"\\\n");
        assert_eq!(out, "\"a\\u0001b\\u007f\\u00b5\\ud83d\\ude00\\\"\\\\\\n\"");
        // the escaped stream is pure ASCII
        assert!(out.is_ascii());
    }

    #[test]
    fn tracing_assigns_ids_parents_and_lanes() {
        let reg = Registry::disabled();
        reg.enable_tracing(1024);
        assert!(reg.is_enabled(), "tracing alone must enable recording");
        {
            let outer = reg.span("train", "epoch").field("epoch", 0u64);
            let outer_id = outer.trace_id().expect("tracing assigns ids");
            {
                let inner = reg.trace_region("par", "train.value_maps");
                assert_eq!(
                    reg.recorder_snapshot().events.len(),
                    0,
                    "events land at drop"
                );
                let inner_id = inner.trace_id().unwrap();
                assert_ne!(inner_id, outer_id);
            }
            reg.record_span("infer", "dvp", Duration::from_micros(5), &[]);
        }
        let rec = reg.take_recorder();
        assert!(!reg.is_tracing());
        assert_eq!(rec.events.len(), 3);
        let outer = rec.events.iter().find(|e| e.name == "epoch").unwrap();
        let region = rec
            .events
            .iter()
            .find(|e| e.name == "train.value_maps")
            .unwrap();
        let stage = rec.events.iter().find(|e| e.name == "dvp").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(region.parent, Some(outer.id));
        assert_eq!(stage.parent, Some(outer.id));
        assert_eq!(rec.lanes[outer.lane as usize], "main");
        // trace-only regions must not pollute the aggregate views
        assert!(reg.histogram("par.train.value_maps").is_none());
        assert!(reg.histogram("train.epoch").is_some());
    }

    #[test]
    fn virtual_spans_record_ticks() {
        let reg = Registry::disabled();
        reg.enable_tracing(16);
        reg.virtual_span("BiConv", "sample 0", 640, 5760, &[("sample", 0u64.into())]);
        let rec = reg.take_recorder();
        assert_eq!(rec.virtual_events.len(), 1);
        assert_eq!(rec.virtual_events[0].track, "BiConv");
        assert_eq!(rec.virtual_events[0].start, 640);
        assert_eq!(rec.virtual_events[0].dur, 5760);
    }

    #[test]
    fn trace_spans_also_reach_jsonl_with_ids() {
        let reg = Registry::jsonl_buffer();
        reg.enable_tracing(16);
        {
            let _outer = reg.span("a", "outer");
            let _inner = reg.span("a", "inner");
        }
        let buf = String::from_utf8(reg.take_buffer()).unwrap();
        let inner_line = buf.lines().find(|l| l.contains("\"inner\"")).unwrap();
        assert!(inner_line.contains("\"id\":"), "{inner_line}");
        assert!(inner_line.contains("\"parent\":"), "{inner_line}");
    }

    #[test]
    fn counter_max_keeps_the_high_water_mark() {
        let reg = Registry::summary();
        reg.counter_max("peak", 100);
        reg.counter_max("peak", 40);
        assert_eq!(reg.counter_value("peak"), 100);
        reg.counter_max("peak", 250);
        assert_eq!(reg.counter_value("peak"), 250);
        let off = Registry::disabled();
        off.counter_max("peak", 9);
        assert_eq!(off.counter_value("peak"), 0);
    }

    #[test]
    fn worker_batch_drains_counters_and_spans_but_keeps_recording() {
        let reg = Registry::disabled();
        reg.enable_tracing(64);
        {
            let outer = reg.span("worker", "task");
            assert!(outer.is_recording());
            let _inner = reg.trace_region("infer", "encoding");
        }
        reg.counter("jobs", 1);
        reg.record_prediction(2, 40);
        reg.record_outcome(2, 2, 40);
        let batch = reg.take_worker_batch();
        assert!(reg.is_tracing(), "draining must not stop the recorder");
        assert_eq!(batch.counters, vec![("jobs".to_string(), 1)]);
        assert_eq!(batch.spans.len(), 2);
        let outer = batch.spans.iter().find(|s| s.name == "task").unwrap();
        let inner = batch.spans.iter().find(|s| s.name == "encoding").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.lane, "main");
        assert_eq!(batch.quality.margins.count(), 1);
        assert_eq!(batch.quality.predictions["2"], 1);
        assert_eq!(batch.quality.confusion.labeled(), 1);
        // the next drain starts empty
        let next = reg.take_worker_batch();
        assert!(next.counters.is_empty() && next.spans.is_empty());
        assert!(next.quality.is_empty(), "quality drains with the batch");
        assert!(next.clock_ns >= batch.clock_ns);
    }

    #[test]
    fn absorbing_a_batch_remaps_ids_prefixes_counters_and_shifts_clocks() {
        let reg = Registry::disabled();
        reg.enable_tracing(64);
        let batch = WorkerBatch {
            clock_ns: 50,
            dropped: 3,
            net_bytes: 512,
            alloc_count: 9,
            peak_bytes: 4096,
            counters: vec![("jobs".into(), 2)],
            spans: vec![
                WorkerSpan {
                    id: 1,
                    parent: None,
                    lane: "main".into(),
                    layer: "worker".into(),
                    name: "task".into(),
                    start_ns: 10,
                    dur_ns: 30,
                },
                WorkerSpan {
                    id: 2,
                    parent: Some(1),
                    lane: "main".into(),
                    layer: "infer".into(),
                    name: "encoding".into(),
                    start_ns: 15,
                    dur_ns: 5,
                },
            ],
            quality: {
                let mut q = crate::quality::QualityStats::default();
                q.record_prediction(1, 25);
                q
            },
        };
        reg.absorb_worker_batch(4, &batch, 1_000, Some(77));
        assert_eq!(reg.counter_value("worker.4.jobs"), 2);
        assert_eq!(reg.counter_value("fleet.jobs"), 2);
        assert_eq!(reg.counter_value("worker.4.alloc_count"), 9);
        assert_eq!(reg.counter_value("fleet.peak_alloc_bytes"), 4096);
        assert_eq!(reg.quality().margins.count(), 1, "quality merges in");
        // a second batch rolls counts up and maxes peaks
        reg.absorb_worker_batch(4, &batch, 1_000, Some(77));
        assert_eq!(reg.counter_value("fleet.jobs"), 4);
        assert_eq!(reg.quality().predictions["1"], 2);
        assert_eq!(reg.counter_value("worker.4.peak_alloc_bytes"), 4096);
        let rec = reg.take_recorder();
        assert_eq!(rec.worker_events.len(), 4);
        assert_eq!(rec.dropped, 6);
        let task = &rec.worker_events[0];
        let inner = &rec.worker_events[1];
        assert_eq!(task.slot, 4);
        assert_eq!(
            task.parent,
            Some(77),
            "rootless spans adopt the dispatch region"
        );
        assert_eq!(
            inner.parent,
            Some(task.id),
            "in-worker edges survive the remap"
        );
        let ids: std::collections::BTreeSet<u64> = rec.worker_events.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 4, "remapped ids stay unique across batches");
        assert_eq!(task.start_ns, 1_010, "clock offset applied");
        // negative offsets clamp at the epoch instead of wrapping
        reg.enable_tracing(64);
        reg.absorb_worker_batch(0, &batch, -1_000_000, None);
        let rec = reg.take_recorder();
        assert_eq!(rec.worker_events[0].start_ns, 0);
        assert_eq!(rec.worker_events[0].parent, None);
    }

    #[test]
    fn absorbing_into_a_disabled_registry_is_a_no_op() {
        let reg = Registry::disabled();
        let batch = WorkerBatch {
            counters: vec![("jobs".into(), 2)],
            ..WorkerBatch::default()
        };
        reg.absorb_worker_batch(0, &batch, 0, None);
        assert_eq!(reg.counter_value("fleet.jobs"), 0);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn aggregate_mode_collects_but_flushes_silently() {
        let reg = Registry::aggregate();
        assert!(reg.is_enabled());
        assert_eq!(reg.mode(), Mode::Aggregate);
        reg.counter("jobs", 3);
        reg.record_duration("stage", Duration::from_micros(5));
        assert_eq!(reg.counter_value("jobs"), 3);
        assert_eq!(reg.histogram("stage").unwrap().count(), 1);
        // flush must neither error nor emit JSONL aggregates anywhere
        reg.flush().unwrap();
        assert!(reg.take_buffer().is_empty());
    }

    #[test]
    fn enable_aggregation_upgrades_off_and_leaves_other_modes_alone() {
        let reg = Registry::disabled();
        reg.counter("lost", 1); // dropped: still off
        reg.enable_aggregation();
        assert_eq!(reg.mode(), Mode::Aggregate);
        reg.counter("kept", 1);
        assert_eq!(reg.counter_value("lost"), 0);
        assert_eq!(reg.counter_value("kept"), 1);
        // idempotent
        reg.enable_aggregation();
        assert_eq!(reg.mode(), Mode::Aggregate);
        // a registry already recording keeps its mode
        let summary = Registry::summary();
        summary.enable_aggregation();
        assert_eq!(summary.mode(), Mode::Summary);
        let jsonl = Registry::jsonl_buffer();
        jsonl.enable_aggregation();
        assert_eq!(jsonl.mode(), Mode::Jsonl);
    }

    #[test]
    fn summary_text_ordering_is_deterministic() {
        // insertion order is adversarial: reverse-alphabetical, so any
        // regression to unordered iteration shows up as a diff
        let build = |names: &[&str]| {
            let reg = Registry::summary();
            for (i, name) in names.iter().enumerate() {
                reg.counter(name, (i + 1) as u64);
                reg.record_duration(&format!("span.{name}"), Duration::from_micros(10));
            }
            reg.summary_text()
        };
        let forward = build(&["alpha", "mid", "zulu"]);
        let reverse = build(&["zulu", "mid", "alpha"]);
        // histogram section then counter section, keys sorted, regardless
        // of recording order (values differ by construction, so compare
        // the key order directly)
        let names_in = |text: &str, needle: &str| {
            text.lines()
                .filter(|l| l.contains(needle))
                .map(|l| l.split_whitespace().next().unwrap().to_string())
                .collect::<Vec<_>>()
        };
        for text in [&forward, &reverse] {
            assert_eq!(
                names_in(text, "span."),
                vec!["span.alpha", "span.mid", "span.zulu"],
                "{text}"
            );
        }
        let counter_order: Vec<String> = forward
            .lines()
            .skip_while(|l| !l.starts_with("counter"))
            .skip(1)
            .map(|l| l.split_whitespace().next().unwrap().to_string())
            .collect();
        assert_eq!(counter_order, vec!["alpha", "mid", "zulu"], "{forward}");
        // identical inputs render byte-identically run to run
        assert_eq!(build(&["b", "a"]), build(&["b", "a"]));
    }

    #[test]
    fn snapshot_clones_counters_histograms_and_mem_rows() {
        let reg = Registry::aggregate();
        reg.counter("jobs", 7);
        reg.record_duration("train.epoch", Duration::from_micros(40));
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("jobs"), Some(&7));
        assert_eq!(snap.histograms.get("train.epoch").unwrap().count(), 1);
        // the snapshot is detached: later recording does not mutate it
        reg.counter("jobs", 1);
        assert_eq!(snap.counters.get("jobs"), Some(&7));
        assert_eq!(reg.counter_value("jobs"), 8);
    }
}
