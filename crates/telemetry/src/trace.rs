//! Causal flight recorder and Chrome trace-event export.
//!
//! The flat span/counter registry answers "how long did stage X take on
//! average"; this module answers "*which* epoch dispatched the fan-out
//! that ran *this* chunk on *that* worker". Every recorded span carries a
//! stable id, the id of the span that was open when it started (its
//! causal parent — bridged across `univsa-par` worker threads by
//! [`TraceContext`]), and a lane label identifying the thread of
//! execution (`main`, `worker-0`, …).
//!
//! Events accumulate in a **bounded** in-memory buffer (the flight
//! recorder): once [`Recorder::capacity`] events are held, further events
//! are counted but dropped, so a runaway loop cannot exhaust memory. The
//! whole machinery is off by default and costs one atomic load per call
//! site; it is switched on per-registry with
//! [`crate::Registry::enable_tracing`] (the `univsa profile --trace`
//! path) or globally via `UNIVSA_TELEMETRY=trace:<path>`.
//!
//! [`chrome_trace_json`] renders the recorder as Chrome trace-event JSON
//! (the `traceEvents` array format) loadable in Perfetto or
//! `chrome://tracing`: wall-clock lanes become threads of process 1 and
//! virtual-time events (the cycle-level hardware schedule) become tracks
//! of process 2, so all three layers of the stack share one timeline.

use std::cell::RefCell;
use std::fmt::Write as _;

use crate::registry::Value;

/// Default flight-recorder capacity (events kept before dropping).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

thread_local! {
    /// Stack of open span ids on this thread (top = innermost).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Lane label for spans recorded from this thread (`None` = "main").
    static LANE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The causal position of the calling thread: the innermost open span, if
/// any. Capture it on a dispatching thread and re-enter it on a worker
/// with [`enter_context`] so the worker's spans attach to the dispatching
/// region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    parent: Option<u64>,
}

impl TraceContext {
    /// The span id new child spans would attach to.
    #[inline]
    pub fn parent(&self) -> Option<u64> {
        self.parent
    }
}

/// The innermost open span on this thread, as a transferable context.
pub fn current_context() -> TraceContext {
    TraceContext {
        parent: SPAN_STACK.with(|s| s.borrow().last().copied()),
    }
}

/// Pushes `id` onto this thread's span stack.
pub(crate) fn push_span(id: u64) {
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
}

/// Removes the topmost occurrence of `id` from this thread's span stack
/// (tolerates out-of-LIFO-order drops without corrupting other parents).
pub(crate) fn pop_span(id: u64) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            stack.remove(pos);
        }
    });
}

/// The current parent for a span opened right now on this thread.
pub(crate) fn current_parent() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Re-enters a captured [`TraceContext`] on this thread until the guard
/// drops — the bridge `univsa-par` workers use so their spans nest under
/// the region that dispatched them.
pub fn enter_context(ctx: TraceContext) -> ContextGuard {
    if let Some(id) = ctx.parent {
        push_span(id);
    }
    ContextGuard { id: ctx.parent }
}

/// Restores the thread's span stack when dropped. See [`enter_context`].
#[must_use = "the context is re-entered until the guard drops"]
pub struct ContextGuard {
    id: Option<u64>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            pop_span(id);
        }
    }
}

/// Labels this thread's trace lane until the guard drops (worker threads
/// use `worker-<index>`; unlabelled threads record as `main`).
pub fn enter_lane(label: String) -> LaneGuard {
    let prev = LANE.with(|l| l.borrow_mut().replace(label));
    LaneGuard { prev }
}

/// Restores the thread's previous lane label when dropped.
#[must_use = "the lane label applies until the guard drops"]
pub struct LaneGuard {
    prev: Option<String>,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        LANE.with(|l| *l.borrow_mut() = self.prev.take());
    }
}

/// The calling thread's lane label (`"main"` unless inside a
/// [`enter_lane`] guard).
pub fn current_lane() -> String {
    LANE.with(|l| l.borrow().clone().unwrap_or_else(|| "main".to_string()))
}

/// One completed wall-clock span in the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Stable id of this span (unique within one registry).
    pub id: u64,
    /// Id of the span that was open when this one started, if any.
    pub parent: Option<u64>,
    /// Lane index into [`Recorder::lanes`].
    pub lane: u32,
    /// Layer label (`train`, `infer`, `par`, …).
    pub layer: &'static str,
    /// Span name within the layer.
    pub name: &'static str,
    /// Nanoseconds since the registry epoch at span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Attached fields.
    pub fields: Vec<(&'static str, Value)>,
}

/// One virtual-time event (e.g. a hardware-pipeline stage execution whose
/// clock is cycles, not nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualEvent {
    /// Track label within the virtual process (e.g. the stage name).
    pub track: String,
    /// Event name (e.g. `sample 3`).
    pub name: String,
    /// Start tick (cycles).
    pub start: u64,
    /// Duration in ticks (cycles).
    pub dur: u64,
    /// Attached fields.
    pub fields: Vec<(&'static str, Value)>,
}

/// One sampled value of the process heap counters (live/peak bytes from
/// the counting allocator), taken at a span close while memory tracking
/// is on. Rendered as a Chrome trace counter track (`ph:"C"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Nanoseconds since the registry epoch at the sample.
    pub ts_ns: u64,
    /// Live heap bytes at the sample.
    pub live_bytes: u64,
    /// Peak live heap bytes up to the sample.
    pub peak_bytes: u64,
}

/// One span that ran inside a fleet worker *process*, absorbed into the
/// supervisor's recorder from a forwarded telemetry batch. Unlike
/// [`TraceEvent`] the labels are owned strings (they crossed a process
/// boundary) and `start_ns` has already been shifted onto the
/// supervisor's timeline by the handshake clock-offset estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerTraceEvent {
    /// Fleet slot index the worker occupied (drives the Chrome pid).
    pub slot: u32,
    /// Span id, re-mapped into the supervisor registry's id space.
    pub id: u64,
    /// Causal parent: another worker span (re-mapped) or the
    /// supervisor's dispatching `dist.task` region.
    pub parent: Option<u64>,
    /// Lane label inside the worker process (usually `main`).
    pub lane: String,
    /// Layer label.
    pub layer: String,
    /// Span name within the layer.
    pub name: String,
    /// Nanoseconds on the *supervisor's* clock at span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// The bounded in-memory flight recorder: wall-clock events, virtual-time
/// events, heap counter samples, and the lane table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    /// Maximum number of wall-clock plus virtual events retained.
    pub capacity: usize,
    /// Completed wall-clock spans, in completion order.
    pub events: Vec<TraceEvent>,
    /// Virtual-time events, in emission order.
    pub virtual_events: Vec<VirtualEvent>,
    /// Heap counter samples, in emission order.
    pub counter_samples: Vec<CounterSample>,
    /// Spans forwarded from fleet worker processes, in absorption order.
    pub worker_events: Vec<WorkerTraceEvent>,
    /// Lane labels; [`TraceEvent::lane`] indexes this table.
    pub lanes: Vec<String>,
    /// Events discarded after the recorder filled up.
    pub dropped: u64,
}

impl Recorder {
    /// An empty recorder retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ..Self::default()
        }
    }

    fn len(&self) -> usize {
        self.events.len()
            + self.virtual_events.len()
            + self.counter_samples.len()
            + self.worker_events.len()
    }

    /// Interns a lane label, returning its index.
    pub(crate) fn lane_id(&mut self, label: &str) -> u32 {
        if let Some(i) = self.lanes.iter().position(|l| l == label) {
            return i as u32;
        }
        self.lanes.push(label.to_string());
        (self.lanes.len() - 1) as u32
    }

    pub(crate) fn record(&mut self, event: TraceEvent) {
        if self.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(event);
    }

    pub(crate) fn record_virtual(&mut self, event: VirtualEvent) {
        if self.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.virtual_events.push(event);
    }

    pub(crate) fn record_counter(&mut self, sample: CounterSample) {
        if self.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.counter_samples.push(sample);
    }

    pub(crate) fn record_worker(&mut self, event: WorkerTraceEvent) {
        if self.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.worker_events.push(event);
    }
}

fn write_json_str(out: &mut String, s: &str) {
    crate::registry::write_json_string(out, s);
}

fn write_args(out: &mut String, id: u64, parent: Option<u64>, fields: &[(&'static str, Value)]) {
    let _ = write!(out, "{{\"id\":{id}");
    if let Some(p) = parent {
        let _ = write!(out, ",\"parent\":{p}");
    }
    for (k, v) in fields {
        out.push(',');
        write_json_str(out, k);
        out.push(':');
        crate::registry::write_json_value(out, v);
    }
    out.push('}');
}

/// Renders a recorder snapshot as Chrome trace-event JSON (the object
/// form: `{"displayTimeUnit":…,"traceEvents":[…]}`), loadable in Perfetto
/// and `chrome://tracing`.
///
/// Wall-clock spans become `X` (complete) events of process 1 with one
/// `tid` per lane; virtual-time events become `X` events of process 2
/// with one `tid` per track, their tick clock rendered as microseconds.
/// Span ids and causal parents ride in `args.id` / `args.parent`.
pub fn chrome_trace_json(recorder: &Recorder) -> String {
    let mut out = String::with_capacity(256 + recorder.events.len() * 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push_line = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
    };

    // process + lane metadata
    push_line(&mut out, &mut first);
    out.push_str("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"univsa (wall clock)\"}}");
    for (i, lane) in recorder.lanes.iter().enumerate() {
        push_line(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\"args\":{{\"name\":"
        );
        write_json_str(&mut out, lane);
        out.push_str("}}");
        // keep main first and workers in index order in the Perfetto UI
        push_line(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{i}}}}}"
        );
    }

    // wall-clock spans: ts/dur are microseconds (fractional, ns precision)
    for e in &recorder.events {
        push_line(&mut out, &mut first);
        out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", e.lane);
        out.push_str(",\"cat\":");
        write_json_str(&mut out, e.layer);
        out.push_str(",\"name\":");
        write_json_str(&mut out, e.name);
        let _ = write!(
            out,
            ",\"ts\":{:.3},\"dur\":{:.3},\"args\":",
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3
        );
        write_args(&mut out, e.id, e.parent, &e.fields);
        out.push('}');
    }

    // heap counter track (ph:"C" renders as a filled series in Perfetto)
    for s in &recorder.counter_samples {
        push_line(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"heap bytes\",\"ts\":{:.3},\"args\":{{\"live\":{},\"peak\":{}}}}}",
            s.ts_ns as f64 / 1e3,
            s.live_bytes,
            s.peak_bytes
        );
    }

    // virtual-time process (cycle clock rendered as µs ticks)
    if !recorder.virtual_events.is_empty() {
        push_line(&mut out, &mut first);
        out.push_str("{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"hw pipeline (virtual cycles)\"}}");
        let mut tracks: Vec<&str> = Vec::new();
        for e in &recorder.virtual_events {
            if !tracks.contains(&e.track.as_str()) {
                tracks.push(&e.track);
            }
        }
        for (i, track) in tracks.iter().enumerate() {
            push_line(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":2,\"tid\":{i},\"name\":\"thread_name\",\"args\":{{\"name\":"
            );
            write_json_str(&mut out, track);
            out.push_str("}}");
        }
        for e in &recorder.virtual_events {
            let tid = tracks
                .iter()
                .position(|t| *t == e.track)
                .expect("track interned above");
            push_line(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":2,\"tid\":{tid},\"cat\":\"hw\",\"name\":"
            );
            write_json_str(&mut out, &e.name);
            let _ = write!(
                out,
                ",\"ts\":{},\"dur\":{},\"args\":{{",
                e.start,
                e.dur.max(1)
            );
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_str(&mut out, k);
                out.push(':');
                crate::registry::write_json_value(&mut out, v);
            }
            out.push_str("}}");
        }
    }

    // fleet worker processes: one Chrome pid per worker slot
    // (pid = 100 + slot keeps them clear of pid 1/2), with the worker's
    // own lanes as threads. Timestamps were aligned to the supervisor
    // clock at absorption, so these rows share pid 1's timeline.
    if !recorder.worker_events.is_empty() {
        let mut slots: Vec<u32> = recorder.worker_events.iter().map(|e| e.slot).collect();
        slots.sort_unstable();
        slots.dedup();
        let mut threads: Vec<(u32, &str)> = Vec::new();
        for slot in &slots {
            push_line(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\"args\":{{\"name\":\"univsa worker {slot}\"}}}}",
                100 + slot
            );
        }
        for e in &recorder.worker_events {
            if !threads.contains(&(e.slot, e.lane.as_str())) {
                threads.push((e.slot, &e.lane));
                let tid = threads.len() - 1;
                push_line(&mut out, &mut first);
                let _ = write!(
                    out,
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":",
                    100 + e.slot
                );
                write_json_str(&mut out, &e.lane);
                out.push_str("}}");
            }
        }
        for e in &recorder.worker_events {
            let tid = threads
                .iter()
                .position(|t| *t == (e.slot, e.lane.as_str()))
                .expect("thread interned above");
            push_line(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{tid},\"cat\":",
                100 + e.slot
            );
            write_json_str(&mut out, &e.layer);
            out.push_str(",\"name\":");
            write_json_str(&mut out, &e.name);
            let _ = write!(
                out,
                ",\"ts\":{:.3},\"dur\":{:.3},\"args\":",
                e.start_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3
            );
            write_args(&mut out, e.id, e.parent, &[]);
            out.push('}');
        }
    }

    if recorder.dropped > 0 {
        push_line(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"name\":\"trace_buffer_overflow\",\"args\":{{\"dropped_events\":{}}}}}",
            recorder.dropped
        );
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_capture_and_reenter() {
        assert_eq!(current_context().parent(), None);
        push_span(7);
        let ctx = current_context();
        assert_eq!(ctx.parent(), Some(7));
        pop_span(7);
        assert_eq!(current_context().parent(), None);
        {
            let _g = enter_context(ctx);
            assert_eq!(current_context().parent(), Some(7));
        }
        assert_eq!(current_context().parent(), None);
    }

    #[test]
    fn pop_tolerates_out_of_order_drops() {
        push_span(1);
        push_span(2);
        pop_span(1); // dropped out of LIFO order
        assert_eq!(current_parent(), Some(2));
        pop_span(2);
        assert_eq!(current_parent(), None);
    }

    #[test]
    fn lane_labels_nest_and_restore() {
        assert_eq!(current_lane(), "main");
        {
            let _a = enter_lane("worker-0".into());
            assert_eq!(current_lane(), "worker-0");
            {
                let _b = enter_lane("worker-1".into());
                assert_eq!(current_lane(), "worker-1");
            }
            assert_eq!(current_lane(), "worker-0");
        }
        assert_eq!(current_lane(), "main");
    }

    #[test]
    fn recorder_bounds_hold() {
        let mut rec = Recorder::with_capacity(2);
        for i in 0..4 {
            rec.record(TraceEvent {
                id: i,
                parent: None,
                lane: 0,
                layer: "t",
                name: "x",
                start_ns: i * 10,
                dur_ns: 5,
                fields: vec![],
            });
        }
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.dropped, 2);
    }

    #[test]
    fn chrome_json_has_lanes_spans_and_virtual_tracks() {
        let mut rec = Recorder::with_capacity(64);
        let main = rec.lane_id("main");
        let w0 = rec.lane_id("worker-0");
        assert_eq!(rec.lane_id("main"), main);
        rec.record(TraceEvent {
            id: 1,
            parent: None,
            lane: main,
            layer: "train",
            name: "epoch",
            start_ns: 1_000,
            dur_ns: 9_000,
            fields: vec![("epoch", Value::U64(0))],
        });
        rec.record(TraceEvent {
            id: 2,
            parent: Some(1),
            lane: w0,
            layer: "par",
            name: "train.value_maps",
            start_ns: 2_000,
            dur_ns: 3_000,
            fields: vec![],
        });
        rec.record_virtual(VirtualEvent {
            track: "BiConv".into(),
            name: "sample 0".into(),
            start: 640,
            dur: 5760,
            fields: vec![("sample", Value::U64(0))],
        });
        let json = chrome_trace_json(&rec);
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"name\":\"worker-0\""), "{json}");
        assert!(json.contains("\"name\":\"epoch\""), "{json}");
        assert!(json.contains("\"parent\":1"), "{json}");
        assert!(json.contains("hw pipeline (virtual cycles)"), "{json}");
        assert!(json.contains("\"name\":\"BiConv\""), "{json}");
        assert!(json.contains("\"ts\":640"), "{json}");
        // no overflow note when nothing was dropped
        assert!(!json.contains("trace_buffer_overflow"), "{json}");
    }

    #[test]
    fn chrome_json_gives_each_worker_slot_a_pid() {
        let mut rec = Recorder::with_capacity(64);
        let main = rec.lane_id("main");
        rec.record(TraceEvent {
            id: 1,
            parent: None,
            lane: main,
            layer: "dist",
            name: "task",
            start_ns: 1_000,
            dur_ns: 9_000,
            fields: vec![],
        });
        for slot in [0u32, 2] {
            rec.record_worker(WorkerTraceEvent {
                slot,
                id: 10 + u64::from(slot),
                parent: Some(1),
                lane: "main".into(),
                layer: "worker".into(),
                name: "task".into(),
                start_ns: 2_000,
                dur_ns: 3_000,
            });
        }
        let json = chrome_trace_json(&rec);
        assert!(json.contains("\"name\":\"univsa worker 0\""), "{json}");
        assert!(json.contains("\"name\":\"univsa worker 2\""), "{json}");
        assert!(json.contains("\"pid\":100"), "{json}");
        assert!(json.contains("\"pid\":102"), "{json}");
        // worker spans carry their re-mapped causal parent
        assert!(json.contains("\"parent\":1"), "{json}");
    }

    #[test]
    fn worker_events_count_against_the_capacity_bound() {
        let mut rec = Recorder::with_capacity(1);
        rec.record_worker(WorkerTraceEvent {
            slot: 0,
            id: 1,
            parent: None,
            lane: "main".into(),
            layer: "worker".into(),
            name: "kept".into(),
            start_ns: 0,
            dur_ns: 1,
        });
        rec.record_worker(WorkerTraceEvent {
            slot: 0,
            id: 2,
            parent: None,
            lane: "main".into(),
            layer: "worker".into(),
            name: "dropped".into(),
            start_ns: 0,
            dur_ns: 1,
        });
        assert_eq!(rec.worker_events.len(), 1);
        assert_eq!(rec.dropped, 1);
    }

    #[test]
    fn chrome_json_notes_dropped_events() {
        let mut rec = Recorder::with_capacity(1);
        let main = rec.lane_id("main");
        rec.record(TraceEvent {
            id: 1,
            parent: None,
            lane: main,
            layer: "t",
            name: "kept",
            start_ns: 0,
            dur_ns: 1,
            fields: vec![],
        });
        rec.record_virtual(VirtualEvent {
            track: "X".into(),
            name: "dropped".into(),
            start: 0,
            dur: 1,
            fields: vec![],
        });
        let json = chrome_trace_json(&rec);
        assert!(json.contains("\"dropped_events\":1"), "{json}");
    }
}
