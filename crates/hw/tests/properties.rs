//! Property-based tests of the pipeline scheduler: for arbitrary valid
//! accelerator geometries, the schedule must respect dataflow order,
//! module exclusivity, and steady-state throughput bounds.

use proptest::prelude::*;
use univsa::UniVsaConfig;
use univsa_data::TaskSpec;
use univsa_hw::{HwConfig, Pipeline, Stage};

fn arb_hw() -> impl Strategy<Value = HwConfig> {
    (
        3usize..24,    // width
        3usize..32,    // length
        2usize..12,    // classes
        1usize..17,    // d_h
        1usize..4,     // voters
        1usize..33,    // out channels
        any::<bool>(), // biconv
    )
        .prop_map(|(w, l, c, d_h, voters, o, biconv)| {
            let spec = TaskSpec {
                name: "prop".into(),
                width: w,
                length: l,
                classes: c,
                levels: 256,
            };
            let e = univsa::Enhancements {
                biconv,
                ..univsa::Enhancements::all()
            };
            let cfg = UniVsaConfig::for_task(&spec)
                .d_h(d_h)
                .d_l(1.max(d_h / 2))
                .d_k(3)
                .out_channels(o)
                .voters(voters)
                .enhancements(e)
                .build()
                .expect("generated config valid");
            HwConfig::new(&cfg)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_invariants(hw in arb_hw(), samples in 1usize..12) {
        let pipeline = Pipeline::new(hw);
        let trace = pipeline.schedule(samples);

        // dataflow order within each sample
        for s in 0..samples {
            let entries = trace.sample_entries(s);
            prop_assert!(!entries.is_empty());
            for pair in entries.windows(2) {
                prop_assert!(pair[1].start >= pair[0].end);
            }
        }
        // module exclusivity
        for stage in Stage::ALL {
            let mut busy: Vec<(u64, u64)> = trace
                .entries
                .iter()
                .filter(|e| e.stage == stage)
                .map(|e| (e.start, e.end))
                .collect();
            busy.sort_unstable();
            for pair in busy.windows(2) {
                prop_assert!(pair[1].0 >= pair[0].1);
            }
        }
        // makespan bounds: at least one full pass, at most fully sequential
        let latency = pipeline.sample_latency_cycles()
            - Stage::CONTROLLER_CYCLES;
        prop_assert!(trace.makespan >= latency);
        prop_assert!(trace.makespan <= samples as u64 * latency);
    }

    #[test]
    fn steady_state_spacing_equals_interval(hw in arb_hw()) {
        let pipeline = Pipeline::new(hw);
        let trace = pipeline.schedule(6);
        let ends: Vec<u64> = (0..6)
            .map(|s| trace.sample_entries(s).last().expect("scheduled").end)
            .collect();
        let ii = pipeline.initiation_interval_cycles();
        prop_assert_eq!(ends[5] - ends[4], ii);
        prop_assert_eq!(ends[4] - ends[3], ii);
    }

    #[test]
    fn speedup_at_least_one(hw in arb_hw()) {
        let pipeline = Pipeline::new(hw);
        prop_assert!(pipeline.pipelining_speedup() >= 1.0);
    }
}
