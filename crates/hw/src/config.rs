//! Hardware instance configuration.

use univsa::UniVsaConfig;

/// Fault-tolerance scheme applied to the accelerator's weight memories.
///
/// The paper's baseline design stores **V**/**K**/**F**/**C** unprotected;
/// the schemes here are the two standard hardening options for SRAM-based
/// FPGAs, priced by [`crate::CostModel`] and simulated by
/// [`crate::SeuCampaign`]:
///
/// * [`Protection::ParityDetect`] — one even-parity bit per 64-bit memory
///   word plus a checker on every read port. Detects any odd number of
///   upsets in a word (in particular every single-bit upset) but cannot
///   correct; an even number of upsets in the same word escapes.
/// * [`Protection::Tmr`] — triple modular redundancy: three full copies of
///   the weight memories with bitwise majority voters on the read path.
///   Corrects every upset unless the same bit position is hit in two of
///   the three copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protection {
    /// Unprotected memories (the paper's baseline design).
    #[default]
    None,
    /// Per-word even parity with read-port checkers (detect-only).
    ParityDetect,
    /// Triple modular redundancy with majority voters (detect + correct).
    Tmr,
}

impl Protection {
    /// All schemes, in increasing-cost order (for sweeps).
    pub const ALL: [Protection; 3] = [Protection::None, Protection::ParityDetect, Protection::Tmr];

    /// Human-readable scheme name.
    pub fn name(self) -> &'static str {
        match self {
            Protection::None => "unprotected",
            Protection::ParityDetect => "parity-detect",
            Protection::Tmr => "tmr",
        }
    }

    /// Parses a scheme from its CLI spelling (`none`/`unprotected`,
    /// `parity`/`parity-detect`, `tmr`; case-insensitive).
    pub fn from_name(name: &str) -> Option<Protection> {
        match name.to_ascii_lowercase().as_str() {
            "none" | "unprotected" => Some(Protection::None),
            "parity" | "parity-detect" => Some(Protection::ParityDetect),
            "tmr" => Some(Protection::Tmr),
            _ => None,
        }
    }

    /// Stable wire tag for IPC payloads (round-trips via
    /// [`Protection::from_tag`]).
    pub fn tag(self) -> u8 {
        match self {
            Protection::None => 0,
            Protection::ParityDetect => 1,
            Protection::Tmr => 2,
        }
    }

    /// Inverse of [`Protection::tag`].
    pub fn from_tag(tag: u8) -> Option<Protection> {
        match tag {
            0 => Some(Protection::None),
            1 => Some(Protection::ParityDetect),
            2 => Some(Protection::Tmr),
            _ => None,
        }
    }

    /// Stored-bit blowup relative to the unprotected memory footprint
    /// (`65/64` for parity, `3` for TMR).
    pub fn storage_factor(self) -> f64 {
        match self {
            Protection::None => 1.0,
            Protection::ParityDetect => 65.0 / 64.0,
            Protection::Tmr => 3.0,
        }
    }
}

/// The accelerator instance: the model geometry it is synthesized for plus
/// the clock it runs at.
#[derive(Debug, Clone, PartialEq)]
pub struct HwConfig {
    /// High-importance value dimension `D_H` (conv input channels).
    pub d_h: usize,
    /// Low-importance value dimension `D_L`.
    pub d_l: usize,
    /// Kernel side `D_K`.
    pub d_k: usize,
    /// Conv output channels `O`.
    pub out_channels: usize,
    /// Similarity heads `Θ`.
    pub voters: usize,
    /// Window count `W`.
    pub width: usize,
    /// Snippet length `L`.
    pub length: usize,
    /// Class count `C`.
    pub classes: usize,
    /// Whether the BiConv module is instantiated.
    pub biconv: bool,
    /// Memory footprint in KiB (drives BRAM allocation).
    pub memory_kib: f64,
    /// Clock frequency in MHz (the paper's UniVSA runs at 250 MHz on the
    /// ZU3EG).
    pub clock_mhz: f64,
    /// Fault-tolerance scheme applied to the weight memories.
    pub protection: Protection,
}

impl HwConfig {
    /// Derives the accelerator instance for a model configuration at the
    /// paper's 250 MHz clock.
    pub fn new(config: &UniVsaConfig) -> Self {
        Self::with_clock(config, 250.0)
    }

    /// Derives the instance at a custom clock frequency (MHz).
    ///
    /// # Panics
    ///
    /// Panics if `clock_mhz` is not positive.
    pub fn with_clock(config: &UniVsaConfig, clock_mhz: f64) -> Self {
        assert!(clock_mhz > 0.0, "clock must be positive");
        Self {
            d_h: config.d_h,
            d_l: config.effective_d_l(),
            d_k: config.d_k,
            out_channels: config.encoding_channels(),
            voters: config.effective_voters(),
            width: config.width,
            length: config.length,
            classes: config.classes,
            biconv: config.enhancements.biconv,
            memory_kib: univsa::MemoryReport::for_config(config).total_kib(),
            clock_mhz,
            protection: Protection::None,
        }
    }

    /// Returns the instance with a fault-tolerance scheme applied.
    #[must_use]
    pub fn with_protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self
    }

    /// Stored weight-memory footprint in KiB after protection overhead
    /// (parity bits or redundant copies).
    pub fn stored_memory_kib(&self) -> f64 {
        self.memory_kib * self.protection.storage_factor()
    }

    /// Grid positions `D = W·L`.
    #[inline]
    pub fn vsa_dim(&self) -> usize {
        self.width * self.length
    }

    /// The paper's per-iteration convolution time
    /// `α = max(D_K, ⌈log₂ D_H⌉)` in cycles (Fig. 5).
    pub fn alpha(&self) -> usize {
        self.d_k.max(ceil_log2(self.d_h))
    }
}

/// `⌈log₂ n⌉` with `ceil_log2(0) = 0` and `ceil_log2(1) = 1` (a single
/// input still needs one adder stage).
pub(crate) fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        return n;
    }
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa_data::TaskSpec;

    fn model_config() -> UniVsaConfig {
        let spec = TaskSpec {
            name: "ISOLET".into(),
            width: 16,
            length: 40,
            classes: 26,
            levels: 256,
        };
        UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(4)
            .d_k(3)
            .out_channels(22)
            .voters(3)
            .build()
            .unwrap()
    }

    #[test]
    fn derives_from_model_config() {
        let hw = HwConfig::new(&model_config());
        assert_eq!(hw.d_h, 4);
        assert_eq!(hw.out_channels, 22);
        assert_eq!(hw.voters, 3);
        assert_eq!(hw.vsa_dim(), 640);
        assert_eq!(hw.clock_mhz, 250.0);
        assert!(hw.biconv);
        assert!(hw.memory_kib > 1.0);
    }

    #[test]
    fn alpha_is_paper_formula() {
        let hw = HwConfig::new(&model_config());
        // max(3, ceil(log2 4) = 2) = 3
        assert_eq!(hw.alpha(), 3);
        let mut hw64 = hw.clone();
        hw64.d_h = 64;
        hw64.d_k = 3;
        // max(3, 6) = 6
        assert_eq!(hw64.alpha(), 6);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
    }

    #[test]
    #[should_panic(expected = "clock")]
    fn rejects_zero_clock() {
        HwConfig::with_clock(&model_config(), 0.0);
    }

    #[test]
    fn protection_name_and_tag_round_trip() {
        for p in Protection::ALL {
            assert_eq!(Protection::from_tag(p.tag()), Some(p));
            assert_eq!(Protection::from_name(p.name()), Some(p));
        }
        assert_eq!(Protection::from_name("NONE"), Some(Protection::None));
        assert_eq!(
            Protection::from_name("parity"),
            Some(Protection::ParityDetect)
        );
        assert_eq!(Protection::from_name("ecc"), None);
        assert_eq!(Protection::from_tag(9), None);
    }

    #[test]
    fn protection_defaults_to_none() {
        let hw = HwConfig::new(&model_config());
        assert_eq!(hw.protection, Protection::None);
        assert_eq!(hw.stored_memory_kib(), hw.memory_kib);
    }

    #[test]
    fn with_protection_scales_stored_memory() {
        let base = HwConfig::new(&model_config());
        let parity = base.clone().with_protection(Protection::ParityDetect);
        let tmr = base.clone().with_protection(Protection::Tmr);
        assert!((parity.stored_memory_kib() - base.memory_kib * 65.0 / 64.0).abs() < 1e-12);
        assert!((tmr.stored_memory_kib() - base.memory_kib * 3.0).abs() < 1e-12);
        // protection never changes the logical model footprint
        assert_eq!(parity.memory_kib, base.memory_kib);
        assert_eq!(tmr.memory_kib, base.memory_kib);
    }

    #[test]
    fn protection_names_and_order() {
        assert_eq!(Protection::default(), Protection::None);
        assert_eq!(Protection::None.name(), "unprotected");
        assert_eq!(Protection::ParityDetect.name(), "parity-detect");
        assert_eq!(Protection::Tmr.name(), "tmr");
        // ALL is sorted by storage cost
        let factors: Vec<f64> = Protection::ALL.iter().map(|p| p.storage_factor()).collect();
        assert!(factors.windows(2).all(|w| w[0] < w[1]));
    }
}
