//! The Table III/IV row format.

use std::fmt;

use crate::{CostModel, HwConfig, Pipeline, Stage};

/// Calibration factor applied to raw datapath cycle counts to account for
/// controller stalls and AXI interface overheads the cycle model does not
/// capture. Fitted against the paper's Table IV latency column (ratios of
/// paper latency to raw cycle latency cluster at ≈1.5 across all six
/// tasks).
pub const INTERFACE_OVERHEAD: f64 = 1.5;

/// Per-stage share of the accelerator's execution time and area — the
/// quantities plotted in the paper's Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    /// Stage name.
    pub stage: Stage,
    /// Stage latency in cycles for one sample.
    pub cycles: u64,
    /// Fraction of the single-sample execution time.
    pub time_fraction: f64,
    /// Model memory attributable to this stage in bits
    /// (DVP → **V**, BiConv → **K**, Encoding → **F**, Similarity → **C**).
    pub memory_bits: usize,
}

/// The hardware performance of one UniVSA instance — one row of the
/// paper's Table IV (and the UniVSA row of Table III).
#[derive(Debug, Clone, PartialEq)]
pub struct HwReport {
    /// Benchmark/config label.
    pub name: String,
    /// Single-sample latency in milliseconds.
    pub latency_ms: f64,
    /// Estimated power in watts.
    pub power_w: f64,
    /// Estimated LUTs in thousands.
    pub luts_k: f64,
    /// Estimated 36 Kb BRAM blocks.
    pub brams: u32,
    /// Estimated DSP blocks.
    pub dsps: u32,
    /// Streaming throughput in thousands of samples per second.
    pub throughput_kps: f64,
    /// Model memory in KiB (Eq. 5).
    pub memory_kib: f64,
    /// Energy per classification in microjoules (`power × latency`) — the
    /// figure of merit for battery/harvester-powered BCIs.
    pub energy_uj: f64,
    /// Per-stage breakdown (Fig. 6).
    pub stages: Vec<StageBreakdown>,
}

impl HwReport {
    /// Evaluates the full report for an accelerator instance with the
    /// calibrated cost model.
    pub fn for_config(hw: &HwConfig) -> Self {
        Self::with_cost_model(hw, &CostModel::calibrated(), "UniVSA")
    }

    /// Evaluates the report with a custom cost model and label.
    pub fn with_cost_model(hw: &HwConfig, cost: &CostModel, name: &str) -> Self {
        let pipeline = Pipeline::new(hw.clone());
        let cycles_per_second = hw.clock_mhz * 1e6;
        let latency_cycles = pipeline.sample_latency_cycles() as f64 * INTERFACE_OVERHEAD;
        let interval_cycles = pipeline.initiation_interval_cycles() as f64 * INTERFACE_OVERHEAD;
        let total_cycles: u64 = pipeline
            .stage_latencies()
            .iter()
            .map(|&(_, c)| c)
            .sum::<u64>()
            .max(1);

        let memory = stage_memory_bits(hw);
        let stages = pipeline
            .stage_latencies()
            .into_iter()
            .map(|(stage, cycles)| StageBreakdown {
                stage,
                cycles,
                time_fraction: cycles as f64 / total_cycles as f64,
                memory_bits: memory[stage_index(stage)],
            })
            .collect();

        let latency_ms = latency_cycles / cycles_per_second * 1e3;
        let power_w = cost.power_w(hw);
        Self {
            name: name.to_string(),
            latency_ms,
            power_w,
            energy_uj: power_w * latency_ms * 1e3,
            luts_k: cost.luts_k(hw),
            brams: cost.brams(hw),
            dsps: cost.dsps(hw),
            throughput_kps: cycles_per_second / interval_cycles / 1e3,
            memory_kib: hw.memory_kib,
            stages,
        }
    }
}

fn stage_index(stage: Stage) -> usize {
    match stage {
        Stage::Dvp => 0,
        Stage::BiConv => 1,
        Stage::Encoding => 2,
        Stage::Similarity => 3,
    }
}

/// Memory attributable to each stage: V / K / F / C per Eq. 5.
fn stage_memory_bits(hw: &HwConfig) -> [usize; 4] {
    let d = hw.vsa_dim();
    [
        256 * (hw.d_h + hw.d_l),
        if hw.biconv {
            hw.out_channels * hw.d_h * hw.d_k * hw.d_k
        } else {
            0
        },
        d * hw.out_channels,
        d * hw.voters * hw.classes,
    ]
}

impl fmt::Display for HwReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: latency {:.3} ms | power {:.2} W | {:.2}k LUTs | {} BRAM | {} DSP | {:.2}k samples/s | {:.2} KiB",
            self.name,
            self.latency_ms,
            self.power_w,
            self.luts_k,
            self.brams,
            self.dsps,
            self.throughput_kps,
            self.memory_kib
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:>10}: {:>8} cycles ({:>5.1}%) | {:>8} bits",
                s.stage.to_string(),
                s.cycles,
                s.time_fraction * 100.0,
                s.memory_bits
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa::UniVsaConfig;
    use univsa_data::TaskSpec;

    fn isolet_hw() -> HwConfig {
        let spec = TaskSpec {
            name: "ISOLET".into(),
            width: 16,
            length: 40,
            classes: 26,
            levels: 256,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(4)
            .d_k(3)
            .out_channels(22)
            .voters(3)
            .build()
            .unwrap();
        HwConfig::new(&cfg)
    }

    /// The paper's ISOLET row: 0.044 ms, 0.11 W, 7.92k LUTs, 1 BRAM,
    /// 0 DSP, 27.78k samples/s, 8.36 KB.
    #[test]
    fn isolet_row_shape() {
        let r = HwReport::for_config(&isolet_hw());
        assert!(
            (r.latency_ms - 0.044).abs() < 0.02,
            "latency {} ms",
            r.latency_ms
        );
        assert!((r.power_w - 0.11).abs() < 0.07, "power {} W", r.power_w);
        assert!((r.luts_k - 7.92).abs() < 2.5, "LUTs {}k", r.luts_k);
        assert_eq!(r.dsps, 0);
        assert!(
            (r.throughput_kps - 27.78).abs() < 6.0,
            "throughput {}k/s",
            r.throughput_kps
        );
        assert!((r.memory_kib - 8.36).abs() < 0.5, "memory {}", r.memory_kib);
    }

    #[test]
    fn biconv_dominates_time_fraction() {
        let r = HwReport::for_config(&isolet_hw());
        let conv = r.stages.iter().find(|s| s.stage == Stage::BiConv).unwrap();
        assert!(
            conv.time_fraction > 0.5,
            "BiConv share {}",
            conv.time_fraction
        );
    }

    #[test]
    fn stage_memory_sums_to_eq5() {
        let r = HwReport::for_config(&isolet_hw());
        let total_bits: usize = r.stages.iter().map(|s| s.memory_bits).sum();
        assert!((total_bits as f64 / 8.0 / 1024.0 - r.memory_kib).abs() < 1e-9);
    }

    #[test]
    fn energy_is_power_times_latency() {
        let r = HwReport::for_config(&isolet_hw());
        assert!((r.energy_uj - r.power_w * r.latency_ms * 1e3).abs() < 1e-9);
        // ISOLET-class design: a handful of microjoules per classification
        assert!(r.energy_uj < 50.0, "energy {} µJ", r.energy_uj);
    }

    #[test]
    fn display_contains_all_columns() {
        let text = HwReport::for_config(&isolet_hw()).to_string();
        for needle in ["latency", "LUTs", "BRAM", "DSP", "samples/s", "BiConv"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
