//! Single-event-upset (SEU) injection into the cycle-level pipeline.
//!
//! SRAM-based FPGAs accumulate radiation-induced bit flips in their block
//! RAMs; for an always-on implanted BCI the exposure window is the entire
//! streaming schedule. [`SeuCampaign`] replays a batch through
//! [`Pipeline::schedule`], draws upsets over the `stored bits × makespan`
//! exposure, and classifies each upset's fate under the instance's
//! [`Protection`] scheme:
//!
//! * [`Protection::None`] — every upset lands in a live weight word and is
//!   **silent** data corruption.
//! * [`Protection::ParityDetect`] — a word with an odd number of upsets
//!   (in particular a single one) raises the checker and is **detected**;
//!   an even number of upsets in the same word cancels the parity and
//!   escapes **silently**.
//! * [`Protection::Tmr`] — the majority voter **corrects** any bit
//!   position hit in only one of the three copies; a position with flips
//!   outstanding in two or more copies is voted the wrong way and the
//!   upsets there are **silent**.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::Protection;
use crate::Pipeline;

/// Upper bound on injected upsets per campaign; beyond this the memory is
/// saturated and finer accounting is meaningless.
const MAX_UPSETS: u64 = 1 << 20;

/// A seeded SEU injection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeuCampaign {
    /// Upset probability per stored bit per clock cycle.
    pub rate_per_bit_cycle: f64,
    /// RNG seed; equal seeds on equal instances reproduce the campaign
    /// exactly.
    pub seed: u64,
}

/// The classified fate of every upset drawn during one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuOutcome {
    /// Protection scheme the campaign ran under.
    pub protection: Protection,
    /// Exposure window in cycles (the schedule makespan).
    pub cycles: u64,
    /// Stored bits at risk (weights plus parity bits / redundant copies).
    pub stored_bits: u64,
    /// Total upsets injected.
    pub upsets: u64,
    /// Upsets flagged by a checker but not correctable (parity).
    pub detected: u64,
    /// Upsets masked by the majority voter (TMR).
    pub corrected: u64,
    /// Upsets that corrupt an inference result with no indication.
    pub silent: u64,
}

impl SeuOutcome {
    /// Fraction of upsets that went silent (`0` when none were injected).
    pub fn silent_fraction(&self) -> f64 {
        if self.upsets == 0 {
            0.0
        } else {
            self.silent as f64 / self.upsets as f64
        }
    }

    /// Whether the scheme neutralized (detected or corrected) every upset.
    pub fn is_clean(&self) -> bool {
        self.silent == 0
    }
}

impl SeuCampaign {
    /// Creates a campaign.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_bit_cycle` is not a finite probability in
    /// `[0, 1]`.
    pub fn new(rate_per_bit_cycle: f64, seed: u64) -> Self {
        assert!(
            rate_per_bit_cycle.is_finite() && (0.0..=1.0).contains(&rate_per_bit_cycle),
            "SEU rate {rate_per_bit_cycle} must be a probability in [0, 1]"
        );
        Self {
            rate_per_bit_cycle,
            seed,
        }
    }

    /// Runs the campaign over a streamed batch of `samples` inputs and
    /// classifies every upset's fate under the pipeline's protection
    /// scheme.
    pub fn run(&self, pipeline: &Pipeline, samples: usize) -> SeuOutcome {
        let cycles = pipeline.schedule(samples).makespan;
        self.outcome_for(pipeline, cycles, self.seed)
    }

    /// Runs `trials` independent repetitions of the campaign (trial `i`
    /// uses seed `seed + i`) over the same streamed batch, fanned out to
    /// the [`univsa_par`] worker pool.
    ///
    /// The exposure schedule is computed once and shared; each trial is
    /// fully determined by its own seed, so the returned outcomes are
    /// identical at every thread count and `run_trials(p, s, 1)[0]`
    /// equals `run(p, s)`.
    pub fn run_trials(
        &self,
        pipeline: &Pipeline,
        samples: usize,
        trials: usize,
    ) -> Vec<SeuOutcome> {
        let cycles = pipeline.schedule(samples).makespan;
        univsa_par::map_indexed("hw.seu_trials", trials, |i| {
            self.outcome_for(pipeline, cycles, self.seed.wrapping_add(i as u64))
        })
    }

    /// One seeded campaign over an already-computed exposure window.
    fn outcome_for(&self, pipeline: &Pipeline, cycles: u64, seed: u64) -> SeuOutcome {
        let hw = pipeline.hw();
        let memory_bits = (hw.memory_kib * 8192.0).round() as u64;
        let words = memory_bits.div_ceil(64).max(1);
        let stored_bits = match hw.protection {
            Protection::None => words * 64,
            Protection::ParityDetect => words * 65,
            Protection::Tmr => 3 * words * 64,
        };

        let mut rng = StdRng::seed_from_u64(seed);
        let expected = self.rate_per_bit_cycle * stored_bits as f64 * cycles as f64;
        let upsets = draw_count(expected, &mut rng).min(MAX_UPSETS);

        let (detected, corrected, silent) = match hw.protection {
            Protection::None => (0, 0, upsets),
            Protection::ParityDetect => {
                // flips per 65-bit protected word (data + parity bit)
                let mut hits: HashMap<u64, u64> = HashMap::new();
                for _ in 0..upsets {
                    *hits.entry(rng.gen_range(0..words)).or_insert(0) += 1;
                }
                let mut detected = 0;
                let mut silent = 0;
                for count in hits.values() {
                    if count % 2 == 1 {
                        detected += count;
                    } else {
                        silent += count;
                    }
                }
                (detected, 0, silent)
            }
            Protection::Tmr => {
                // flips per (word, bit) position, per redundant copy
                let mut hits: HashMap<(u64, u8), [u64; 3]> = HashMap::new();
                for _ in 0..upsets {
                    let word = rng.gen_range(0..words);
                    let bit = rng.gen_range(0..64u32) as u8;
                    let copy = rng.gen_range(0..3usize);
                    hits.entry((word, bit)).or_insert([0; 3])[copy] += 1;
                }
                let mut corrected = 0;
                let mut silent = 0;
                for copies in hits.values() {
                    let total: u64 = copies.iter().sum();
                    let flipped = copies.iter().filter(|&&c| c % 2 == 1).count();
                    if flipped >= 2 {
                        silent += total;
                    } else {
                        corrected += total;
                    }
                }
                (0, corrected, silent)
            }
        };

        SeuOutcome {
            protection: hw.protection,
            cycles,
            stored_bits,
            upsets,
            detected,
            corrected,
            silent,
        }
    }
}

/// Draws an upset count with the expected value `expected`: the integer
/// part deterministically plus one Bernoulli trial for the fraction.
fn draw_count(expected: f64, rng: &mut StdRng) -> u64 {
    let whole = expected.floor();
    let frac = expected - whole;
    let mut count = whole as u64;
    if frac > 0.0 && rng.gen_bool(frac) {
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HwConfig;
    use univsa::UniVsaConfig;
    use univsa_data::TaskSpec;

    fn pipeline(protection: Protection) -> Pipeline {
        let spec = TaskSpec {
            name: "ISOLET".into(),
            width: 16,
            length: 40,
            classes: 26,
            levels: 256,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(4)
            .d_k(3)
            .out_channels(22)
            .voters(3)
            .build()
            .unwrap();
        Pipeline::new(HwConfig::new(&cfg).with_protection(protection))
    }

    #[test]
    fn zero_rate_injects_nothing() {
        for p in Protection::ALL {
            let out = SeuCampaign::new(0.0, 7).run(&pipeline(p), 8);
            assert_eq!(out.upsets, 0);
            assert!(out.is_clean());
            assert_eq!(out.silent_fraction(), 0.0);
        }
    }

    #[test]
    fn same_seed_reproduces_campaign() {
        let p = pipeline(Protection::Tmr);
        let a = SeuCampaign::new(1e-9, 42).run(&p, 16);
        let b = SeuCampaign::new(1e-9, 42).run(&p, 16);
        assert_eq!(a, b);
        let c = SeuCampaign::new(1e-9, 43).run(&p, 16);
        assert_eq!(a.stored_bits, c.stored_bits);
    }

    #[test]
    fn run_trials_matches_run_and_varies_by_seed() {
        let p = pipeline(Protection::ParityDetect);
        let campaign = SeuCampaign::new(1e-9, 42);
        let trials = campaign.run_trials(&p, 16, 4);
        assert_eq!(trials.len(), 4);
        assert_eq!(trials[0], campaign.run(&p, 16));
        // trial i reproduces a campaign seeded seed + i
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(*t, SeuCampaign::new(1e-9, 42 + i as u64).run(&p, 16));
        }
    }

    #[test]
    fn run_trials_independent_of_thread_count() {
        let p = pipeline(Protection::Tmr);
        let campaign = SeuCampaign::new(1e-9, 7);
        let serial = univsa_par::with_threads(1, || campaign.run_trials(&p, 16, 6));
        let parallel = univsa_par::with_threads(4, || campaign.run_trials(&p, 16, 6));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fates_conserve_upsets() {
        for p in Protection::ALL {
            let out = SeuCampaign::new(1e-9, 3).run(&pipeline(p), 32);
            assert!(out.upsets > 0, "{:?} drew no upsets", p);
            assert_eq!(out.detected + out.corrected + out.silent, out.upsets);
        }
    }

    #[test]
    fn unprotected_upsets_are_all_silent() {
        let out = SeuCampaign::new(1e-9, 5).run(&pipeline(Protection::None), 32);
        assert!(out.upsets > 0);
        assert_eq!(out.silent, out.upsets);
        assert_eq!(out.detected, 0);
        assert_eq!(out.corrected, 0);
    }

    #[test]
    fn parity_detects_sparse_upsets() {
        // low rate → word collisions are rare, so nearly every upset is a
        // lone flip in its word and gets detected
        let out = SeuCampaign::new(1e-10, 11).run(&pipeline(Protection::ParityDetect), 32);
        assert!(out.upsets > 0);
        assert!(out.detected > 0);
        assert_eq!(out.corrected, 0);
        assert!(
            out.silent_fraction() < 0.2,
            "parity escape fraction {}",
            out.silent_fraction()
        );
    }

    #[test]
    fn tmr_corrects_sparse_upsets() {
        let out = SeuCampaign::new(1e-10, 13).run(&pipeline(Protection::Tmr), 32);
        assert!(out.upsets > 0);
        assert!(out.corrected > 0);
        assert_eq!(out.detected, 0);
        assert!(
            out.silent_fraction() < 0.2,
            "TMR escape fraction {}",
            out.silent_fraction()
        );
    }

    #[test]
    fn stored_bits_reflect_protection() {
        let none = SeuCampaign::new(0.0, 1).run(&pipeline(Protection::None), 1);
        let parity = SeuCampaign::new(0.0, 1).run(&pipeline(Protection::ParityDetect), 1);
        let tmr = SeuCampaign::new(0.0, 1).run(&pipeline(Protection::Tmr), 1);
        assert_eq!(tmr.stored_bits, 3 * none.stored_bits);
        assert_eq!(parity.stored_bits, none.stored_bits / 64 * 65);
        assert!(none.cycles > 0);
    }

    #[test]
    fn higher_rate_draws_more_upsets() {
        let p = pipeline(Protection::None);
        let low = SeuCampaign::new(1e-10, 9).run(&p, 32);
        let high = SeuCampaign::new(1e-8, 9).run(&p, 32);
        assert!(high.upsets > low.upsets);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn rejects_bad_rate() {
        SeuCampaign::new(1.5, 0);
    }
}
