//! Calibrated area/power cost models.
//!
//! The paper reports post-implementation numbers from Vivado 2022.2 on the
//! Zynq-ZU3EG (Table IV). We reproduce them with analytic models whose
//! coefficients were least-squares fitted to those six rows:
//!
//! * **LUTs**: the dominant structures are the `O`-parallel convolution/
//!   encoding datapaths, each spanning the `W·L` line buffer —
//!   `LUT(k) = 5.885 + 0.00029178 · O·W·L`. Residuals on the paper's six
//!   configurations are within a few k-LUT; the fit slightly overestimates
//!   the two smallest designs (ISOLET, HAR) and underestimates CHB-IB
//!   (its `D_K = 5` kernel adds area the single-term model does not see).
//! * **Power**: static + LUT-proportional dynamic power at 250 MHz —
//!   `P(W) = 0.0518 + 0.012151 · LUT(k)`.
//! * **BRAM**: one 36 Kb block per started 4.5 KiB of model memory
//!   (matches five of six paper rows exactly; ISOLET comes out one high
//!   because the paper packs part of **F** into LUTRAM).
//! * **DSPs**: zero — the datapath is XNOR/popcount/adder only, exactly as
//!   the paper reports for UniVSA.

use crate::config::Protection;
use crate::HwConfig;

/// Area/power estimator, calibrated against Table IV (see module docs).
///
/// Fault-tolerance schemes ([`Protection`]) are priced on top of the
/// baseline fit; with [`Protection::None`] every estimate reproduces the
/// calibrated baseline exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Base LUT count (controller + FIFOs + DVP + AXI glue), in k-LUTs.
    pub lut_base_k: f64,
    /// k-LUTs per unit of `O · W · L`.
    pub lut_per_owl: f64,
    /// Static power in watts.
    pub power_static_w: f64,
    /// Dynamic power per k-LUT at 250 MHz, in watts.
    pub power_per_klut_w: f64,
    /// KiB of model memory per 36 Kb BRAM block.
    pub bram_kib: f64,
    /// Flip-flops per LUT in the baseline datapath (registers tracking the
    /// pipeline stages), in k-FFs per k-LUT.
    pub ff_per_lut: f64,
    /// k-LUTs for the per-read-port parity checkers
    /// ([`Protection::ParityDetect`]): a 65-input XOR reduce per weight
    /// memory read port.
    pub parity_luts_k: f64,
    /// k-LUTs for the bitwise majority voters on the read path
    /// ([`Protection::Tmr`]): one 3-input majority gate per datapath bit.
    pub tmr_voter_luts_k: f64,
    /// Extra watts per protection-added BRAM block at 250 MHz (clocked
    /// block RAM draws power whether or not the copy is being read).
    pub power_per_bram_w: f64,
}

impl CostModel {
    /// The coefficients fitted to the paper's Table IV.
    pub fn calibrated() -> Self {
        Self {
            lut_base_k: 5.885,
            lut_per_owl: 0.000_291_78,
            power_static_w: 0.0518,
            power_per_klut_w: 0.012_151,
            bram_kib: 4.5,
            ff_per_lut: 0.6,
            parity_luts_k: 0.35,
            tmr_voter_luts_k: 1.1,
            power_per_bram_w: 0.004,
        }
    }

    /// Estimated LUT usage in thousands.
    ///
    /// With BiConv instantiated the dominant structures are the
    /// `O`-parallel conv/encode datapaths spanning the `W·L` line buffer.
    /// Without it (an LDC-style design) the datapath collapses to a serial
    /// `D_H`-wide XNOR/popcount lane, which is why the paper's own LDC
    /// implementation needs under 1k LUTs.
    pub fn luts_k(&self, hw: &HwConfig) -> f64 {
        let datapath = if hw.biconv {
            let owl = (hw.out_channels * hw.width * hw.length) as f64;
            self.lut_base_k + self.lut_per_owl * owl
        } else {
            0.5 + 0.01 * hw.d_h as f64
        };
        datapath + self.protection_luts_k(hw.protection)
    }

    /// LUT overhead of a fault-tolerance scheme, in k-LUTs (zero for
    /// [`Protection::None`]).
    pub fn protection_luts_k(&self, protection: Protection) -> f64 {
        match protection {
            Protection::None => 0.0,
            Protection::ParityDetect => self.parity_luts_k,
            Protection::Tmr => self.tmr_voter_luts_k,
        }
    }

    /// Estimated flip-flop usage in thousands: pipeline registers
    /// proportional to the LUT fabric, plus the protection scheme's state
    /// (a sticky error flag per parity checker; the voter output registers
    /// for TMR, one per datapath bit — approximated by the same constants
    /// that size the checker/voter LUTs).
    pub fn ffs_k(&self, hw: &HwConfig) -> f64 {
        self.ff_per_lut * self.luts_k(hw) + self.protection_luts_k(hw.protection)
    }

    /// Estimated power in watts, scaled linearly with clock relative to
    /// the 250 MHz calibration point. Protection adds the dynamic power of
    /// its extra LUTs (already inside [`CostModel::luts_k`]) and of the
    /// BRAMs holding the parity bits / redundant copies.
    pub fn power_w(&self, hw: &HwConfig) -> f64 {
        let clock_ratio = hw.clock_mhz / 250.0;
        let extra_brams = self.brams(hw).saturating_sub(self.baseline_brams(hw)) as f64;
        self.power_static_w
            + (self.power_per_klut_w * self.luts_k(hw) + self.power_per_bram_w * extra_brams)
                * clock_ratio
    }

    /// Estimated 36 Kb BRAM blocks for the stored (protection-inflated)
    /// memory footprint.
    pub fn brams(&self, hw: &HwConfig) -> u32 {
        ((hw.stored_memory_kib() / self.bram_kib).round() as u32).max(1)
    }

    /// BRAM blocks the unprotected design would need (the Table IV
    /// baseline).
    fn baseline_brams(&self, hw: &HwConfig) -> u32 {
        ((hw.memory_kib / self.bram_kib).round() as u32).max(1)
    }

    /// Estimated DSP blocks (always zero: no multipliers in the datapath).
    pub fn dsps(&self, _hw: &HwConfig) -> u32 {
        0
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa::UniVsaConfig;
    use univsa_data::TaskSpec;

    #[allow(clippy::too_many_arguments)]
    fn hw(
        name: &str,
        w: usize,
        l: usize,
        c: usize,
        d_h: usize,
        d_l: usize,
        d_k: usize,
        o: usize,
        theta: usize,
    ) -> HwConfig {
        let spec = TaskSpec {
            name: name.into(),
            width: w,
            length: l,
            classes: c,
            levels: 256,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(d_h)
            .d_l(d_l)
            .d_k(d_k)
            .out_channels(o)
            .voters(theta)
            .build()
            .unwrap();
        HwConfig::new(&cfg)
    }

    /// Table IV LUT column, reproduced to within the documented residuals.
    #[test]
    fn table4_lut_shapes() {
        let m = CostModel::calibrated();
        let cases = [
            (hw("EEGMMI", 16, 64, 2, 8, 2, 3, 95, 1), 33.62, 3.0),
            (hw("BCI-III-V", 16, 6, 3, 8, 1, 3, 151, 3), 10.10, 1.5),
            (hw("CHB-B", 23, 64, 2, 8, 2, 3, 16, 3), 13.92, 2.0),
            (hw("CHB-IB", 23, 64, 2, 4, 1, 5, 16, 1), 16.46, 4.0),
            (hw("ISOLET", 16, 40, 26, 4, 4, 3, 22, 3), 7.92, 2.5),
            (hw("HAR", 16, 36, 6, 8, 4, 3, 18, 3), 6.78, 2.5),
        ];
        for (hw, paper, tol) in cases {
            let model = m.luts_k(&hw);
            assert!(
                (model - paper).abs() < tol,
                "{}x{}: model {model:.2}k vs paper {paper}k",
                hw.width,
                hw.length
            );
        }
    }

    /// Table IV power column: all under 0.5 W, EEGMMI the largest.
    #[test]
    fn table4_power_shapes() {
        let m = CostModel::calibrated();
        let eegmmi = m.power_w(&hw("EEGMMI", 16, 64, 2, 8, 2, 3, 95, 1));
        let isolet = m.power_w(&hw("ISOLET", 16, 40, 26, 4, 4, 3, 22, 3));
        let har = m.power_w(&hw("HAR", 16, 36, 6, 8, 4, 3, 18, 3));
        assert!(eegmmi < 0.55, "EEGMMI power {eegmmi}");
        assert!(eegmmi > isolet && eegmmi > har);
        assert!(isolet < 0.2 && har < 0.2);
    }

    #[test]
    fn brams_match_table4_mostly() {
        let m = CostModel::calibrated();
        assert_eq!(m.brams(&hw("EEGMMI", 16, 64, 2, 8, 2, 3, 95, 1)), 3);
        assert_eq!(m.brams(&hw("BCI-III-V", 16, 6, 3, 8, 1, 3, 151, 3)), 1);
        assert_eq!(m.brams(&hw("CHB-B", 23, 64, 2, 8, 2, 3, 16, 3)), 1);
        assert_eq!(m.brams(&hw("HAR", 16, 36, 6, 8, 4, 3, 18, 3)), 1);
    }

    #[test]
    fn ldc_style_design_is_sub_klut() {
        // the paper's LDC row: 784 features, 10 classes, D = 64, no conv —
        // 0.75k LUTs
        let spec = TaskSpec {
            name: "mnist-like".into(),
            width: 28,
            length: 28,
            classes: 10,
            levels: 256,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(64)
            .d_l(64)
            .out_channels(64)
            .voters(1)
            .enhancements(univsa::Enhancements::none())
            .build()
            .unwrap();
        let m = CostModel::calibrated();
        let luts = m.luts_k(&HwConfig::with_clock(&cfg, 200.0));
        assert!((luts - 0.75).abs() < 0.6, "LDC-style LUTs {luts}k");
    }

    #[test]
    fn no_dsps() {
        let m = CostModel::calibrated();
        assert_eq!(m.dsps(&hw("ISOLET", 16, 40, 26, 4, 4, 3, 22, 3)), 0);
    }

    #[test]
    fn protection_none_matches_baseline_exactly() {
        // the Table IV calibration must be untouched by the protection
        // pricing when no scheme is selected
        let m = CostModel::calibrated();
        let base = hw("ISOLET", 16, 40, 26, 4, 4, 3, 22, 3);
        let none = base.clone().with_protection(Protection::None);
        assert_eq!(m.luts_k(&base), m.luts_k(&none));
        assert_eq!(m.power_w(&base), m.power_w(&none));
        assert_eq!(m.brams(&base), m.brams(&none));
        assert_eq!(m.protection_luts_k(Protection::None), 0.0);
    }

    #[test]
    fn protection_costs_are_ordered() {
        let m = CostModel::calibrated();
        let base = hw("EEGMMI", 16, 64, 2, 8, 2, 3, 95, 1);
        let parity = base.clone().with_protection(Protection::ParityDetect);
        let tmr = base.clone().with_protection(Protection::Tmr);
        assert!(m.luts_k(&base) < m.luts_k(&parity));
        assert!(m.luts_k(&parity) < m.luts_k(&tmr));
        assert!(m.power_w(&base) < m.power_w(&parity));
        assert!(m.power_w(&parity) < m.power_w(&tmr));
        assert!(m.brams(&base) <= m.brams(&parity));
        assert!(m.brams(&parity) < m.brams(&tmr));
        assert!(m.ffs_k(&base) < m.ffs_k(&parity));
        assert!(m.ffs_k(&parity) < m.ffs_k(&tmr));
    }

    #[test]
    fn tmr_triples_brams_for_large_memories() {
        let m = CostModel::calibrated();
        let base = hw("EEGMMI", 16, 64, 2, 8, 2, 3, 95, 1); // 3 BRAM baseline
        let tmr = base.with_protection(Protection::Tmr);
        assert_eq!(m.brams(&tmr), 9);
    }

    #[test]
    fn ffs_track_luts() {
        let m = CostModel::calibrated();
        let base = hw("ISOLET", 16, 40, 26, 4, 4, 3, 22, 3);
        let expect = m.ff_per_lut * m.luts_k(&base);
        assert!((m.ffs_k(&base) - expect).abs() < 1e-12);
    }

    #[test]
    fn power_scales_with_clock() {
        let m = CostModel::calibrated();
        let spec = TaskSpec {
            name: "t".into(),
            width: 16,
            length: 40,
            classes: 26,
            levels: 256,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(4)
            .out_channels(22)
            .voters(3)
            .build()
            .unwrap();
        let slow = HwConfig::with_clock(&cfg, 125.0);
        let fast = HwConfig::with_clock(&cfg, 250.0);
        assert!(m.power_w(&slow) < m.power_w(&fast));
    }
}
