//! Calibrated area/power cost models.
//!
//! The paper reports post-implementation numbers from Vivado 2022.2 on the
//! Zynq-ZU3EG (Table IV). We reproduce them with analytic models whose
//! coefficients were least-squares fitted to those six rows:
//!
//! * **LUTs**: the dominant structures are the `O`-parallel convolution/
//!   encoding datapaths, each spanning the `W·L` line buffer —
//!   `LUT(k) = 5.885 + 0.00029178 · O·W·L`. Residuals on the paper's six
//!   configurations are within a few k-LUT; the fit slightly overestimates
//!   the two smallest designs (ISOLET, HAR) and underestimates CHB-IB
//!   (its `D_K = 5` kernel adds area the single-term model does not see).
//! * **Power**: static + LUT-proportional dynamic power at 250 MHz —
//!   `P(W) = 0.0518 + 0.012151 · LUT(k)`.
//! * **BRAM**: one 36 Kb block per started 4.5 KiB of model memory
//!   (matches five of six paper rows exactly; ISOLET comes out one high
//!   because the paper packs part of **F** into LUTRAM).
//! * **DSPs**: zero — the datapath is XNOR/popcount/adder only, exactly as
//!   the paper reports for UniVSA.

use serde::{Deserialize, Serialize};

use crate::HwConfig;

/// Area/power estimator, calibrated against Table IV (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Base LUT count (controller + FIFOs + DVP + AXI glue), in k-LUTs.
    pub lut_base_k: f64,
    /// k-LUTs per unit of `O · W · L`.
    pub lut_per_owl: f64,
    /// Static power in watts.
    pub power_static_w: f64,
    /// Dynamic power per k-LUT at 250 MHz, in watts.
    pub power_per_klut_w: f64,
    /// KiB of model memory per 36 Kb BRAM block.
    pub bram_kib: f64,
}

impl CostModel {
    /// The coefficients fitted to the paper's Table IV.
    pub fn calibrated() -> Self {
        Self {
            lut_base_k: 5.885,
            lut_per_owl: 0.000_291_78,
            power_static_w: 0.0518,
            power_per_klut_w: 0.012_151,
            bram_kib: 4.5,
        }
    }

    /// Estimated LUT usage in thousands.
    ///
    /// With BiConv instantiated the dominant structures are the
    /// `O`-parallel conv/encode datapaths spanning the `W·L` line buffer.
    /// Without it (an LDC-style design) the datapath collapses to a serial
    /// `D_H`-wide XNOR/popcount lane, which is why the paper's own LDC
    /// implementation needs under 1k LUTs.
    pub fn luts_k(&self, hw: &HwConfig) -> f64 {
        if hw.biconv {
            let owl = (hw.out_channels * hw.width * hw.length) as f64;
            self.lut_base_k + self.lut_per_owl * owl
        } else {
            0.5 + 0.01 * hw.d_h as f64
        }
    }

    /// Estimated power in watts, scaled linearly with clock relative to
    /// the 250 MHz calibration point.
    pub fn power_w(&self, hw: &HwConfig) -> f64 {
        let clock_ratio = hw.clock_mhz / 250.0;
        self.power_static_w + self.power_per_klut_w * self.luts_k(hw) * clock_ratio
    }

    /// Estimated 36 Kb BRAM blocks.
    pub fn brams(&self, hw: &HwConfig) -> u32 {
        ((hw.memory_kib / self.bram_kib).round() as u32).max(1)
    }

    /// Estimated DSP blocks (always zero: no multipliers in the datapath).
    pub fn dsps(&self, _hw: &HwConfig) -> u32 {
        0
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa::UniVsaConfig;
    use univsa_data::TaskSpec;

    fn hw(
        name: &str,
        w: usize,
        l: usize,
        c: usize,
        d_h: usize,
        d_l: usize,
        d_k: usize,
        o: usize,
        theta: usize,
    ) -> HwConfig {
        let spec = TaskSpec {
            name: name.into(),
            width: w,
            length: l,
            classes: c,
            levels: 256,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(d_h)
            .d_l(d_l)
            .d_k(d_k)
            .out_channels(o)
            .voters(theta)
            .build()
            .unwrap();
        HwConfig::new(&cfg)
    }

    /// Table IV LUT column, reproduced to within the documented residuals.
    #[test]
    fn table4_lut_shapes() {
        let m = CostModel::calibrated();
        let cases = [
            (hw("EEGMMI", 16, 64, 2, 8, 2, 3, 95, 1), 33.62, 3.0),
            (hw("BCI-III-V", 16, 6, 3, 8, 1, 3, 151, 3), 10.10, 1.5),
            (hw("CHB-B", 23, 64, 2, 8, 2, 3, 16, 3), 13.92, 2.0),
            (hw("CHB-IB", 23, 64, 2, 4, 1, 5, 16, 1), 16.46, 4.0),
            (hw("ISOLET", 16, 40, 26, 4, 4, 3, 22, 3), 7.92, 2.5),
            (hw("HAR", 16, 36, 6, 8, 4, 3, 18, 3), 6.78, 2.5),
        ];
        for (hw, paper, tol) in cases {
            let model = m.luts_k(&hw);
            assert!(
                (model - paper).abs() < tol,
                "{}x{}: model {model:.2}k vs paper {paper}k",
                hw.width,
                hw.length
            );
        }
    }

    /// Table IV power column: all under 0.5 W, EEGMMI the largest.
    #[test]
    fn table4_power_shapes() {
        let m = CostModel::calibrated();
        let eegmmi = m.power_w(&hw("EEGMMI", 16, 64, 2, 8, 2, 3, 95, 1));
        let isolet = m.power_w(&hw("ISOLET", 16, 40, 26, 4, 4, 3, 22, 3));
        let har = m.power_w(&hw("HAR", 16, 36, 6, 8, 4, 3, 18, 3));
        assert!(eegmmi < 0.55, "EEGMMI power {eegmmi}");
        assert!(eegmmi > isolet && eegmmi > har);
        assert!(isolet < 0.2 && har < 0.2);
    }

    #[test]
    fn brams_match_table4_mostly() {
        let m = CostModel::calibrated();
        assert_eq!(m.brams(&hw("EEGMMI", 16, 64, 2, 8, 2, 3, 95, 1)), 3);
        assert_eq!(m.brams(&hw("BCI-III-V", 16, 6, 3, 8, 1, 3, 151, 3)), 1);
        assert_eq!(m.brams(&hw("CHB-B", 23, 64, 2, 8, 2, 3, 16, 3)), 1);
        assert_eq!(m.brams(&hw("HAR", 16, 36, 6, 8, 4, 3, 18, 3)), 1);
    }

    #[test]
    fn ldc_style_design_is_sub_kluT() {
        // the paper's LDC row: 784 features, 10 classes, D = 64, no conv —
        // 0.75k LUTs
        let spec = TaskSpec {
            name: "mnist-like".into(),
            width: 28,
            length: 28,
            classes: 10,
            levels: 256,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(64)
            .d_l(64)
            .out_channels(64)
            .voters(1)
            .enhancements(univsa::Enhancements::none())
            .build()
            .unwrap();
        let m = CostModel::calibrated();
        let luts = m.luts_k(&HwConfig::with_clock(&cfg, 200.0));
        assert!((luts - 0.75).abs() < 0.6, "LDC-style LUTs {luts}k");
    }

    #[test]
    fn no_dsps() {
        let m = CostModel::calibrated();
        assert_eq!(m.dsps(&hw("ISOLET", 16, 40, 26, 4, 4, 3, 22, 3)), 0);
    }

    #[test]
    fn power_scales_with_clock() {
        let m = CostModel::calibrated();
        let spec = TaskSpec {
            name: "t".into(),
            width: 16,
            length: 40,
            classes: 26,
            levels: 256,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(4)
            .out_channels(22)
            .voters(3)
            .build()
            .unwrap();
        let slow = HwConfig::with_clock(&cfg, 125.0);
        let fast = HwConfig::with_clock(&cfg, 250.0);
        assert!(m.power_w(&slow) < m.power_w(&fast));
    }
}
