//! Streaming pipeline schedule (the paper's Fig. 5).

use crate::{HwConfig, Stage};

/// One scheduled execution of a stage on one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Which module executes.
    pub stage: Stage,
    /// Index of the streamed sample.
    pub sample: usize,
    /// First busy cycle.
    pub start: u64,
    /// One past the last busy cycle.
    pub end: u64,
}

/// The full schedule of a streamed batch: entries sorted by start cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Scheduled stage executions.
    pub entries: Vec<ScheduleEntry>,
    /// Cycle at which the last sample's similarity completes.
    pub makespan: u64,
}

/// Occupancy of one pipeline module over a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageUtilization {
    /// The module.
    pub stage: Stage,
    /// Cycles the module spent executing samples.
    pub busy_cycles: u64,
    /// `busy_cycles / makespan` (0 for an empty schedule; a module that
    /// is never idle scores 1).
    pub utilization: f64,
}

impl ScheduleTrace {
    /// Entries of one sample in dataflow order.
    pub fn sample_entries(&self, sample: usize) -> Vec<&ScheduleEntry> {
        self.entries.iter().filter(|e| e.sample == sample).collect()
    }

    /// Busy cycles a stage spent executing over this schedule.
    pub fn stage_busy_cycles(&self, stage: Stage) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Per-stage occupancy (busy cycles / makespan) in dataflow order —
    /// the utilization counters surfaced by [`Pipeline::schedule`]. A
    /// module that is not instantiated (BiConv off) reports 0 busy cycles.
    pub fn stage_utilization(&self) -> Vec<StageUtilization> {
        Stage::ALL
            .iter()
            .map(|&stage| {
                let busy_cycles = self.stage_busy_cycles(stage);
                let utilization = if self.makespan == 0 {
                    0.0
                } else {
                    busy_cycles as f64 / self.makespan as f64
                };
                StageUtilization {
                    stage,
                    busy_cycles,
                    utilization,
                }
            })
            .collect()
    }

    /// Renders an ASCII timeline (one row per stage, annotated with that
    /// stage's occupancy), matching the bottom-right schedule diagram of
    /// the paper's Fig. 5.
    pub fn ascii_timeline(&self, columns: usize) -> String {
        let mut out = String::new();
        let scale = (self.makespan.max(1) as f64) / columns as f64;
        for u in self.stage_utilization() {
            let mut row = vec![b'.'; columns];
            for e in self.entries.iter().filter(|e| e.stage == u.stage) {
                let from = (e.start as f64 / scale) as usize;
                let to = (((e.end as f64) / scale) as usize).min(columns);
                let glyph = b'0' + (e.sample % 10) as u8;
                for slot in row.iter_mut().take(to).skip(from) {
                    *slot = glyph;
                }
            }
            out.push_str(&format!(
                "{:>10} {:>5.1}% |",
                u.stage.to_string(),
                100.0 * u.utilization
            ));
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out
    }
}

/// The accelerator pipeline: computes per-stage latencies and schedules
/// streamed samples with double buffering (a stage starts a sample as soon
/// as both the stage itself and the sample's previous stage are done —
/// exactly what the paper's double-buffered BiConv permits).
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    hw: HwConfig,
}

impl Pipeline {
    /// Builds the pipeline for an accelerator instance.
    pub fn new(hw: HwConfig) -> Self {
        Self { hw }
    }

    /// The accelerator instance.
    #[inline]
    pub fn hw(&self) -> &HwConfig {
        &self.hw
    }

    /// Latency of each stage for one sample, in dataflow order.
    pub fn stage_latencies(&self) -> Vec<(Stage, u64)> {
        Stage::ALL
            .iter()
            .map(|&s| (s, s.latency_cycles(&self.hw)))
            .collect()
    }

    /// Single-sample latency in cycles: the sum of the stage latencies
    /// plus controller overhead.
    pub fn sample_latency_cycles(&self) -> u64 {
        self.stage_latencies().iter().map(|&(_, c)| c).sum::<u64>() + Stage::CONTROLLER_CYCLES
    }

    /// Steady-state initiation interval under streaming, in cycles: the
    /// slowest stage bounds the stream (BiConv in every paper
    /// configuration).
    pub fn initiation_interval_cycles(&self) -> u64 {
        self.stage_latencies()
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0)
            .max(1)
    }

    /// Schedules `samples` inputs with NO pipelining: each sample runs all
    /// four stages to completion before the next one starts. This is the
    /// baseline the paper's double-buffered design is measured against.
    pub fn schedule_sequential(&self, samples: usize) -> ScheduleTrace {
        let latencies = self.stage_latencies();
        let mut entries = Vec::with_capacity(samples * latencies.len());
        let mut clock = 0u64;
        for sample in 0..samples {
            for &(stage, cycles) in &latencies {
                if cycles == 0 {
                    continue;
                }
                entries.push(ScheduleEntry {
                    stage,
                    sample,
                    start: clock,
                    end: clock + cycles,
                });
                clock += cycles;
            }
        }
        ScheduleTrace {
            entries,
            makespan: clock,
        }
    }

    /// Steady-state streaming speedup of the pipelined schedule over the
    /// sequential one (≥ 1; approaches `Σ stages / max stage`).
    pub fn pipelining_speedup(&self) -> f64 {
        let total: u64 = self.stage_latencies().iter().map(|&(_, c)| c).sum();
        total.max(1) as f64 / self.initiation_interval_cycles() as f64
    }

    /// Schedules `samples` streamed inputs and returns the full trace.
    pub fn schedule(&self, samples: usize) -> ScheduleTrace {
        let latencies = self.stage_latencies();
        let stages = latencies.len();
        // stage_free[s]: cycle at which module s becomes available
        let mut stage_free = vec![0u64; stages];
        let mut entries = Vec::with_capacity(samples * stages);
        let mut makespan = 0;
        for sample in 0..samples {
            let mut ready = 0u64; // when this sample's data is available
            for (s, &(stage, cycles)) in latencies.iter().enumerate() {
                if cycles == 0 {
                    continue; // module not instantiated (e.g. BiConv off)
                }
                let start = ready.max(stage_free[s]);
                let end = start + cycles;
                entries.push(ScheduleEntry {
                    stage,
                    sample,
                    start,
                    end,
                });
                stage_free[s] = end;
                ready = end;
            }
            makespan = makespan.max(ready);
        }
        entries.sort_by_key(|e| (e.start, e.sample));
        let trace = ScheduleTrace { entries, makespan };
        if univsa_telemetry::trace_enabled() {
            // replay the cycle-level stage occupancy onto the virtual-time
            // process of the Chrome trace: one track per hardware stage,
            // the tick clock being cycles rather than nanoseconds
            for e in &trace.entries {
                univsa_telemetry::virtual_span(
                    &e.stage.to_string(),
                    &format!("sample {}", e.sample),
                    e.start,
                    e.end - e.start,
                    &[("sample", e.sample.into())],
                );
            }
        }
        if univsa_telemetry::enabled() {
            for u in trace.stage_utilization() {
                let name = u.stage.to_string().to_lowercase();
                univsa_telemetry::counter(&format!("hw.{name}.busy_cycles"), u.busy_cycles);
            }
            univsa_telemetry::event(
                "hw",
                "schedule",
                &[
                    ("samples", samples.into()),
                    ("makespan_cycles", trace.makespan.into()),
                    (
                        "initiation_interval_cycles",
                        self.initiation_interval_cycles().into(),
                    ),
                ],
            );
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa::UniVsaConfig;
    use univsa_data::TaskSpec;

    fn pipeline() -> Pipeline {
        let spec = TaskSpec {
            name: "ISOLET".into(),
            width: 16,
            length: 40,
            classes: 26,
            levels: 256,
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(4)
            .d_k(3)
            .out_channels(22)
            .voters(3)
            .build()
            .unwrap();
        Pipeline::new(HwConfig::new(&cfg))
    }

    #[test]
    fn interval_is_biconv_latency() {
        let p = pipeline();
        assert_eq!(
            p.initiation_interval_cycles(),
            Stage::BiConv.latency_cycles(p.hw())
        );
    }

    #[test]
    fn single_sample_latency_sums_stages() {
        let p = pipeline();
        let expect: u64 = Stage::ALL
            .iter()
            .map(|s| s.latency_cycles(p.hw()))
            .sum::<u64>()
            + Stage::CONTROLLER_CYCLES;
        assert_eq!(p.sample_latency_cycles(), expect);
    }

    #[test]
    fn schedule_respects_dataflow_order() {
        let p = pipeline();
        let trace = p.schedule(3);
        for sample in 0..3 {
            let entries = trace.sample_entries(sample);
            assert_eq!(entries.len(), 4);
            for pair in entries.windows(2) {
                assert!(
                    pair[1].start >= pair[0].end,
                    "stage {} of sample {sample} started before {} finished",
                    pair[1].stage,
                    pair[0].stage
                );
            }
        }
    }

    #[test]
    fn schedule_never_double_books_a_module() {
        let p = pipeline();
        let trace = p.schedule(5);
        for stage in Stage::ALL {
            let mut busy: Vec<(u64, u64)> = trace
                .entries
                .iter()
                .filter(|e| e.stage == stage)
                .map(|e| (e.start, e.end))
                .collect();
            busy.sort();
            for pair in busy.windows(2) {
                assert!(pair[1].0 >= pair[0].1, "{stage} overlaps: {pair:?}");
            }
        }
    }

    #[test]
    fn pipelining_overlaps_samples() {
        let p = pipeline();
        let trace = p.schedule(3);
        // streamed makespan must beat 3 sequential samples
        assert!(trace.makespan < 3 * p.sample_latency_cycles());
        // sample 1's DVP runs while sample 0's BiConv runs (double buffering)
        let dvp1 = trace
            .entries
            .iter()
            .find(|e| e.stage == Stage::Dvp && e.sample == 1)
            .unwrap();
        let conv0 = trace
            .entries
            .iter()
            .find(|e| e.stage == Stage::BiConv && e.sample == 0)
            .unwrap();
        assert!(dvp1.start < conv0.end, "DVP of sample 1 did not overlap");
    }

    #[test]
    fn steady_state_interval_matches_schedule() {
        let p = pipeline();
        let trace = p.schedule(8);
        // spacing between consecutive similarity completions converges to
        // the initiation interval
        let ends: Vec<u64> = (0..8)
            .map(|s| {
                trace
                    .sample_entries(s)
                    .last()
                    .expect("sample scheduled")
                    .end
            })
            .collect();
        let ii = p.initiation_interval_cycles();
        assert_eq!(ends[7] - ends[6], ii);
    }

    #[test]
    fn sequential_schedule_never_overlaps_anything() {
        let p = pipeline();
        let trace = p.schedule_sequential(4);
        let mut sorted = trace.entries.clone();
        sorted.sort_by_key(|e| e.start);
        for pair in sorted.windows(2) {
            assert!(pair[1].start >= pair[0].end);
        }
        assert_eq!(
            trace.makespan,
            4 * (p.sample_latency_cycles() - Stage::CONTROLLER_CYCLES)
        );
    }

    #[test]
    fn pipelining_beats_sequential() {
        let p = pipeline();
        let piped = p.schedule(16).makespan;
        let sequential = p.schedule_sequential(16).makespan;
        assert!(piped < sequential);
        let speedup = p.pipelining_speedup();
        assert!(speedup > 1.0, "speedup {speedup}");
        // ratio of makespans approaches the analytic speedup as the stream
        // grows
        let empirical = sequential as f64 / piped as f64;
        assert!(
            (empirical - speedup).abs() / speedup < 0.15,
            "empirical {empirical} vs analytic {speedup}"
        );
    }

    #[test]
    fn ascii_timeline_renders() {
        let p = pipeline();
        let art = p.schedule(3).ascii_timeline(64);
        assert!(art.contains("BiConv"));
        assert!(art.contains('%'));
        assert!(art.lines().count() >= 4);
    }

    #[test]
    fn stage_utilization_matches_entries() {
        let p = pipeline();
        let trace = p.schedule(8);
        let util = trace.stage_utilization();
        assert_eq!(util.len(), Stage::ALL.len());
        for u in &util {
            let expect: u64 = trace
                .entries
                .iter()
                .filter(|e| e.stage == u.stage)
                .map(|e| e.end - e.start)
                .sum();
            assert_eq!(u.busy_cycles, expect);
            let ratio = expect as f64 / trace.makespan as f64;
            assert!((u.utilization - ratio).abs() < 1e-12);
            assert!(u.utilization <= 1.0, "{} over 100%", u.stage);
        }
        // the bottleneck stage approaches full occupancy on a long stream
        let long = p.schedule(64);
        let biconv = long
            .stage_utilization()
            .into_iter()
            .find(|u| u.stage == Stage::BiConv)
            .unwrap();
        assert!(biconv.utilization > 0.9, "BiConv {}", biconv.utilization);
    }

    #[test]
    fn stage_utilization_empty_schedule_is_zero() {
        let trace = ScheduleTrace {
            entries: Vec::new(),
            makespan: 0,
        };
        for u in trace.stage_utilization() {
            assert_eq!(u.busy_cycles, 0);
            assert_eq!(u.utilization, 0.0);
        }
    }
}
