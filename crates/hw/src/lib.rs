//! # univsa-hw
//!
//! A cycle-level simulator of the UniVSA FPGA accelerator (the paper's
//! Section IV), with area/power cost models calibrated against the paper's
//! Table IV measurements on the Zynq-ZU3EG.
//!
//! The accelerator has four compute modules orchestrated by a central
//! controller:
//!
//! * **DVP** — sequential value projection through a FIFO (one feature per
//!   cycle; parallelism here would cost area without helping latency, since
//!   BiConv dominates).
//! * **BiConv** — the binary convolution, `W'·L'·D_K` iterations of
//!   `α = max(D_K, log₂ D_H)` cycles each, double-buffered so the next
//!   sample's data loads during the current convolution.
//! * **Encoding** — XNOR with **F** plus a pipelined adder tree over the
//!   `O` channels.
//! * **Similarity** — XNOR with the `Θ` class-vector sets (voter-parallel)
//!   and popcount accumulation.
//!
//! [`Pipeline::schedule`] replays the streaming schedule of the paper's
//! Fig. 5 cycle by cycle; [`CostModel`] maps a configuration to LUTs,
//! BRAMs, DSPs and power; [`HwReport::for_config`] bundles everything into
//! the Table III/IV row format.
//!
//! For fault-tolerance studies, [`Protection`] selects a hardening scheme
//! for the weight memories (per-word parity or triple modular redundancy),
//! [`CostModel`] prices its LUT/FF/BRAM/power overhead, and [`SeuCampaign`]
//! injects single-event upsets over the streaming schedule to measure how
//! many escape each scheme.
//!
//! # Examples
//!
//! ```
//! use univsa_hw::{HwConfig, HwReport};
//! use univsa::UniVsaConfig;
//! use univsa_data::TaskSpec;
//!
//! // the paper's ISOLET configuration
//! let spec = TaskSpec { name: "ISOLET".into(), width: 16, length: 40, classes: 26, levels: 256 };
//! let cfg = UniVsaConfig::for_task(&spec)
//!     .d_h(4).d_l(4).d_k(3).out_channels(22).voters(3).build().unwrap();
//! let report = HwReport::for_config(&HwConfig::new(&cfg));
//! assert!(report.latency_ms < 0.1);
//! assert!(report.power_w < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cost;
mod pipeline;
mod report;
mod rtl;
mod seu;
mod stage;

pub use config::{HwConfig, Protection};
pub use cost::CostModel;
pub use pipeline::{Pipeline, ScheduleEntry, ScheduleTrace, StageUtilization};
pub use report::{HwReport, StageBreakdown};
pub use rtl::{export_weights, RtlBundle, RtlFile, RtlGenerator};
pub use seu::{SeuCampaign, SeuOutcome};
pub use stage::Stage;
