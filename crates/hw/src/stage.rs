//! The accelerator's pipeline stages and their cycle models.

use std::fmt;

use crate::config::ceil_log2;
use crate::HwConfig;

/// One of the four compute modules of the UniVSA accelerator (plus the
/// central controller, modelled as fixed per-sample orchestration
/// overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Discriminated value projection (sequential, FIFO-fed).
    Dvp,
    /// Binary convolution (double-buffered, `O`-parallel).
    BiConv,
    /// Encoding (XNOR + adder tree over channels).
    Encoding,
    /// Similarity measurement (voter-parallel XNOR + popcount).
    Similarity,
}

impl Stage {
    /// All stages in dataflow order.
    pub const ALL: [Stage; 4] = [
        Stage::Dvp,
        Stage::BiConv,
        Stage::Encoding,
        Stage::Similarity,
    ];

    /// Latency of this stage for one sample, in cycles.
    ///
    /// * DVP streams the `N = W·L` features through the ValueBox tables
    ///   one per cycle.
    /// * BiConv runs `W'·L'·D_K` iterations of `α = max(D_K, log₂ D_H)`
    ///   cycles (the paper's Fig. 5 annotation); zero when the module is
    ///   not instantiated.
    /// * Encoding processes one grid position per cycle through an adder
    ///   tree of depth `⌈log₂ O⌉`.
    /// * Similarity popcounts `⌈D/64⌉` words per class; the `Θ` voter
    ///   sets run in parallel.
    pub fn latency_cycles(self, hw: &HwConfig) -> u64 {
        let d = hw.vsa_dim() as u64;
        match self {
            Stage::Dvp => d,
            Stage::BiConv => {
                if hw.biconv {
                    d * hw.d_k as u64 * hw.alpha() as u64
                } else {
                    0
                }
            }
            Stage::Encoding => d + ceil_log2(hw.out_channels) as u64,
            Stage::Similarity => hw.classes as u64 * d.div_ceil(64),
        }
    }

    /// Central-controller orchestration overhead per sample, in cycles.
    pub const CONTROLLER_CYCLES: u64 = 16;
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Dvp => "DVP",
            Stage::BiConv => "BiConv",
            Stage::Encoding => "Encoding",
            Stage::Similarity => "Similarity",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univsa::UniVsaConfig;
    use univsa_data::TaskSpec;

    fn hw(biconv: bool) -> HwConfig {
        let spec = TaskSpec {
            name: "t".into(),
            width: 16,
            length: 40,
            classes: 26,
            levels: 256,
        };
        let e = univsa::Enhancements {
            biconv,
            ..univsa::Enhancements::all()
        };
        let cfg = UniVsaConfig::for_task(&spec)
            .d_h(4)
            .d_l(4)
            .d_k(3)
            .out_channels(22)
            .voters(3)
            .enhancements(e)
            .build()
            .unwrap();
        HwConfig::new(&cfg)
    }

    #[test]
    fn biconv_dominates() {
        let hw = hw(true);
        let conv = Stage::BiConv.latency_cycles(&hw);
        for s in [Stage::Dvp, Stage::Encoding, Stage::Similarity] {
            assert!(
                conv > s.latency_cycles(&hw),
                "BiConv must dominate {s}: {conv} vs {}",
                s.latency_cycles(&hw)
            );
        }
    }

    #[test]
    fn isolet_conv_cycles_match_paper_formula() {
        let hw = hw(true);
        // 640 positions × D_K 3 iterations × α 3 = 5760 cycles
        assert_eq!(Stage::BiConv.latency_cycles(&hw), 5760);
        assert_eq!(Stage::Dvp.latency_cycles(&hw), 640);
        // 640 + ceil(log2 22) = 645
        assert_eq!(Stage::Encoding.latency_cycles(&hw), 645);
        // 26 classes × ceil(640/64) = 260
        assert_eq!(Stage::Similarity.latency_cycles(&hw), 260);
    }

    #[test]
    fn disabled_biconv_has_zero_latency() {
        let hw = hw(false);
        assert_eq!(Stage::BiConv.latency_cycles(&hw), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Stage::Dvp.to_string(), "DVP");
        assert_eq!(Stage::BiConv.to_string(), "BiConv");
    }
}
