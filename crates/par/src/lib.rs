//! # univsa-par
//!
//! Dependency-free scoped worker pool for the UniVSA stack.
//!
//! Every hot loop in the workspace — per-sample gradient computation,
//! batched inference, population fitness evaluation, SEU trial fan-out,
//! and the row-blocked tensor kernels — funnels through the three
//! primitives in this crate:
//!
//! * [`map_indexed`] — compute `f(i)` for `i in 0..len` on workers and
//!   return the results **in index order**.
//! * [`for_each_chunk`] — hand out disjoint mutable chunks of a slice to
//!   workers (dynamic load balancing, deterministic chunk boundaries).
//! * [`map_reduce`] — [`map_indexed`] followed by a **strictly
//!   index-ordered** fold on the calling thread.
//!
//! ## Determinism contract
//!
//! The primitives never reassociate reductions: each output slot is
//! computed entirely by one worker, and folds run on the caller in index
//! order. As long as `f(i)` itself is deterministic, results are
//! **bit-identical for every thread count** — `UNIVSA_THREADS=1` and
//! `UNIVSA_THREADS=16` produce the same floats. The workspace
//! determinism tests (`tests/determinism.rs`) pin this contract.
//!
//! ## Sizing
//!
//! The worker count comes from, in priority order:
//!
//! 1. a thread-local [`with_threads`] override (used by tests),
//! 2. a process-global [`set_threads`] override (used by `--threads`),
//! 3. the `UNIVSA_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! Nested parallel regions do not oversubscribe: a region entered from
//! inside a worker runs serially, so an outer per-sample fan-out
//! automatically serializes the tensor kernels it calls.
//!
//! ## Trace bridging
//!
//! When the `univsa-telemetry` causal flight recorder is on, every region
//! records a `par.<stage>` trace span, every executed chunk records a
//! nested `par.chunk` span on its worker's lane (`worker-0`, `worker-1`,
//! …), and the dispatching thread's causal context is re-entered on each
//! worker — so fan-out work nests under the span that dispatched it in
//! the exported Chrome trace. All of this is behind one atomic load and
//! costs nothing when tracing is off.
//!
//! When the telemetry counting allocator is on, each worker additionally
//! measures its own thread-local allocation delta over the region and the
//! summed totals are absorbed back onto the dispatching thread after the
//! join — so an enclosing `train.epoch` span's `alloc_delta_bytes`
//! includes the allocations of the fan-out it dispatched, at every pool
//! width.
//!
//! ## Utilization accounting
//!
//! Every region records per-stage counters (regions entered, chunks
//! executed, summed worker-busy time, region wall time) retrievable via
//! [`stats`] — the `univsa profile` subcommand and the `perf_baseline`
//! bench report them so pool regressions are visible from the terminal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Shared accumulators a fan-out's workers sum their thread-local
/// allocation deltas into; the dispatching thread absorbs the totals
/// after the scope joins.
#[derive(Default)]
struct AllocBridge {
    net_bytes: AtomicI64,
    alloc_count: AtomicU64,
}

impl AllocBridge {
    /// Measures `f`'s allocations on the calling worker and adds them to
    /// the shared totals.
    fn measure<R>(&self, f: impl FnOnce() -> R) -> R {
        let mark = univsa_telemetry::AllocMark::now();
        let out = f();
        let d = mark.delta();
        self.net_bytes.fetch_add(d.net_bytes, Ordering::Relaxed);
        self.alloc_count.fetch_add(d.alloc_count, Ordering::Relaxed);
        out
    }

    /// Credits the summed worker deltas to the calling (dispatching)
    /// thread's attribution counters.
    fn absorb(&self) {
        univsa_telemetry::absorb_worker_alloc(
            self.net_bytes.load(Ordering::Relaxed),
            self.alloc_count.load(Ordering::Relaxed),
        );
    }
}

/// The environment variable sizing the pool (`UNIVSA_THREADS=<n>`).
pub const ENV_VAR: &str = "UNIVSA_THREADS";

static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOCAL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Where the effective thread count came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadSource {
    /// A [`with_threads`] override on this thread.
    LocalOverride,
    /// A process-global [`set_threads`] override.
    GlobalOverride,
    /// The `UNIVSA_THREADS` environment variable.
    Env,
    /// [`std::thread::available_parallelism`] (or 1 if unknown).
    Auto,
}

impl ThreadSource {
    /// Human-readable origin, e.g. for CLI output.
    pub fn describe(&self) -> &'static str {
        match self {
            ThreadSource::LocalOverride => "with_threads override",
            ThreadSource::GlobalOverride => "--threads override",
            ThreadSource::Env => "UNIVSA_THREADS",
            ThreadSource::Auto => "available parallelism",
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var(ENV_VAR) {
        Err(_) => None,
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("warning: ignoring invalid {ENV_VAR}={v:?} (want a positive integer)");
                None
            }
        },
    })
}

/// The effective worker count for a parallel region entered on this
/// thread. Always at least 1; returns 1 inside a worker (nested regions
/// run serially).
pub fn threads() -> usize {
    threads_and_source().0
}

/// [`threads`] plus where the number came from.
pub fn threads_and_source() -> (usize, ThreadSource) {
    if IN_WORKER.with(Cell::get) {
        return (1, ThreadSource::Auto);
    }
    let local = LOCAL_OVERRIDE.with(Cell::get);
    if local > 0 {
        return (local, ThreadSource::LocalOverride);
    }
    let global = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    if global > 0 {
        return (global, ThreadSource::GlobalOverride);
    }
    match env_threads() {
        Some(n) => (n, ThreadSource::Env),
        None => (default_threads(), ThreadSource::Auto),
    }
}

/// Sets a process-global thread-count override (`0` clears it back to the
/// environment/auto default). Used by `univsa profile --threads`.
pub fn set_threads(n: usize) {
    GLOBAL_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Runs `f` with the effective thread count pinned to `n` on this thread
/// (restored afterwards, panic-safe). This is how the determinism tests
/// compare `UNIVSA_THREADS=1` against `UNIVSA_THREADS=4` inside one
/// process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_OVERRIDE.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

struct WorkerGuard(bool);

impl WorkerGuard {
    fn enter() -> Self {
        Self(IN_WORKER.with(|c| c.replace(true)))
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.0;
        IN_WORKER.with(|c| c.set(prev));
    }
}

// ---------------------------------------------------------------------------
// Per-stage utilization accounting
// ---------------------------------------------------------------------------

/// Aggregated pool counters for one stage label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Parallel regions entered (including serial fast-path runs).
    pub regions: u64,
    /// Work chunks executed across all regions.
    pub chunks: u64,
    /// Summed worker busy time in nanoseconds.
    pub busy_ns: u64,
    /// Summed region wall time in nanoseconds.
    pub wall_ns: u64,
    /// Largest worker count used by any region of this stage.
    pub max_workers: u64,
}

impl StageStats {
    /// Fraction of the pool's capacity this stage kept busy:
    /// `busy / (wall × max_workers)`, in `[0, 1]` up to timer noise.
    pub fn occupancy(&self) -> f64 {
        let denom = self.wall_ns.max(1) as f64 * self.max_workers.max(1) as f64;
        self.busy_ns as f64 / denom
    }

    fn merge(&mut self, workers: u64, chunks: u64, busy_ns: u64, wall_ns: u64) {
        self.regions += 1;
        self.chunks += chunks;
        self.busy_ns += busy_ns;
        self.wall_ns += wall_ns;
        self.max_workers = self.max_workers.max(workers);
    }
}

fn stats_map() -> &'static Mutex<BTreeMap<&'static str, StageStats>> {
    static STATS: OnceLock<Mutex<BTreeMap<&'static str, StageStats>>> = OnceLock::new();
    STATS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn record(stage: &'static str, workers: u64, chunks: u64, busy_ns: u64, wall_ns: u64) {
    let mut map = stats_map().lock().expect("par stats lock");
    map.entry(stage)
        .or_default()
        .merge(workers, chunks, busy_ns, wall_ns);
}

/// Snapshot of the per-stage pool counters, sorted by stage label.
pub fn stats() -> Vec<(&'static str, StageStats)> {
    stats_map()
        .lock()
        .expect("par stats lock")
        .iter()
        .map(|(k, v)| (*k, *v))
        .collect()
}

/// Clears the per-stage pool counters (e.g. before a profiled run).
pub fn reset_stats() {
    stats_map().lock().expect("par stats lock").clear();
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// A lock-popped queue of `(offset, chunk)` work items.
type ChunkQueue<'a, T> = Mutex<Vec<(usize, &'a mut [T])>>;

/// ~4 chunks per worker: coarse enough to amortize the queue lock, fine
/// enough to balance unequal task costs.
fn auto_chunk(len: usize, workers: usize) -> usize {
    len.div_ceil(workers * 4).max(1)
}

/// Computes `f(i)` for every `i in 0..len` and returns the results in
/// index order.
///
/// Work is handed to up to [`threads`] scoped workers in contiguous
/// chunks pulled from a shared queue (dynamic load balancing); each
/// result lands in its own slot, so the output order — and therefore any
/// subsequent in-order reduction — is independent of scheduling.
pub fn map_indexed<T, F>(stage: &'static str, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let workers = threads().min(len);
    // trace bridging: the region span is opened before the causal context
    // is captured, so worker chunks (and any span the task body opens)
    // nest under the region that dispatched them
    let tracing = univsa_telemetry::trace_enabled();
    let _region = tracing.then(|| {
        univsa_telemetry::trace_region("par", stage)
            .field("len", len)
            .field("workers", workers)
    });
    let ctx = univsa_telemetry::current_context();
    let start = Instant::now();
    if workers <= 1 {
        let _chunk_span = tracing.then(|| {
            univsa_telemetry::trace_region("par", "chunk")
                .field("stage", stage)
                .field("offset", 0u64)
                .field("len", len)
        });
        let out: Vec<T> = (0..len).map(f).collect();
        drop(_chunk_span);
        let wall = start.elapsed().as_nanos() as u64;
        record(stage, 1, 1, wall, wall);
        return out;
    }

    let chunk = auto_chunk(len, workers);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    let busy_total = AtomicU64::new(0);
    let queue: ChunkQueue<Option<T>> = Mutex::new(
        slots
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, c)| (ci * chunk, c))
            .rev() // pop() then hands chunks out in ascending order
            .collect(),
    );
    let nchunks = queue.lock().expect("par queue lock").len() as u64;
    let counting = univsa_telemetry::mem_tracking_enabled();
    let bridge = AllocBridge::default();
    std::thread::scope(|scope| {
        let queue = &queue;
        let busy_total = &busy_total;
        let bridge = &bridge;
        let f = &f;
        for w in 0..workers {
            scope.spawn(move || {
                let _guard = WorkerGuard::enter();
                let _lane = tracing.then(|| univsa_telemetry::enter_lane(format!("worker-{w}")));
                let _ctx = tracing.then(|| univsa_telemetry::enter_context(ctx));
                let t0 = Instant::now();
                let work = || loop {
                    let item = queue.lock().expect("par queue lock").pop();
                    let Some((offset, chunk)) = item else { break };
                    let _chunk_span = tracing.then(|| {
                        univsa_telemetry::trace_region("par", "chunk")
                            .field("stage", stage)
                            .field("offset", offset)
                            .field("len", chunk.len())
                    });
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(offset + j));
                    }
                };
                if counting {
                    bridge.measure(work);
                } else {
                    work();
                }
                busy_total.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
    });
    if counting {
        bridge.absorb();
    }
    record(
        stage,
        workers as u64,
        nchunks,
        busy_total.load(Ordering::Relaxed),
        start.elapsed().as_nanos() as u64,
    );
    slots
        .into_iter()
        .map(|s| s.expect("every index is computed exactly once"))
        .collect()
}

/// Splits `items` into disjoint chunks of at most `chunk` elements and
/// runs `f(offset, chunk_slice)` for each on the worker pool.
///
/// Chunk boundaries depend only on `chunk` and `items.len()`, never on
/// the worker count, so callers that partition e.g. matrix rows get the
/// same per-element computation for every thread count.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn for_each_chunk<T, F>(stage: &'static str, items: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if items.is_empty() {
        return;
    }
    let nchunks = items.len().div_ceil(chunk);
    let workers = threads().min(nchunks);
    let tracing = univsa_telemetry::trace_enabled();
    let _region = tracing.then(|| {
        univsa_telemetry::trace_region("par", stage)
            .field("len", items.len())
            .field("workers", workers)
    });
    let ctx = univsa_telemetry::current_context();
    let start = Instant::now();
    if workers <= 1 {
        for (ci, c) in items.chunks_mut(chunk).enumerate() {
            let _chunk_span = tracing.then(|| {
                univsa_telemetry::trace_region("par", "chunk")
                    .field("stage", stage)
                    .field("offset", ci * chunk)
                    .field("len", c.len())
            });
            f(ci * chunk, c);
        }
        let wall = start.elapsed().as_nanos() as u64;
        record(stage, 1, nchunks as u64, wall, wall);
        return;
    }

    let busy_total = AtomicU64::new(0);
    let queue: ChunkQueue<T> = Mutex::new(
        items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, c)| (ci * chunk, c))
            .rev()
            .collect(),
    );
    let counting = univsa_telemetry::mem_tracking_enabled();
    let bridge = AllocBridge::default();
    std::thread::scope(|scope| {
        let queue = &queue;
        let busy_total = &busy_total;
        let bridge = &bridge;
        let f = &f;
        for w in 0..workers {
            scope.spawn(move || {
                let _guard = WorkerGuard::enter();
                let _lane = tracing.then(|| univsa_telemetry::enter_lane(format!("worker-{w}")));
                let _ctx = tracing.then(|| univsa_telemetry::enter_context(ctx));
                let t0 = Instant::now();
                let work = || loop {
                    let item = queue.lock().expect("par queue lock").pop();
                    let Some((offset, chunk)) = item else { break };
                    let _chunk_span = tracing.then(|| {
                        univsa_telemetry::trace_region("par", "chunk")
                            .field("stage", stage)
                            .field("offset", offset)
                            .field("len", chunk.len())
                    });
                    f(offset, chunk);
                };
                if counting {
                    bridge.measure(work);
                } else {
                    work();
                }
                busy_total.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
    });
    if counting {
        bridge.absorb();
    }
    record(
        stage,
        workers as u64,
        nchunks as u64,
        busy_total.load(Ordering::Relaxed),
        start.elapsed().as_nanos() as u64,
    );
}

/// Maps `0..len` on the worker pool, then folds the results on the
/// calling thread in **strictly ascending index order** — the
/// deterministic-reduction primitive behind data-parallel gradients.
pub fn map_reduce<T, A, M, F>(stage: &'static str, len: usize, map: M, init: A, fold: F) -> A
where
    T: Send,
    M: Fn(usize) -> T + Sync,
    F: FnMut(A, T) -> A,
{
    map_indexed(stage, len, map).into_iter().fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        let out = with_threads(4, || map_indexed("test.order", 100, |i| i * 3));
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_indexed_empty() {
        let out: Vec<usize> = map_indexed("test.empty", 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as f32).sin() * (i as f32 + 1.0).sqrt();
        let serial = with_threads(1, || map_indexed("test.agree", 257, f));
        let parallel = with_threads(4, || map_indexed("test.agree", 257, f));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn map_reduce_folds_in_index_order() {
        // string concatenation is order-sensitive: any reordering fails
        let folded = with_threads(4, || {
            map_reduce(
                "test.fold",
                26,
                |i| char::from(b'a' + i as u8),
                String::new(),
                |mut acc, c| {
                    acc.push(c);
                    acc
                },
            )
        });
        assert_eq!(folded, "abcdefghijklmnopqrstuvwxyz");
    }

    #[test]
    fn for_each_chunk_covers_every_element() {
        let mut data = vec![0usize; 103];
        with_threads(4, || {
            for_each_chunk("test.chunks", &mut data, 7, |offset, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = offset + j + 1;
                }
            });
        });
        assert_eq!(data, (1..=103).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn for_each_chunk_rejects_zero_chunk() {
        for_each_chunk("test.zero", &mut [0u8; 4], 0, |_, _| {});
    }

    #[test]
    fn nested_regions_run_serially() {
        let inner_threads = with_threads(4, || map_indexed("test.outer", 4, |_| threads()));
        // every inner probe ran inside a worker → nested regions see 1
        assert_eq!(inner_threads, vec![1, 1, 1, 1]);
    }

    #[test]
    fn with_threads_restores_previous_value() {
        let before = threads();
        with_threads(7, || assert_eq!(threads(), 7));
        assert_eq!(threads(), before);
        // nested overrides unwind in LIFO order
        with_threads(2, || {
            with_threads(5, || assert_eq!(threads(), 5));
            assert_eq!(threads(), 2);
        });
    }

    #[test]
    fn stats_accumulate_per_stage() {
        with_threads(3, || {
            let _ = map_indexed("test.stats_stage", 64, |i| i);
            let _ = map_indexed("test.stats_stage", 64, |i| i);
        });
        let snapshot = stats();
        let (_, s) = snapshot
            .iter()
            .find(|(name, _)| *name == "test.stats_stage")
            .expect("stage recorded");
        assert_eq!(s.regions, 2);
        assert!(s.chunks >= 2);
        assert!(s.max_workers >= 1);
        assert!(s.occupancy() > 0.0);
    }

    #[test]
    fn panic_in_worker_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_threads(2, || {
                map_indexed("test.panic", 8, |i| {
                    if i == 5 {
                        panic!("boom");
                    }
                    i
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn trace_bridging_nests_chunks_under_region() {
        // global tracing: enable once; other tests in this crate do not
        // inspect the recorder, so leftover events are harmless
        univsa_telemetry::enable_tracing(1 << 16);
        let outer = univsa_telemetry::span("test", "dispatch");
        let outer_id = outer.trace_id().expect("tracing on");
        let _ = with_threads(4, || map_indexed("test.trace_bridge", 64, |i| i * 2));
        drop(outer);
        let rec = univsa_telemetry::take_recorder();
        let region = rec
            .events
            .iter()
            .find(|e| e.layer == "par" && e.name == "test.trace_bridge")
            .expect("region span recorded");
        assert_eq!(region.parent, Some(outer_id));
        let chunks: Vec<_> = rec
            .events
            .iter()
            .filter(|e| {
                e.name == "chunk"
                    && e.fields.iter().any(|(k, v)| {
                        *k == "stage"
                            && *v == univsa_telemetry::Value::Str("test.trace_bridge".into())
                    })
            })
            .collect();
        assert!(!chunks.is_empty());
        for c in &chunks {
            assert_eq!(c.parent, Some(region.id), "chunk nests under region");
            let lane = &rec.lanes[c.lane as usize];
            assert!(
                lane == "main" || lane.starts_with("worker-"),
                "unexpected lane {lane}"
            );
        }
        // with 4 workers over 64 items at least one chunk ran off-main
        assert!(chunks
            .iter()
            .any(|c| rec.lanes[c.lane as usize].starts_with("worker-")));
    }

    #[test]
    fn source_reporting() {
        let (n, _) = threads_and_source();
        assert!(n >= 1);
        with_threads(3, || {
            assert_eq!(threads_and_source(), (3, ThreadSource::LocalOverride));
        });
    }
}
