//! End-to-end packed inference throughput of trained-shape UniVSA models
//! on every Table I configuration — the software analogue of Table IV's
//! latency column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use univsa::{Mask, UniVsaModel};
use univsa_bench::{all_tasks, paper_config};
use univsa_bits::BitMatrix;

/// Builds a random-weight model with a task's paper configuration
/// (inference cost is weight-independent).
fn random_model(task_name: &str, seed: u64) -> (UniVsaModel, Vec<u8>) {
    let task = all_tasks(1)
        .into_iter()
        .find(|t| t.spec.name == task_name)
        .expect("task exists");
    let cfg = paper_config(&task);
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = Mask::from_bits((0..cfg.features()).map(|i| i % 4 != 3).collect());
    let v_h = BitMatrix::random(cfg.levels, cfg.d_h, &mut rng);
    let v_l = BitMatrix::random(cfg.levels, cfg.effective_d_l(), &mut rng);
    let kernel = (0..cfg.out_channels * cfg.d_k * cfg.d_k)
        .map(|_| rng.gen::<u64>())
        .collect();
    let f = BitMatrix::random(cfg.encoding_channels(), cfg.vsa_dim(), &mut rng);
    let c = (0..cfg.effective_voters())
        .map(|_| BitMatrix::random(cfg.classes, cfg.vsa_dim(), &mut rng))
        .collect();
    let model = UniVsaModel::from_parts(cfg, mask, v_h, v_l, kernel, f, c)
        .expect("random parts are consistent");
    let values = task.test.samples()[0].values.clone();
    (model, values)
}

fn bench_infer(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_infer");
    for name in ["EEGMMI", "BCI-III-V", "CHB-B", "CHB-IB", "ISOLET", "HAR"] {
        let (model, values) = random_model(name, 7);
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |bench, _| {
            bench.iter(|| model.infer(&values).unwrap());
        });
    }
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let (model, values) = random_model("ISOLET", 9);
    c.bench_function("packed_encode_isolet", |bench| {
        bench.iter(|| model.encode(&values).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_infer, bench_encode
}
criterion_main!(benches);
