//! Microbenchmarks of the packed bit substrate: XNOR binding, Hamming /
//! dot-product similarity, and majority bundling — the primitive
//! operations every stage of the UniVSA pipeline reduces to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use univsa_bits::{BitMatrix, BitVec, Bundler};

fn bench_xnor(c: &mut Criterion) {
    let mut group = c.benchmark_group("xnor");
    for dim in [64usize, 1024, 10_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BitVec::random(dim, &mut rng);
        let b = BitVec::random(dim, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            bench.iter(|| a.xnor(&b).unwrap());
        });
    }
    group.finish();
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot");
    for dim in [64usize, 1024, 10_000] {
        let mut rng = StdRng::seed_from_u64(2);
        let a = BitVec::random(dim, &mut rng);
        let b = BitVec::random(dim, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            bench.iter(|| a.dot(&b).unwrap());
        });
    }
    group.finish();
}

fn bench_bundle(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundle");
    for n in [8usize, 64, 256] {
        let mut rng = StdRng::seed_from_u64(3);
        let vectors: Vec<BitVec> = (0..n).map(|_| BitVec::random(1024, &mut rng)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut bundler = Bundler::new(1024);
                for v in &vectors {
                    bundler.add(v).unwrap();
                }
                bundler.finish()
            });
        });
    }
    group.finish();
}

fn bench_nearest(c: &mut Criterion) {
    let mut group = c.benchmark_group("nearest_class");
    for classes in [2usize, 26] {
        let mut rng = StdRng::seed_from_u64(4);
        let m = BitMatrix::random(classes, 640, &mut rng);
        let q = BitVec::random(640, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &classes,
            |bench, _| {
                bench.iter(|| m.nearest(&q).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_xnor, bench_dot, bench_bundle, bench_nearest
}
criterion_main!(benches);
