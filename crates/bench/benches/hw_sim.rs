//! Speed of the hardware simulator itself: schedule construction and full
//! report evaluation (these run inside the evolutionary search objective,
//! so they must be cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use univsa_bench::{all_tasks, paper_config};
use univsa_hw::{HwConfig, HwReport, Pipeline};

fn bench_schedule(c: &mut Criterion) {
    let task = all_tasks(1)
        .into_iter()
        .find(|t| t.spec.name == "EEGMMI")
        .expect("task exists");
    let pipeline = Pipeline::new(HwConfig::new(&paper_config(&task)));
    let mut group = c.benchmark_group("hw_schedule");
    for samples in [3usize, 64, 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(samples),
            &samples,
            |bench, &n| {
                bench.iter(|| pipeline.schedule(n));
            },
        );
    }
    group.finish();
}

fn bench_report(c: &mut Criterion) {
    let hws: Vec<HwConfig> = all_tasks(1)
        .iter()
        .map(|t| HwConfig::new(&paper_config(t)))
        .collect();
    c.bench_function("hw_report_all_tasks", |bench| {
        bench.iter(|| {
            hws.iter()
                .map(HwReport::for_config)
                .map(|r| r.latency_ms)
                .sum::<f64>()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_schedule, bench_report
}
criterion_main!(benches);
