//! Training-substrate benchmarks: one LDC-style epoch on a small task and
//! the partial-BNN building blocks (binary conv forward, encoding
//! forward) — the costs that bound the evolutionary search budget.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use univsa::{EncodingLayer, TrainOptions, UniVsaConfig, UniVsaTrainer};
use univsa_data::{GeneratorParams, SyntheticGenerator, TaskSpec};
use univsa_nn::BinaryConv2d;
use univsa_tensor::{signs, Conv2dSpec};

fn small_task() -> univsa_data::Dataset {
    let spec = TaskSpec {
        name: "bench".into(),
        width: 8,
        length: 16,
        classes: 2,
        levels: 256,
    };
    let mut rng = StdRng::seed_from_u64(0);
    let generator = SyntheticGenerator::new(GeneratorParams::new(spec), &mut rng);
    generator.dataset(&[32, 32], &mut rng)
}

fn bench_train_epoch(c: &mut Criterion) {
    let train = small_task();
    let cfg = UniVsaConfig::for_task(train.spec())
        .d_h(4)
        .d_l(2)
        .d_k(3)
        .out_channels(8)
        .voters(1)
        .build()
        .expect("bench config valid");
    let options = TrainOptions {
        epochs: 1,
        ..TrainOptions::default()
    };
    let trainer = UniVsaTrainer::new(cfg, options);
    c.bench_function("train_one_epoch_small", |bench| {
        bench.iter(|| trainer.fit(&train, 3).unwrap());
    });
}

fn bench_binary_conv_forward(c: &mut Criterion) {
    let spec = Conv2dSpec {
        in_channels: 8,
        out_channels: 22,
        kernel: 3,
        height: 16,
        width: 40,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let mut conv = BinaryConv2d::new(spec, &mut rng).expect("spec valid");
    let x = signs(&[8, 16, 40], &mut rng);
    c.bench_function("binary_conv_forward_isolet_geometry", |bench| {
        bench.iter(|| conv.forward(std::slice::from_ref(&x)).unwrap());
    });
}

fn bench_encoding_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut enc = EncodingLayer::new(22, 640, &mut rng);
    let a = signs(&[22, 640], &mut rng);
    c.bench_function("encoding_forward_isolet_geometry", |bench| {
        bench.iter(|| enc.forward(std::slice::from_ref(&a)).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8));
    targets = bench_train_epoch, bench_binary_conv_forward, bench_encoding_forward
}
criterion_main!(benches);
