//! # univsa-bench
//!
//! Shared harness for the binaries that regenerate the UniVSA paper's
//! tables and figures:
//!
//! | Binary   | Regenerates |
//! |----------|-------------|
//! | `table1` | Table I — evolutionary-searched model configurations |
//! | `table2` | Table II — accuracy/memory vs LDA, KNN, SVM, LeHDC, LDC |
//! | `table3` | Table III — hardware comparison vs published accelerators |
//! | `table4` | Table IV — UniVSA hardware performance on all tasks |
//! | `fig1`   | Fig. 1 — qualitative framework comparison |
//! | `fig4`   | Fig. 4 — enhancement ablation across vector dimensions |
//! | `fig5`   | Fig. 5 — pipelined streaming schedule |
//! | `fig6`   | Fig. 6 — per-stage hardware overhead |
//!
//! Run e.g. `cargo run -p univsa-bench --release --bin table2`. All
//! binaries honour `UNIVSA_QUICK=1` for a reduced-budget smoke run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;

use std::sync::OnceLock;

use univsa::{TrainOptions, UniVsaConfig, UniVsaError, UniVsaModel, UniVsaTrainer};
use univsa_data::{tasks, Task};

pub use univsa_data::tasks::{paper_config_tuple, ConfigTuple, PAPER_CONFIGS};

/// Whether a quick (reduced-budget) run was requested via `UNIVSA_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("UNIVSA_QUICK").is_ok_and(|v| v == "1")
}

/// Whether progress chatter is suppressed: `--quiet` on the command line or
/// `UNIVSA_QUIET=1` in the environment. Evaluated once per process.
pub fn quiet_mode() -> bool {
    static QUIET: OnceLock<bool> = OnceLock::new();
    *QUIET.get_or_init(|| {
        std::env::args().any(|a| a == "--quiet" || a == "-q")
            || std::env::var("UNIVSA_QUIET").is_ok_and(|v| v == "1")
    })
}

/// Reports bench progress: always recorded as a telemetry event (when
/// telemetry is on), echoed to stderr unless [`quiet_mode`].
pub fn progress(bin: &'static str, message: &str) {
    univsa_telemetry::event(bin, message, &[]);
    if !quiet_mode() {
        eprintln!("[{bin}] {message}");
    }
}

/// Flushes the telemetry registry at the end of a bench binary, warning on
/// stderr instead of failing the run if the sink cannot be written.
pub fn finish_telemetry() {
    if let Err(e) = univsa_telemetry::flush() {
        eprintln!("warning: telemetry flush failed: {e}");
    }
}

/// Builds all six benchmark tasks with one seed.
pub fn all_tasks(seed: u64) -> Vec<Task> {
    tasks::all(seed)
}

/// The paper's configuration for a task name, materialized against the
/// task geometry.
///
/// # Panics
///
/// Panics if the name is not one of the six Table I tasks or the tuple is
/// invalid for the geometry (cannot happen for the paper's values).
pub fn paper_config(task: &Task) -> UniVsaConfig {
    let (d_h, d_l, d_k, o, theta) = paper_config_tuple(&task.spec.name)
        .unwrap_or_else(|| panic!("no paper config for task {}", task.spec.name));
    UniVsaConfig::for_task(&task.spec)
        .d_h(d_h)
        .d_l(d_l)
        .d_k(d_k)
        .out_channels(o)
        .voters(theta)
        .build()
        .expect("paper configurations are valid")
}

/// Training options used by the harness (reduced epochs under
/// [`quick_mode`]).
pub fn harness_train_options() -> TrainOptions {
    harness_train_options_for(1024)
}

/// Training options scaled to the task size: small grids are cheap to
/// train, so they get a larger epoch budget (the tiny BCI-III-V grid needs
/// it to converge).
pub fn harness_train_options_for(features: usize) -> TrainOptions {
    let epochs = if quick_mode() {
        3
    } else if features <= 128 {
        60
    } else {
        20
    };
    TrainOptions {
        epochs,
        ..TrainOptions::default()
    }
}

/// Trains UniVSA on a task with its paper configuration and returns the
/// model plus test accuracy.
///
/// # Errors
///
/// Propagates training/evaluation errors from the core crate.
pub fn train_univsa(task: &Task, seed: u64) -> Result<(UniVsaModel, f64), UniVsaError> {
    train_univsa_with(task, paper_config(task), seed)
}

/// Trains UniVSA on a task with an explicit configuration.
///
/// # Errors
///
/// Propagates training/evaluation errors from the core crate.
pub fn train_univsa_with(
    task: &Task,
    config: UniVsaConfig,
    seed: u64,
) -> Result<(UniVsaModel, f64), UniVsaError> {
    let trainer = UniVsaTrainer::new(config, harness_train_options_for(task.spec.features()));
    let outcome = trainer.fit(&task.train, seed)?;
    let acc = outcome.model.evaluate(&task.test)?;
    Ok((outcome.model, acc))
}

/// Formats bits as KiB with two decimals, or `–` for `None`.
pub fn fmt_kib(bits: Option<usize>) -> String {
    match bits {
        Some(b) => format!("{:.2}", b as f64 / 8.0 / 1024.0),
        None => "–".to_string(),
    }
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("| {} |", row.join(" | "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_build_for_their_tasks() {
        for task in all_tasks(1) {
            let cfg = paper_config(&task);
            let (name, tuple) = PAPER_CONFIGS
                .iter()
                .find(|(n, _)| *n == task.spec.name)
                .unwrap();
            assert_eq!(&task.spec.name, name);
            assert_eq!(cfg.tuple(), *tuple);
        }
    }

    #[test]
    fn fmt_kib_formats() {
        assert_eq!(fmt_kib(Some(8 * 1024)), "1.00");
        assert_eq!(fmt_kib(None), "–");
    }

    #[test]
    #[should_panic(expected = "no paper config")]
    fn unknown_task_panics() {
        let mut task = all_tasks(1).remove(0);
        task.spec.name = "UNKNOWN".into();
        paper_config(&task);
    }
}
