//! The perf-regression sentinel: compares two `perf_baseline` reports
//! (`BENCH_univsa.json`) metric by metric against configurable thresholds.
//!
//! [`parse_report`] accepts every report schema published so far
//! (`univsa-perf-baseline/v1` through `v6`) — fields added by later
//! versions are simply optional. [`diff`] pairs tasks by name and checks:
//!
//! | metric | gate | meaning |
//! |---|---|---|
//! | `train_seconds` | `train_pct` | % wall-time increase |
//! | `latency_us.p50` / `.p99` | `latency_pct` | % latency increase |
//! | `hw_cycles.*` | `cycles_pct` | % cycle increase (deterministic — default 0) |
//! | `test_accuracy` | `accuracy_drop` | absolute accuracy decrease |
//! | `mem.peak_alloc_bytes` | `peak_alloc_pct` | % peak-allocation increase (v4) |
//! | `mem.alloc_count` | `alloc_count_pct` | % allocation-count increase (v4) |
//! | `footprint.actual_bits` | `footprint_bits` | absolute resident-bit drift (v4) |
//! | `latency_packed_us.p99` | `packed_over_ref_pct` | packed p99 vs. reference p99 (v5) |
//! | `quality.mean_margin` | `margin_drop_pct` | % mean-margin *decrease* (v6) |
//! | `quality.drift.detection_latency` | `detect_latency_pct` | % detection-latency increase (v6) |
//!
//! A task present in the old report but missing from the new one is
//! always a regression; a brand-new task is informational. Each gate can
//! be disabled (`None`) — CI uses this to compare a quick-mode run
//! against the committed full-mode baseline, where wall-clock and
//! accuracy figures are not commensurable but the hardware cycle counts
//! (derived from the configuration alone) must match exactly.
//!
//! The v4 memory metrics are compared only when **both** reports carry
//! them: a v4-vs-v3 diff renders those rows as `n/a` (informational, no
//! gate) instead of firing a spurious regression.
//!
//! The v5 packed-engine gate is different in kind: it compares the
//! candidate report against *itself* (packed p99 must not exceed the
//! reference p99 measured in the same run, within `packed_over_ref_pct`
//! percent), so wall-clock noise between machines never factors in. A
//! pre-v5 candidate renders the row `n/a`.
//!
//! The v6 quality metrics follow the same both-sides rule: margins and
//! drift-detection latencies are deterministic integers for a seeded
//! model, so a *drop* in mean margin (the model got less confident) or an
//! *increase* in detection latency (drift takes longer to notice) gates;
//! a v6-vs-v5 diff renders them `n/a`. An undetected drift probe writes
//! `null` latency, which also renders `n/a` rather than firing a gate.

use std::fmt::Write as _;

use univsa::json::{self, Json};

/// Per-metric regression gates. `None` disables a gate entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Maximum tolerated `train_seconds` increase, in percent.
    pub train_pct: Option<f64>,
    /// Maximum tolerated p50/p99 latency increase, in percent.
    pub latency_pct: Option<f64>,
    /// Maximum tolerated hardware-cycle increase, in percent (cycles are
    /// deterministic, so the default tolerates none).
    pub cycles_pct: Option<f64>,
    /// Maximum tolerated absolute `test_accuracy` drop.
    pub accuracy_drop: Option<f64>,
    /// Maximum tolerated `mem.peak_alloc_bytes` increase, in percent (v4).
    pub peak_alloc_pct: Option<f64>,
    /// Maximum tolerated `mem.alloc_count` increase, in percent (v4).
    pub alloc_count_pct: Option<f64>,
    /// Maximum tolerated absolute drift (either direction) of the
    /// model's resident `footprint.actual_bits` (v4). The footprint is
    /// derived from the configuration alone, so the default tolerates
    /// none.
    pub footprint_bits: Option<f64>,
    /// Maximum tolerated percent by which the packed engine's p99
    /// latency may exceed the reference engine's p99 **within the new
    /// report** (v5). The packed engine exists to be faster, so the
    /// default tolerates none.
    pub packed_over_ref_pct: Option<f64>,
    /// Maximum tolerated percent *decrease* of `quality.mean_margin`
    /// (v6): a shrinking winner/runner-up margin means the model's
    /// decisions got less confident even where accuracy held.
    pub margin_drop_pct: Option<f64>,
    /// Maximum tolerated percent increase of the drift probe's
    /// detection latency (v6). The probe is fully seeded, so the
    /// default tolerates none.
    pub detect_latency_pct: Option<f64>,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            train_pct: Some(25.0),
            latency_pct: Some(25.0),
            cycles_pct: Some(0.0),
            accuracy_drop: Some(0.02),
            peak_alloc_pct: Some(10.0),
            alloc_count_pct: Some(10.0),
            footprint_bits: Some(0.0),
            packed_over_ref_pct: Some(0.0),
            margin_drop_pct: Some(5.0),
            detect_latency_pct: Some(0.0),
        }
    }
}

/// The metrics extracted for one task row of a report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskMetrics {
    /// Task name (`HAR`, `ISOLET`, …).
    pub name: String,
    /// Training wall time in seconds.
    pub train_seconds: Option<f64>,
    /// Held-out accuracy in `[0, 1]`.
    pub accuracy: Option<f64>,
    /// Median per-sample inference latency, microseconds.
    pub p50_us: Option<f64>,
    /// 99th-percentile per-sample inference latency, microseconds.
    pub p99_us: Option<f64>,
    /// Single-sample hardware latency, cycles.
    pub sample_latency_cycles: Option<f64>,
    /// Pipeline initiation interval, cycles.
    pub initiation_interval_cycles: Option<f64>,
    /// Streamed-schedule makespan, cycles.
    pub makespan_cycles: Option<f64>,
    /// Peak heap allocation while measuring the task, bytes (v4).
    pub peak_alloc_bytes: Option<f64>,
    /// Heap allocations performed while measuring the task (v4).
    pub alloc_count: Option<f64>,
    /// Word-padded resident bits of the trained model (v4).
    pub footprint_bits: Option<f64>,
    /// Median packed-engine per-sample latency, microseconds (v5).
    pub packed_p50_us: Option<f64>,
    /// 99th-percentile packed-engine per-sample latency, microseconds (v5).
    pub packed_p99_us: Option<f64>,
    /// Mean winner/runner-up similarity margin on the held-out split (v6).
    pub mean_margin: Option<f64>,
    /// Drift-probe detection latency in samples after onset (v6; absent
    /// when the probe went undetected).
    pub drift_detect_latency: Option<f64>,
}

/// A parsed `perf_baseline` report (any schema version).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The full schema string, e.g. `univsa-perf-baseline/v3`.
    pub schema: String,
    /// Whether the report came from a `UNIVSA_QUICK=1` run.
    pub quick: Option<bool>,
    /// Worker-pool width used (v2+).
    pub threads: Option<u64>,
    /// Git commit the report was produced from (v3+).
    pub git_commit: Option<String>,
    /// Engine used for the headline `latency_us` figures (v5).
    pub infer_engine: Option<String>,
    /// SIMD kernel tier active while measuring (v5).
    pub kernel_tier: Option<String>,
    /// Per-task metric rows.
    pub tasks: Vec<TaskMetrics>,
}

fn get_f64(row: &Json, key: &str) -> Option<f64> {
    row.get(key).and_then(Json::as_f64)
}

/// Parses a `perf_baseline` report of any published schema version.
///
/// # Errors
///
/// Returns a user-facing message when the bytes are not JSON or the
/// document is not a `univsa-perf-baseline/*` report.
pub fn parse_report(bytes: &[u8]) -> Result<Report, String> {
    let doc = json::parse(bytes).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = match doc.get("schema") {
        Some(Json::Str(s)) if s.starts_with("univsa-perf-baseline/") => s.clone(),
        Some(Json::Str(s)) => return Err(format!("unrecognized report schema {s:?}")),
        _ => return Err("missing \"schema\" field (not a perf_baseline report)".into()),
    };
    let mut report = Report {
        schema,
        quick: doc.get("quick").and_then(Json::as_bool),
        threads: doc.get("threads").and_then(Json::as_u64),
        git_commit: match doc.get("git_commit") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        },
        infer_engine: match doc.get("infer_engine") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        },
        kernel_tier: match doc.get("kernel_tier") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        },
        tasks: Vec::new(),
    };
    for row in doc.get("tasks").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(Json::Str(name)) = row.get("task") else {
            continue;
        };
        let latency = row.get("latency_us");
        let packed = row.get("latency_packed_us");
        let quality = row.get("quality");
        let cycles = row.get("hw_cycles");
        let mem = row.get("mem");
        let footprint = row.get("footprint");
        report.tasks.push(TaskMetrics {
            name: name.clone(),
            train_seconds: get_f64(row, "train_seconds"),
            accuracy: get_f64(row, "test_accuracy"),
            p50_us: latency.and_then(|l| get_f64(l, "p50")),
            p99_us: latency.and_then(|l| get_f64(l, "p99")),
            sample_latency_cycles: cycles.and_then(|c| get_f64(c, "sample_latency")),
            initiation_interval_cycles: cycles.and_then(|c| get_f64(c, "initiation_interval")),
            makespan_cycles: cycles.and_then(|c| get_f64(c, "makespan")),
            peak_alloc_bytes: mem.and_then(|m| get_f64(m, "peak_alloc_bytes")),
            alloc_count: mem.and_then(|m| get_f64(m, "alloc_count")),
            footprint_bits: footprint.and_then(|f| get_f64(f, "actual_bits")),
            packed_p50_us: packed.and_then(|l| get_f64(l, "p50")),
            packed_p99_us: packed.and_then(|l| get_f64(l, "p99")),
            mean_margin: quality.and_then(|q| get_f64(q, "mean_margin")),
            drift_detect_latency: quality
                .and_then(|q| q.get("drift"))
                .and_then(|d| get_f64(d, "detection_latency")),
        });
    }
    Ok(report)
}

/// Reads and parses a report file.
///
/// # Errors
///
/// Returns a user-facing message for unreadable files or malformed
/// reports (prefixed with the path).
pub fn load_report(path: &str) -> Result<Report, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    parse_report(&bytes).map_err(|e| format!("{path}: {e}"))
}

/// How a metric delta is judged against its threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Percentage increase over the old value.
    PctIncrease,
    /// Percentage decrease below the old value (mean margin).
    PctDecrease,
    /// Absolute decrease from the old value (accuracy).
    AbsDecrease,
    /// Absolute drift in either direction (footprint bits).
    AbsDrift,
}

/// One compared metric of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Task name.
    pub task: String,
    /// Metric label (`train_seconds`, `latency_p50_us`, …).
    pub metric: &'static str,
    /// Value in the old report.
    pub old: f64,
    /// Value in the new report.
    pub new: f64,
    /// Percent change for [`Gate::PctIncrease`] metrics, absolute change
    /// (`new - old`) for [`Gate::AbsDecrease`] metrics.
    pub delta: f64,
    /// How the delta is gated.
    pub gate: Gate,
    /// The configured threshold, if this gate is enabled.
    pub threshold: Option<f64>,
    /// Whether the delta breaches the threshold.
    pub regressed: bool,
    /// The metric exists in only one of the two reports (schema skew,
    /// e.g. v4 vs. v3): rendered `n/a`, never gated. The absent side is
    /// carried as NaN.
    pub skipped: bool,
}

/// The result of diffing two reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffOutcome {
    /// Every compared metric, in report order.
    pub rows: Vec<MetricDelta>,
    /// Tasks present in the old report but missing from the new one
    /// (always a regression).
    pub missing_tasks: Vec<String>,
    /// Tasks only present in the new report (informational).
    pub added_tasks: Vec<String>,
    /// Human-readable notes (mode mismatch etc.).
    pub notes: Vec<String>,
}

impl DiffOutcome {
    /// Whether any gate fired (including missing tasks).
    pub fn regressed(&self) -> bool {
        !self.missing_tasks.is_empty() || self.rows.iter().any(|r| r.regressed)
    }

    /// Renders the delta table (plus notes and the verdict line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        let _ = writeln!(
            out,
            "{:<10} {:<26} {:>12} {:>12} {:>10} {:>10}  status",
            "task", "metric", "old", "new", "delta", "limit"
        );
        let val = |v: f64| {
            if v.is_nan() {
                "n/a".to_string()
            } else {
                format!("{v:.3}")
            }
        };
        for r in &self.rows {
            let (delta, limit) = if r.skipped {
                ("n/a".to_string(), "n/a".to_string())
            } else {
                match r.gate {
                    Gate::PctIncrease => (
                        format!("{:+.2}%", r.delta),
                        r.threshold
                            .map(|t| format!("+{t:.2}%"))
                            .unwrap_or_else(|| "off".into()),
                    ),
                    Gate::PctDecrease => (
                        format!("{:+.2}%", r.delta),
                        r.threshold
                            .map(|t| format!("-{t:.2}%"))
                            .unwrap_or_else(|| "off".into()),
                    ),
                    Gate::AbsDecrease => (
                        format!("{:+.4}", r.delta),
                        r.threshold
                            .map(|t| format!("-{t:.4}"))
                            .unwrap_or_else(|| "off".into()),
                    ),
                    Gate::AbsDrift => (
                        format!("{:+.0}", r.delta),
                        r.threshold
                            .map(|t| format!("±{t:.0}"))
                            .unwrap_or_else(|| "off".into()),
                    ),
                }
            };
            let _ = writeln!(
                out,
                "{:<10} {:<26} {:>12} {:>12} {:>10} {:>10}  {}",
                r.task,
                r.metric,
                val(r.old),
                val(r.new),
                delta,
                limit,
                if r.regressed {
                    "REGRESSED"
                } else if r.skipped {
                    "n/a"
                } else {
                    "ok"
                }
            );
        }
        for task in &self.missing_tasks {
            let _ = writeln!(out, "{task:<10} (task missing from new report)  REGRESSED");
        }
        for task in &self.added_tasks {
            let _ = writeln!(out, "{task:<10} (new task, no baseline)");
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.regressed() {
                "REGRESSION"
            } else {
                "no regression"
            }
        );
        out
    }
}

fn push_pct(
    rows: &mut Vec<MetricDelta>,
    task: &str,
    metric: &'static str,
    old: Option<f64>,
    new: Option<f64>,
    threshold: Option<f64>,
) {
    let (Some(old), Some(new)) = (old, new) else {
        return;
    };
    if old <= 0.0 {
        return;
    }
    let delta = (new - old) / old * 100.0;
    rows.push(MetricDelta {
        task: task.to_string(),
        metric,
        old,
        new,
        delta,
        gate: Gate::PctIncrease,
        threshold,
        // a strict `>` so a 0% threshold passes bit-identical values
        regressed: threshold.is_some_and(|t| delta > t),
        skipped: false,
    });
}

/// Pushes a memory metric: gated only when both reports carry it; when
/// exactly one side does, an informational `n/a` row is emitted instead
/// of a spurious regression (v4 report diffed against a v3 baseline, or
/// the reverse).
fn push_mem(
    rows: &mut Vec<MetricDelta>,
    task: &str,
    metric: &'static str,
    gate: Gate,
    old: Option<f64>,
    new: Option<f64>,
    threshold: Option<f64>,
) {
    let (delta, regressed) = match (old, new) {
        (None, None) => return,
        (Some(old), Some(new)) => {
            let delta = match gate {
                Gate::PctIncrease | Gate::PctDecrease => {
                    if old <= 0.0 {
                        return;
                    }
                    (new - old) / old * 100.0
                }
                Gate::AbsDecrease | Gate::AbsDrift => new - old,
            };
            let fired = match gate {
                Gate::PctIncrease => threshold.is_some_and(|t| delta > t),
                Gate::PctDecrease | Gate::AbsDecrease => threshold.is_some_and(|t| -delta > t),
                Gate::AbsDrift => threshold.is_some_and(|t| delta.abs() > t),
            };
            (delta, fired)
        }
        _ => {
            rows.push(MetricDelta {
                task: task.to_string(),
                metric,
                old: old.unwrap_or(f64::NAN),
                new: new.unwrap_or(f64::NAN),
                delta: 0.0,
                gate,
                threshold,
                regressed: false,
                skipped: true,
            });
            return;
        }
    };
    rows.push(MetricDelta {
        task: task.to_string(),
        metric,
        old: old.expect("both sides present"),
        new: new.expect("both sides present"),
        delta,
        gate,
        threshold,
        regressed,
        skipped: false,
    });
}

fn push_abs_drop(
    rows: &mut Vec<MetricDelta>,
    task: &str,
    metric: &'static str,
    old: Option<f64>,
    new: Option<f64>,
    threshold: Option<f64>,
) {
    let (Some(old), Some(new)) = (old, new) else {
        return;
    };
    let delta = new - old;
    rows.push(MetricDelta {
        task: task.to_string(),
        metric,
        old,
        new,
        delta,
        gate: Gate::AbsDecrease,
        threshold,
        regressed: threshold.is_some_and(|t| -delta > t),
        skipped: false,
    });
}

/// Compares `new` against `old` under the given thresholds.
pub fn diff(old: &Report, new: &Report, thresholds: &Thresholds) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    if let (Some(a), Some(b)) = (old.quick, new.quick) {
        if a != b {
            out.notes.push(format!(
                "mode mismatch (old quick={a}, new quick={b}): wall-clock and accuracy \
                 comparisons are not commensurable; consider gating cycles only"
            ));
        }
    }
    for old_task in &old.tasks {
        let Some(new_task) = new.tasks.iter().find(|t| t.name == old_task.name) else {
            out.missing_tasks.push(old_task.name.clone());
            continue;
        };
        let rows = &mut out.rows;
        let t = old_task.name.as_str();
        push_pct(
            rows,
            t,
            "train_seconds",
            old_task.train_seconds,
            new_task.train_seconds,
            thresholds.train_pct,
        );
        push_pct(
            rows,
            t,
            "latency_p50_us",
            old_task.p50_us,
            new_task.p50_us,
            thresholds.latency_pct,
        );
        push_pct(
            rows,
            t,
            "latency_p99_us",
            old_task.p99_us,
            new_task.p99_us,
            thresholds.latency_pct,
        );
        push_pct(
            rows,
            t,
            "hw_sample_latency_cycles",
            old_task.sample_latency_cycles,
            new_task.sample_latency_cycles,
            thresholds.cycles_pct,
        );
        push_pct(
            rows,
            t,
            "hw_initiation_interval",
            old_task.initiation_interval_cycles,
            new_task.initiation_interval_cycles,
            thresholds.cycles_pct,
        );
        push_pct(
            rows,
            t,
            "hw_makespan_cycles",
            old_task.makespan_cycles,
            new_task.makespan_cycles,
            thresholds.cycles_pct,
        );
        push_abs_drop(
            rows,
            t,
            "test_accuracy",
            old_task.accuracy,
            new_task.accuracy,
            thresholds.accuracy_drop,
        );
        push_mem(
            rows,
            t,
            "mem_peak_alloc_bytes",
            Gate::PctIncrease,
            old_task.peak_alloc_bytes,
            new_task.peak_alloc_bytes,
            thresholds.peak_alloc_pct,
        );
        push_mem(
            rows,
            t,
            "mem_alloc_count",
            Gate::PctIncrease,
            old_task.alloc_count,
            new_task.alloc_count,
            thresholds.alloc_count_pct,
        );
        push_mem(
            rows,
            t,
            "footprint_actual_bits",
            Gate::AbsDrift,
            old_task.footprint_bits,
            new_task.footprint_bits,
            thresholds.footprint_bits,
        );
        // Intra-report invariant of the *candidate*: the packed engine's
        // p99 must not exceed the reference engine's p99 measured in the
        // same run. The "old" column is the candidate's reference figure,
        // not the baseline's, so cross-machine wall-clock noise cancels.
        push_mem(
            rows,
            t,
            "packed_vs_ref_p99_us",
            Gate::PctIncrease,
            new_task.p99_us,
            new_task.packed_p99_us,
            thresholds.packed_over_ref_pct,
        );
        push_mem(
            rows,
            t,
            "quality_mean_margin",
            Gate::PctDecrease,
            old_task.mean_margin,
            new_task.mean_margin,
            thresholds.margin_drop_pct,
        );
        push_mem(
            rows,
            t,
            "quality_drift_latency",
            Gate::PctIncrease,
            old_task.drift_detect_latency,
            new_task.drift_detect_latency,
            thresholds.detect_latency_pct,
        );
    }
    for new_task in &new.tasks {
        if !old.tasks.iter().any(|t| t.name == new_task.name) {
            out.added_tasks.push(new_task.name.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(train: f64, p99: f64, makespan: f64, acc: f64) -> Report {
        let text = format!(
            r#"{{"schema":"univsa-perf-baseline/v2","quick":false,"threads":4,
                "tasks":[{{"task":"HAR","train_seconds":{train},"test_accuracy":{acc},
                "latency_us":{{"mean":10.0,"p50":9.0,"p90":11.0,"p99":{p99}}},
                "hw_cycles":{{"sample_latency":100,"initiation_interval":40,
                "streamed_samples":64,"makespan":{makespan}}}}}]}}"#
        );
        parse_report(text.as_bytes()).unwrap()
    }

    #[test]
    fn identical_reports_pass_even_with_zero_cycle_tolerance() {
        let r = report(10.0, 12.0, 2620.0, 0.95);
        let outcome = diff(&r, &r, &Thresholds::default());
        assert!(!outcome.regressed(), "{}", outcome.render());
        assert!(!outcome.rows.is_empty());
    }

    #[test]
    fn train_time_regression_fires() {
        let old = report(10.0, 12.0, 2620.0, 0.95);
        let new = report(14.0, 12.0, 2620.0, 0.95);
        let outcome = diff(&old, &new, &Thresholds::default());
        assert!(outcome.regressed());
        let row = outcome
            .rows
            .iter()
            .find(|r| r.metric == "train_seconds")
            .unwrap();
        assert!(row.regressed);
        assert!((row.delta - 40.0).abs() < 1e-9);
        assert!(outcome.render().contains("REGRESSED"));
    }

    #[test]
    fn cycle_regression_fires_at_zero_tolerance() {
        let old = report(10.0, 12.0, 2620.0, 0.95);
        let new = report(10.0, 12.0, 2621.0, 0.95);
        let outcome = diff(&old, &new, &Thresholds::default());
        assert!(outcome.regressed());
        assert!(outcome
            .rows
            .iter()
            .any(|r| r.metric == "hw_makespan_cycles" && r.regressed));
    }

    #[test]
    fn accuracy_drop_fires_only_past_threshold() {
        let old = report(10.0, 12.0, 2620.0, 0.95);
        let ok = report(10.0, 12.0, 2620.0, 0.94);
        let bad = report(10.0, 12.0, 2620.0, 0.90);
        assert!(!diff(&old, &ok, &Thresholds::default()).regressed());
        let outcome = diff(&old, &bad, &Thresholds::default());
        assert!(outcome
            .rows
            .iter()
            .any(|r| r.metric == "test_accuracy" && r.regressed));
        // accuracy *improvement* never fires
        assert!(!diff(&bad, &old, &Thresholds::default()).regressed());
    }

    #[test]
    fn disabled_gates_never_fire() {
        let old = report(10.0, 12.0, 2620.0, 0.95);
        let new = report(99.0, 99.0, 9999.0, 0.10);
        let off = Thresholds {
            train_pct: None,
            latency_pct: None,
            cycles_pct: None,
            accuracy_drop: None,
            peak_alloc_pct: None,
            alloc_count_pct: None,
            footprint_bits: None,
            packed_over_ref_pct: None,
            margin_drop_pct: None,
            detect_latency_pct: None,
        };
        assert!(!diff(&old, &new, &off).regressed());
    }

    #[test]
    fn missing_task_is_a_regression() {
        let old = report(10.0, 12.0, 2620.0, 0.95);
        let mut new = old.clone();
        new.tasks.clear();
        let outcome = diff(&old, &new, &Thresholds::default());
        assert!(outcome.regressed());
        assert_eq!(outcome.missing_tasks, vec!["HAR".to_string()]);
    }

    #[test]
    fn v1_reports_without_new_fields_parse() {
        let text = br#"{"schema":"univsa-perf-baseline/v1",
            "tasks":[{"task":"HAR","train_seconds":5.0,"test_accuracy":0.9}]}"#;
        let r = parse_report(text).unwrap();
        assert_eq!(r.schema, "univsa-perf-baseline/v1");
        assert_eq!(r.threads, None);
        assert_eq!(r.git_commit, None);
        assert_eq!(r.tasks.len(), 1);
        assert_eq!(r.tasks[0].p99_us, None);
    }

    #[test]
    fn v3_fields_are_read() {
        let text = br#"{"schema":"univsa-perf-baseline/v3","quick":true,"threads":2,
            "git_commit":"abc123","trace":"out.json","tasks":[]}"#;
        let r = parse_report(text).unwrap();
        assert_eq!(r.git_commit.as_deref(), Some("abc123"));
        assert_eq!(r.quick, Some(true));
    }

    fn v4_report(peak: f64, count: f64, bits: f64) -> Report {
        let text = format!(
            r#"{{"schema":"univsa-perf-baseline/v4","quick":false,"threads":4,
                "peak_rss_bytes":123456,
                "tasks":[{{"task":"HAR","train_seconds":10.0,"test_accuracy":0.95,
                "latency_us":{{"mean":10.0,"p50":9.0,"p90":11.0,"p99":12.0}},
                "hw_cycles":{{"sample_latency":100,"initiation_interval":40,
                "streamed_samples":64,"makespan":2620}},
                "mem":{{"peak_alloc_bytes":{peak},"alloc_count":{count}}},
                "footprint":{{"modeled_bits":{bits},"actual_bits":{bits},"ratio":1.0}}}}]}}"#
        );
        parse_report(text.as_bytes()).unwrap()
    }

    #[test]
    fn v4_memory_fields_are_read() {
        let r = v4_report(1e6, 5000.0, 66840.0);
        assert_eq!(r.schema, "univsa-perf-baseline/v4");
        assert_eq!(r.tasks[0].peak_alloc_bytes, Some(1e6));
        assert_eq!(r.tasks[0].alloc_count, Some(5000.0));
        assert_eq!(r.tasks[0].footprint_bits, Some(66840.0));
    }

    #[test]
    fn peak_alloc_regression_fires_past_ten_percent() {
        let old = v4_report(1_000_000.0, 5000.0, 66840.0);
        let ok = v4_report(1_050_000.0, 5000.0, 66840.0);
        let bad = v4_report(1_200_000.0, 5000.0, 66840.0);
        assert!(!diff(&old, &ok, &Thresholds::default()).regressed());
        let outcome = diff(&old, &bad, &Thresholds::default());
        assert!(outcome
            .rows
            .iter()
            .any(|r| r.metric == "mem_peak_alloc_bytes" && r.regressed));
    }

    #[test]
    fn alloc_count_regression_fires() {
        let old = v4_report(1e6, 5000.0, 66840.0);
        let bad = v4_report(1e6, 6000.0, 66840.0);
        let outcome = diff(&old, &bad, &Thresholds::default());
        assert!(outcome
            .rows
            .iter()
            .any(|r| r.metric == "mem_alloc_count" && r.regressed));
    }

    #[test]
    fn footprint_drift_fires_in_both_directions() {
        let old = v4_report(1e6, 5000.0, 66840.0);
        let grew = v4_report(1e6, 5000.0, 66904.0);
        let shrank = v4_report(1e6, 5000.0, 66776.0);
        assert!(diff(&old, &grew, &Thresholds::default())
            .rows
            .iter()
            .any(|r| r.metric == "footprint_actual_bits" && r.regressed));
        assert!(diff(&old, &shrank, &Thresholds::default())
            .rows
            .iter()
            .any(|r| r.metric == "footprint_actual_bits" && r.regressed));
        // bit-identical footprints pass the zero-tolerance gate
        assert!(!diff(&old, &old, &Thresholds::default()).regressed());
    }

    #[test]
    fn v4_vs_v3_memory_gates_never_fire_either_direction() {
        // old report predates the memory fields entirely
        let v3 = report(10.0, 12.0, 2620.0, 0.95);
        let v4 = v4_report(1e6, 5000.0, 66840.0);
        for (old, new) in [(&v3, &v4), (&v4, &v3)] {
            let outcome = diff(old, new, &Thresholds::default());
            assert!(!outcome.regressed(), "{}", outcome.render());
            let mem_rows: Vec<_> = outcome
                .rows
                .iter()
                .filter(|r| r.metric.starts_with("mem_") || r.metric.starts_with("footprint"))
                .collect();
            assert_eq!(mem_rows.len(), 3, "{}", outcome.render());
            assert!(mem_rows.iter().all(|r| r.skipped && !r.regressed));
            assert!(outcome.render().contains("n/a"));
        }
    }

    #[test]
    fn non_reports_are_rejected() {
        assert!(parse_report(b"not json").is_err());
        assert!(parse_report(b"{}").is_err());
        assert!(parse_report(br#"{"schema":"other/v1"}"#).is_err());
    }

    fn v5_report(ref_p99: f64, packed_p99: f64) -> Report {
        let text = format!(
            r#"{{"schema":"univsa-perf-baseline/v5","quick":false,"threads":4,
                "infer_engine":"packed","kernel_tier":"avx2",
                "tasks":[{{"task":"HAR","train_seconds":10.0,"test_accuracy":0.95,
                "latency_us":{{"mean":10.0,"p50":9.0,"p90":11.0,"p99":{ref_p99}}},
                "latency_packed_us":{{"mean":2.0,"p50":1.8,"p90":2.4,"p99":{packed_p99}}},
                "hw_cycles":{{"sample_latency":100,"initiation_interval":40,
                "streamed_samples":64,"makespan":2620}},
                "mem":{{"peak_alloc_bytes":1000000,"alloc_count":5000}},
                "footprint":{{"modeled_bits":66840,"actual_bits":66840,"ratio":1.0}}}}]}}"#
        );
        parse_report(text.as_bytes()).unwrap()
    }

    #[test]
    fn v5_packed_fields_are_read() {
        let r = v5_report(12.0, 3.0);
        assert_eq!(r.schema, "univsa-perf-baseline/v5");
        assert_eq!(r.infer_engine.as_deref(), Some("packed"));
        assert_eq!(r.kernel_tier.as_deref(), Some("avx2"));
        assert_eq!(r.tasks[0].packed_p50_us, Some(1.8));
        assert_eq!(r.tasks[0].packed_p99_us, Some(3.0));
    }

    #[test]
    fn packed_slower_than_reference_fires() {
        let old = v5_report(12.0, 3.0);
        let ok = v5_report(12.0, 11.9);
        let bad = v5_report(12.0, 12.5);
        assert!(!diff(&old, &ok, &Thresholds::default()).regressed());
        let outcome = diff(&old, &bad, &Thresholds::default());
        assert!(outcome
            .rows
            .iter()
            .any(|r| r.metric == "packed_vs_ref_p99_us" && r.regressed));
    }

    #[test]
    fn packed_gate_compares_within_the_candidate_report() {
        // the baseline's packed figure is irrelevant — only the
        // candidate's own packed-vs-reference ratio is gated
        let old = v5_report(12.0, 12.5);
        let new = v5_report(12.0, 3.0);
        assert!(!diff(&old, &new, &Thresholds::default()).regressed());
        let row_old = diff(&old, &old, &Thresholds::default());
        assert!(row_old
            .rows
            .iter()
            .any(|r| r.metric == "packed_vs_ref_p99_us" && r.regressed));
    }

    #[test]
    fn pre_v5_candidate_renders_packed_row_na() {
        let v5 = v5_report(12.0, 3.0);
        let v4 = v4_report(1e6, 5000.0, 66840.0);
        let outcome = diff(&v5, &v4, &Thresholds::default());
        let row = outcome
            .rows
            .iter()
            .find(|r| r.metric == "packed_vs_ref_p99_us")
            .unwrap();
        assert!(row.skipped && !row.regressed, "{}", outcome.render());
    }

    fn v6_report(mean_margin: f64, detect_latency: &str) -> Report {
        let text = format!(
            r#"{{"schema":"univsa-perf-baseline/v6","quick":false,"threads":4,
                "infer_engine":"packed","kernel_tier":"avx2",
                "tasks":[{{"task":"HAR","train_seconds":10.0,"test_accuracy":0.95,
                "latency_us":{{"mean":10.0,"p50":9.0,"p90":11.0,"p99":12.0}},
                "latency_packed_us":{{"mean":2.0,"p50":1.8,"p90":2.4,"p99":3.0}},
                "hw_cycles":{{"sample_latency":100,"initiation_interval":40,
                "streamed_samples":64,"makespan":2620}},
                "mem":{{"peak_alloc_bytes":1000000,"alloc_count":5000}},
                "footprint":{{"modeled_bits":66840,"actual_bits":66840,"ratio":1.0}},
                "quality":{{"mean_margin":{mean_margin},"margin_p50":480,"margin_p99":1210,
                "drift":{{"stream_samples":256,"at":128,"strength":1.0,"window":32,
                "detection_latency":{detect_latency}}}}}}}]}}"#
        );
        parse_report(text.as_bytes()).unwrap()
    }

    #[test]
    fn v6_quality_fields_are_read() {
        let r = v6_report(512.25, "31");
        assert_eq!(r.schema, "univsa-perf-baseline/v6");
        assert_eq!(r.tasks[0].mean_margin, Some(512.25));
        assert_eq!(r.tasks[0].drift_detect_latency, Some(31.0));
        // an undetected probe writes null, which parses as absent
        assert_eq!(v6_report(512.25, "null").tasks[0].drift_detect_latency, None);
    }

    #[test]
    fn margin_drop_fires_only_past_five_percent_and_never_on_growth() {
        let old = v6_report(500.0, "31");
        let ok = v6_report(480.0, "31"); // -4%
        let bad = v6_report(470.0, "31"); // -6%
        let grew = v6_report(600.0, "31");
        assert!(!diff(&old, &ok, &Thresholds::default()).regressed());
        assert!(!diff(&old, &grew, &Thresholds::default()).regressed());
        let outcome = diff(&old, &bad, &Thresholds::default());
        assert!(outcome
            .rows
            .iter()
            .any(|r| r.metric == "quality_mean_margin" && r.regressed));
        assert!(outcome.render().contains("-5.00%"), "{}", outcome.render());
    }

    #[test]
    fn detection_latency_increase_fires_at_zero_tolerance() {
        let old = v6_report(500.0, "31");
        let slower = v6_report(500.0, "32");
        let faster = v6_report(500.0, "15");
        assert!(!diff(&old, &old, &Thresholds::default()).regressed());
        assert!(!diff(&old, &faster, &Thresholds::default()).regressed());
        let outcome = diff(&old, &slower, &Thresholds::default());
        assert!(outcome
            .rows
            .iter()
            .any(|r| r.metric == "quality_drift_latency" && r.regressed));
    }

    #[test]
    fn v6_vs_v5_and_undetected_probes_render_quality_rows_na() {
        let v6 = v6_report(500.0, "31");
        let v5 = v5_report(12.0, 3.0);
        for (old, new) in [(&v5, &v6), (&v6, &v5)] {
            let outcome = diff(old, new, &Thresholds::default());
            assert!(!outcome.regressed(), "{}", outcome.render());
            let quality_rows: Vec<_> = outcome
                .rows
                .iter()
                .filter(|r| r.metric.starts_with("quality_"))
                .collect();
            assert!(!quality_rows.is_empty());
            assert!(quality_rows.iter().all(|r| r.skipped && !r.regressed));
        }
        // a probe that went undetected must not fire against a numeric
        // baseline latency — that is schema-skew-style information loss,
        // not a measured regression
        let lost = v6_report(500.0, "null");
        let outcome = diff(&v6, &lost, &Thresholds::default());
        assert!(!outcome.regressed(), "{}", outcome.render());
        let row = outcome
            .rows
            .iter()
            .find(|r| r.metric == "quality_drift_latency")
            .unwrap();
        assert!(row.skipped);
    }

    #[test]
    fn mode_mismatch_is_noted() {
        let mut old = report(10.0, 12.0, 2620.0, 0.95);
        old.quick = Some(false);
        let mut new = old.clone();
        new.quick = Some(true);
        let outcome = diff(&old, &new, &Thresholds::default());
        assert!(outcome.notes.iter().any(|n| n.contains("mode mismatch")));
    }
}
