//! Regenerates **Fig. 5** (bottom right): the pipelined execution schedule
//! of the four modules under streaming inputs, where one convolution
//! iteration takes `α = max(D_K, log₂ D_H)` cycles.
//!
//! Run: `cargo run -p univsa-bench --release --bin fig5`

use univsa_bench::{all_tasks, finish_telemetry, paper_config};
use univsa_hw::{HwConfig, Pipeline};

fn main() {
    let isolet = all_tasks(1)
        .into_iter()
        .find(|t| t.spec.name == "ISOLET")
        .expect("ISOLET task exists");
    let hw = HwConfig::new(&paper_config(&isolet));
    let pipeline = Pipeline::new(hw.clone());

    println!("UniVSA streaming schedule — ISOLET config (D_H=4, D_K=3, O=22, Θ=3)");
    println!(
        "α = max(D_K, log2 D_H) = {} cycles per conv iteration",
        hw.alpha()
    );
    println!();
    for (stage, cycles) in pipeline.stage_latencies() {
        println!("  {stage:>10}: {cycles:>6} cycles per sample");
    }
    println!(
        "  single-sample latency: {} cycles; steady-state interval: {} cycles (= BiConv)",
        pipeline.sample_latency_cycles(),
        pipeline.initiation_interval_cycles()
    );
    println!();
    let trace = pipeline.schedule(3);
    println!("three streamed samples (digits = sample index; '.' = idle):");
    print!("{}", trace.ascii_timeline(96));
    println!();
    println!("Expected shape: DVP/Encoding/Similarity of sample k+1 hide under BiConv of sample k");
    println!("(double buffering), so the stream advances at the BiConv latency.");
    finish_telemetry();
}
