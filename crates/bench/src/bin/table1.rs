//! Regenerates **Table I**: the evolutionary configuration search
//! (`obj = Acc − L_HW`, `λ₁ = λ₂ = 0.005`, elitist preservation) over
//! `(D_H, D_L, D_K, O, Θ)` for every task.
//!
//! Each fitness evaluation is a full (reduced-epoch) training run, so the
//! default budget is modest; the printed paper tuples are the reference.
//!
//! Run: `cargo run -p univsa-bench --release --bin table1`
//! (`UNIVSA_QUICK=1` shrinks the budget further).

use rand::rngs::StdRng;
use rand::SeedableRng;
use univsa::TrainOptions;
use univsa_bench::{all_tasks, finish_telemetry, print_row, progress, quick_mode, PAPER_CONFIGS};
use univsa_data::stratified_split;
use univsa_search::{AccuracyHardwareObjective, EvolutionarySearch, SearchOptions, SearchSpace};

fn main() {
    let quick = quick_mode();
    let search_options = SearchOptions {
        population: if quick { 4 } else { 10 },
        generations: if quick { 2 } else { 4 },
        elites: 2,
        ..SearchOptions::default()
    };
    // every fitness evaluation is a training run, so the search trains on
    // a 45%·70% stratified subsample with few epochs — enough signal to rank
    // configurations without the paper's GPU budget
    let train_options = TrainOptions {
        epochs: if quick { 2 } else { 4 },
        ..TrainOptions::default()
    };

    let widths = [9usize, 30, 30, 10];
    print_row(
        &[
            "Task",
            "searched (D_H,D_L,D_K,O,Θ)",
            "paper (D_H,D_L,D_K,O,Θ)",
            "obj",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
        &widths,
    );

    for task in all_tasks(2025) {
        progress("table1", &format!("searching {} ...", task.spec.name));
        // carve a validation split out of a training subsample
        let mut rng = StdRng::seed_from_u64(99);
        let (subsample, _) = stratified_split(&task.train, 0.45, &mut rng);
        let (fit_split, val_split) = stratified_split(&subsample, 0.7, &mut rng);
        let objective =
            AccuracyHardwareObjective::new(fit_split, val_split, train_options.clone(), 7);
        let space = SearchSpace::for_task(&task.spec);
        let result =
            EvolutionarySearch::new(space, search_options).run(|g| objective.evaluate(g), 42);
        let paper = PAPER_CONFIGS
            .iter()
            .find(|(n, _)| *n == task.spec.name)
            .expect("paper row exists")
            .1;
        let g = result.genome;
        print_row(
            &[
                task.spec.name.clone(),
                format!(
                    "({}, {}, {}, {}, {})",
                    g.d_h, g.d_l, g.d_k, g.out_channels, g.voters
                ),
                format!(
                    "({}, {}, {}, {}, {})",
                    paper.0, paper.1, paper.2, paper.3, paper.4
                ),
                format!("{:.4}", result.fitness),
            ],
            &widths,
        );
    }
    println!();
    println!("Expected shape: searched tuples land in the paper's ranges (D_H ≤ 8, small kernels,");
    println!("task-dependent O, Θ ∈ {{1, 3}}); exact values differ because the data are synthetic");
    println!("and the search budget here is a fraction of the paper's.");
    finish_telemetry();
}
